//! Parser for PG-Schema `CREATE GRAPH` declarations (Figure 2a of the paper).
//!
//! The accepted syntax follows the paper's example:
//!
//! ```text
//! CREATE GRAPH {
//!   (personType : Person { id INT, firstName STRING, locationIP STRING }),
//!   (cityType : City { id INT, name STRING }),
//!   (:personType)-[locationType: isLocatedIn { id INT }]->(:cityType)
//! }
//! ```
//!
//! Node declarations are `(typeName : Label { prop TYPE, ... })`; edge
//! declarations are `(:srcType)-[typeName : label { prop TYPE, ... }]->(:dstType)`.

use raqlet_common::schema::{EdgeType, NodeType, PgSchema, Property};
use raqlet_common::{RaqletError, Result, ValueType};

use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a PG-Schema `CREATE GRAPH` declaration.
pub fn parse_pg_schema(input: &str) -> Result<PgSchema> {
    let tokens = tokenize(input)?;
    SchemaParser { tokens, pos: 0 }.parse()
}

struct SchemaParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl SchemaParser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn current(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> RaqletError {
        let t = self.current();
        RaqletError::parse(format!("{} (found `{}`)", msg.into(), t.kind), t.line, t.column)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kind}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Result<PgSchema> {
        if !self.eat_keyword("CREATE") {
            return Err(self.error("expected `CREATE GRAPH`"));
        }
        if !(self.eat_keyword("GRAPH") || self.eat_keyword("PROPERTY")) {
            return Err(self.error("expected `GRAPH` after `CREATE`"));
        }
        // Accept `CREATE PROPERTY GRAPH` too.
        let _ = self.eat_keyword("GRAPH");
        // Optional graph name.
        if let TokenKind::Ident(_) = self.peek() {
            self.bump();
        }
        self.expect(&TokenKind::LBrace)?;

        let mut schema = PgSchema::new();
        loop {
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            self.declaration(&mut schema)?;
            let _ = self.eat(&TokenKind::Comma);
        }
        if !matches!(self.peek(), TokenKind::Eof) && !self.eat(&TokenKind::Semicolon) {
            return Err(self.error("unexpected tokens after schema"));
        }
        Ok(schema)
    }

    /// Parses either a node-type declaration or an edge-type declaration.
    fn declaration(&mut self, schema: &mut PgSchema) -> Result<()> {
        self.expect(&TokenKind::LParen)?;
        if self.eat(&TokenKind::Colon) {
            // `(:srcType)-[...]->(:dstType)` — an edge declaration.
            let src = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Minus)?;
            self.expect(&TokenKind::LBracket)?;
            let type_name = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let label = self.expect_ident()?;
            let properties = if matches!(self.peek(), TokenKind::LBrace) {
                self.property_list()?
            } else {
                Vec::new()
            };
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Arrow)?;
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::Colon)?;
            let dst = self.expect_ident()?;
            self.expect(&TokenKind::RParen)?;
            schema.add_edge(EdgeType { type_name, label, src, dst, properties })?;
        } else {
            // `(typeName : Label { ... })` — a node declaration.
            let type_name = self.expect_ident()?;
            self.expect(&TokenKind::Colon)?;
            let label = self.expect_ident()?;
            let properties = if matches!(self.peek(), TokenKind::LBrace) {
                self.property_list()?
            } else {
                Vec::new()
            };
            self.expect(&TokenKind::RParen)?;
            schema.add_node(NodeType { type_name, label, properties })?;
        }
        Ok(())
    }

    fn property_list(&mut self) -> Result<Vec<Property>> {
        self.expect(&TokenKind::LBrace)?;
        let mut props = Vec::new();
        if !matches!(self.peek(), TokenKind::RBrace) {
            loop {
                let name = self.expect_ident()?;
                let ty_name = self.expect_ident()?;
                let ty = ValueType::from_pg_name(&ty_name)
                    .ok_or_else(|| self.error(format!("unknown property type `{ty_name}`")))?;
                props.push(Property::new(name, ty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2a from the paper.
    const FIGURE2A: &str = "CREATE GRAPH {\n\
        (personType : Person { id INT, firstName STRING, locationIP STRING }),\n\
        (cityType : City { id INT, name STRING }),\n\
        (:personType)-[locationType: isLocatedIn { id INT }]->(:cityType)\n\
    }";

    #[test]
    fn parses_the_paper_schema() {
        let s = parse_pg_schema(FIGURE2A).unwrap();
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.edges.len(), 1);

        let person = s.node_by_label("Person").unwrap();
        assert_eq!(person.type_name, "personType");
        assert_eq!(person.properties.len(), 3);
        assert_eq!(person.properties[0].name, "id");
        assert_eq!(person.properties[0].ty, ValueType::Int);
        assert_eq!(person.properties[1].ty, ValueType::Text);

        let edge = &s.edges[0];
        assert_eq!(edge.label, "isLocatedIn");
        assert_eq!(edge.src, "personType");
        assert_eq!(edge.dst, "cityType");
        assert_eq!(edge.properties.len(), 1);
    }

    #[test]
    fn edge_is_resolvable_by_cypher_spelling() {
        let s = parse_pg_schema(FIGURE2A).unwrap();
        assert!(s.edge_between("IS_LOCATED_IN", "Person", "City").is_some());
    }

    #[test]
    fn parses_nodes_without_properties() {
        let s = parse_pg_schema("CREATE GRAPH { (t : Thing) }").unwrap();
        assert_eq!(s.nodes.len(), 1);
        assert!(s.nodes[0].properties.is_empty());
    }

    #[test]
    fn parses_edges_without_properties() {
        let s = parse_pg_schema(
            "CREATE GRAPH { (a : A {id INT}), (b : B {id INT}), (:a)-[e: rel]->(:b) }",
        )
        .unwrap();
        assert_eq!(s.edges.len(), 1);
        assert!(s.edges[0].properties.is_empty());
    }

    #[test]
    fn rejects_edges_with_unknown_endpoints() {
        let err =
            parse_pg_schema("CREATE GRAPH { (a : A), (:a)-[e: rel]->(:missing) }").unwrap_err();
        assert!(err.to_string().contains("unknown node type"));
    }

    #[test]
    fn rejects_unknown_property_types() {
        let err = parse_pg_schema("CREATE GRAPH { (a : A { id BLOB }) }").unwrap_err();
        assert!(err.to_string().contains("unknown property type"));
    }

    #[test]
    fn rejects_missing_create_keyword() {
        assert!(parse_pg_schema("GRAPH { (a : A) }").is_err());
    }

    #[test]
    fn accepts_create_property_graph_spelling_and_graph_name() {
        let s = parse_pg_schema("CREATE PROPERTY GRAPH snb { (a : A { id INT }) }").unwrap();
        assert_eq!(s.nodes.len(), 1);
    }

    #[test]
    fn date_typed_properties_map_to_int() {
        let s = parse_pg_schema("CREATE GRAPH { (m : Message { id INT, creationDate DATETIME }) }")
            .unwrap();
        assert_eq!(s.nodes[0].properties[1].ty, ValueType::Int);
    }
}
