//! Abstract syntax tree for the supported Cypher subset.

use std::fmt;

use raqlet_common::Value;

/// A parsed Cypher query: an ordered sequence of clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

impl Query {
    /// The final `RETURN` clause, if present.
    pub fn return_clause(&self) -> Option<&Projection> {
        self.clauses.iter().rev().find_map(|c| match c {
            Clause::Return(p) => Some(p),
            _ => None,
        })
    }

    /// True if any clause uses an aggregation function.
    pub fn uses_aggregation(&self) -> bool {
        self.clauses.iter().any(|c| match c {
            Clause::Return(p) | Clause::With(p) => {
                p.items.iter().any(|i| i.expr.contains_aggregate())
            }
            _ => false,
        })
    }

    /// True if any pattern uses a variable-length relationship or
    /// `shortestPath`, i.e. the query is recursive after lowering.
    pub fn uses_recursion(&self) -> bool {
        self.clauses.iter().any(|c| match c {
            Clause::Match(m) => m
                .patterns
                .iter()
                .any(|p| p.shortest.is_some() || p.steps.iter().any(|(r, _)| r.length.is_some())),
            _ => false,
        })
    }
}

/// A top-level clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH` or `OPTIONAL MATCH`, with an optional attached `WHERE`.
    Match(MatchClause),
    /// `WITH ...` intermediate projection.
    With(Projection),
    /// `RETURN ...` final projection.
    Return(Projection),
    /// `UNWIND expr AS var`.
    Unwind { expr: Expr, alias: String },
}

/// A `MATCH` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchClause {
    /// True for `OPTIONAL MATCH`.
    pub optional: bool,
    /// Comma-separated path patterns.
    pub patterns: Vec<PathPattern>,
    /// The attached `WHERE` predicate, if any.
    pub where_clause: Option<Expr>,
}

/// Shared shape of `WITH` and `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// True if `DISTINCT` was specified.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<ReturnItem>,
    /// `WHERE` attached to a `WITH` (post-aggregation filter).
    pub where_clause: Option<Expr>,
    /// `ORDER BY` items (parsed, dropped during lowering per the paper).
    pub order_by: Vec<OrderItem>,
    /// `SKIP n` (parsed, dropped during lowering).
    pub skip: Option<i64>,
    /// `LIMIT n` (parsed, dropped during lowering).
    pub limit: Option<i64>,
}

impl Projection {
    /// A projection with only items set.
    pub fn simple(distinct: bool, items: Vec<ReturnItem>) -> Self {
        Projection {
            distinct,
            items,
            where_clause: None,
            order_by: Vec::new(),
            skip: None,
            limit: None,
        }
    }
}

/// One projected expression with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnItem {
    /// The projected expression.
    pub expr: Expr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

impl ReturnItem {
    /// The output column name: the alias if present, otherwise a rendering of
    /// the expression (`n.firstName` → `firstName`, plain variable → itself).
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            Expr::Property(_, prop) => prop.clone(),
            Expr::Var(v) => v.clone(),
            other => other.to_string(),
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// True for ascending (the default).
    pub ascending: bool,
}

/// Which flavour of shortest-path matching a pattern requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortestKind {
    /// `shortestPath(...)` — one shortest path per endpoint pair.
    Single,
    /// `allShortestPaths(...)` — all shortest paths per endpoint pair.
    All,
}

/// A path pattern: a start node followed by zero or more (relationship, node)
/// steps, optionally wrapped in `shortestPath` and optionally named.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// `p = ...` path variable.
    pub path_var: Option<String>,
    /// Set when the pattern is wrapped in `shortestPath`/`allShortestPaths`.
    pub shortest: Option<ShortestKind>,
    /// The leftmost node pattern.
    pub start: NodePattern,
    /// Each relationship and the node it leads to, left to right.
    pub steps: Vec<(RelPattern, NodePattern)>,
}

impl PathPattern {
    /// All node patterns, left to right.
    pub fn nodes(&self) -> Vec<&NodePattern> {
        let mut v = vec![&self.start];
        v.extend(self.steps.iter().map(|(_, n)| n));
        v
    }
}

/// A node pattern `(n:Person {id: 42})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// Binding variable, if named.
    pub var: Option<String>,
    /// Labels (usually zero or one).
    pub labels: Vec<String>,
    /// Inline property constraints.
    pub properties: Vec<(String, Expr)>,
}

/// Direction of a relationship pattern relative to reading order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[...]->`
    Outgoing,
    /// `<-[...]-`
    Incoming,
    /// `-[...]-`
    Undirected,
}

/// Variable-length bounds of a relationship pattern (`*`, `*2`, `*1..3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarLength {
    /// Lower bound; `None` means the Cypher default of 1.
    pub min: Option<u32>,
    /// Upper bound; `None` means unbounded.
    pub max: Option<u32>,
}

impl VarLength {
    /// The effective lower bound (Cypher defaults to 1).
    pub fn min_hops(&self) -> u32 {
        self.min.unwrap_or(1)
    }
}

/// A relationship pattern `-[r:KNOWS*1..2 {since: 2020}]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    /// Binding variable, if named.
    pub var: Option<String>,
    /// Relationship types (alternatives separated by `|`).
    pub types: Vec<String>,
    /// Traversal direction.
    pub direction: Direction,
    /// Variable-length bounds, if this is a variable-length pattern.
    pub length: Option<VarLength>,
    /// Inline property constraints.
    pub properties: Vec<(String, Expr)>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    In,
}

impl BinaryOp {
    /// True for the comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregation functions supported in `WITH`/`RETURN`.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["count", "sum", "min", "max", "avg", "collect"];

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// `base.property` access. The base is almost always a variable.
    Property(Box<Expr>, String),
    /// A literal constant.
    Literal(Value),
    /// A query parameter `$name`.
    Parameter(String),
    /// A list literal `[e1, e2, ...]`.
    List(Vec<Expr>),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Function call, possibly with `DISTINCT` (only meaningful for
    /// aggregates, e.g. `count(DISTINCT x)`).
    FunctionCall { name: String, distinct: bool, args: Vec<Expr> },
}

impl Expr {
    /// Property access on a variable, e.g. `n.id`.
    pub fn prop(var: &str, prop: &str) -> Expr {
        Expr::Property(Box::new(Expr::Var(var.to_string())), prop.to_string())
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// String literal.
    pub fn string(v: &str) -> Expr {
        Expr::Literal(Value::str(v))
    }

    /// True if `name` is an aggregation function.
    pub fn is_aggregate_function(name: &str) -> bool {
        AGGREGATE_FUNCTIONS.iter().any(|f| f.eq_ignore_ascii_case(name))
    }

    /// True if this expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::FunctionCall { name, args, .. } => {
                Expr::is_aggregate_function(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary(_, e) => e.contains_aggregate(),
            Expr::Binary(_, a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Property(base, _) => base.contains_aggregate(),
            Expr::List(items) => items.iter().any(Expr::contains_aggregate),
            _ => false,
        }
    }

    /// Collect the free variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Property(base, _) => base.free_vars(out),
            Expr::Unary(_, e) => e.free_vars(out),
            Expr::Binary(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.free_vars(out);
                }
            }
            Expr::Literal(_) | Expr::Parameter(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Property(base, p) => write!(f, "{base}.{p}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(p) => write!(f, "${p}"),
            Expr::List(items) => {
                let inner = items.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ");
                write!(f, "[{inner}]")
            }
            Expr::Unary(UnaryOp::Not, e) => write!(f, "NOT ({e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "-({e})"),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinaryOp::And => "AND",
                    BinaryOp::Or => "OR",
                    BinaryOp::Eq => "=",
                    BinaryOp::Neq => "<>",
                    BinaryOp::Lt => "<",
                    BinaryOp::Le => "<=",
                    BinaryOp::Gt => ">",
                    BinaryOp::Ge => ">=",
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Mod => "%",
                    BinaryOp::In => "IN",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::FunctionCall { name, distinct, args } => {
                let inner = args.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ");
                if *distinct {
                    write!(f, "{name}(DISTINCT {inner})")
                } else {
                    write!(f, "{name}({inner})")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_name_prefers_alias_then_property_name() {
        let with_alias =
            ReturnItem { expr: Expr::prop("n", "firstName"), alias: Some("fn".into()) };
        assert_eq!(with_alias.output_name(), "fn");
        let prop = ReturnItem { expr: Expr::prop("n", "firstName"), alias: None };
        assert_eq!(prop.output_name(), "firstName");
        let var = ReturnItem { expr: Expr::Var("n".into()), alias: None };
        assert_eq!(var.output_name(), "n");
    }

    #[test]
    fn contains_aggregate_detects_nested_calls() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::FunctionCall {
                name: "count".into(),
                distinct: false,
                args: vec![Expr::Var("x".into())],
            }),
            Box::new(Expr::int(1)),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::prop("n", "id").contains_aggregate());
    }

    #[test]
    fn free_vars_are_collected_once() {
        let e = Expr::Binary(
            BinaryOp::And,
            Box::new(Expr::Binary(
                BinaryOp::Eq,
                Box::new(Expr::prop("n", "id")),
                Box::new(Expr::int(42)),
            )),
            Box::new(Expr::Binary(
                BinaryOp::Eq,
                Box::new(Expr::prop("n", "name")),
                Box::new(Expr::Var("m".into())),
            )),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["n".to_string(), "m".to_string()]);
    }

    #[test]
    fn display_renders_cypher_like_syntax() {
        let e =
            Expr::Binary(BinaryOp::Eq, Box::new(Expr::prop("n", "id")), Box::new(Expr::int(42)));
        assert_eq!(e.to_string(), "(n.id = 42)");
        let s = Expr::string("Bob");
        assert_eq!(s.to_string(), "'Bob'");
    }

    #[test]
    fn varlength_default_min_is_one() {
        assert_eq!(VarLength { min: None, max: Some(3) }.min_hops(), 1);
        assert_eq!(VarLength { min: Some(0), max: None }.min_hops(), 0);
    }

    #[test]
    fn aggregate_function_names_are_case_insensitive() {
        assert!(Expr::is_aggregate_function("COUNT"));
        assert!(Expr::is_aggregate_function("sum"));
        assert!(!Expr::is_aggregate_function("length"));
    }
}
