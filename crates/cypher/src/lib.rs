//! # raqlet-cypher
//!
//! The Cypher frontend of Raqlet.
//!
//! This crate turns Cypher query text and PG-Schema text (`CREATE GRAPH`
//! declarations, Figure 2a of the paper) into ASTs that the rest of the
//! pipeline lowers into PGIR. It is a hand-written lexer + recursive-descent
//! parser covering the Cypher subset required by the LDBC SNB interactive
//! read workload:
//!
//! * `MATCH` / `OPTIONAL MATCH` with node patterns, relationship patterns,
//!   variable-length relationships (`*`, `*1..2`) and `shortestPath`;
//! * `WHERE` with comparison, boolean, arithmetic and `IN` expressions;
//! * `WITH` / `RETURN` (with `DISTINCT`, aliases and aggregation functions);
//! * `ORDER BY` / `SKIP` / `LIMIT`, which are parsed and then *dropped* by the
//!   pipeline, matching the paper's simplification for set-semantics
//!   backends;
//! * `UNWIND` and parameters (`$param`) for completeness.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pgschema;
pub mod token;

pub use ast::*;
pub use parser::parse_query;
pub use pgschema::parse_pg_schema;

/// Parse a Cypher query, returning the AST.
///
/// ```
/// let q = raqlet_cypher::parse("MATCH (n:Person) RETURN n.id AS id").unwrap();
/// assert_eq!(q.clauses.len(), 2);
/// ```
pub fn parse(input: &str) -> raqlet_common::Result<ast::Query> {
    parser::parse_query(input)
}
