//! Recursive-descent parser for the supported Cypher subset.

use raqlet_common::{RaqletError, Result, Value};

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parse a Cypher query into its AST.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(tokens);
    let query = parser.query()?;
    parser.expect_eof()?;
    Ok(query)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn current(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> RaqletError {
        let t = self.current();
        RaqletError::parse(format!("{} (found `{}`)", msg.into(), t.kind), t.line, t.column)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kind}`")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword `{kw}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    pub(crate) fn expect_eof(&mut self) -> Result<()> {
        // Trailing semicolons are accepted.
        while self.eat(&TokenKind::Semicolon) {}
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error("expected end of query"))
        }
    }

    // ----- clauses ---------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut clauses = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::Eof | TokenKind::Semicolon) {
                break;
            }
            clauses.push(self.clause()?);
        }
        if clauses.is_empty() {
            return Err(self.error("empty query"));
        }
        if !clauses.iter().any(|c| matches!(c, Clause::Return(_))) {
            return Err(self.error("query has no RETURN clause"));
        }
        Ok(Query { clauses })
    }

    fn clause(&mut self) -> Result<Clause> {
        if self.peek().is_keyword("OPTIONAL") {
            self.bump();
            self.expect_keyword("MATCH")?;
            return self.match_clause(true);
        }
        if self.eat_keyword("MATCH") {
            return self.match_clause(false);
        }
        if self.eat_keyword("WITH") {
            return Ok(Clause::With(self.projection()?));
        }
        if self.eat_keyword("RETURN") {
            return Ok(Clause::Return(self.projection()?));
        }
        if self.eat_keyword("UNWIND") {
            let expr = self.expr()?;
            self.expect_keyword("AS")?;
            let alias = self.expect_ident()?;
            return Ok(Clause::Unwind { expr, alias });
        }
        Err(self.error("expected MATCH, OPTIONAL MATCH, WITH, UNWIND or RETURN"))
    }

    fn match_clause(&mut self, optional: bool) -> Result<Clause> {
        let mut patterns = vec![self.path_pattern()?];
        while self.eat(&TokenKind::Comma) {
            patterns.push(self.path_pattern()?);
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Clause::Match(MatchClause { optional, patterns, where_clause }))
    }

    fn projection(&mut self) -> Result<Projection> {
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.return_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.return_item()?);
        }
        let mut order_by = Vec::new();
        if self.peek().is_keyword("ORDER") {
            self.bump();
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_keyword("DESC") || self.eat_keyword("DESCENDING") {
                    false
                } else {
                    let _ = self.eat_keyword("ASC") || self.eat_keyword("ASCENDING");
                    true
                };
                order_by.push(OrderItem { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let skip = if self.eat_keyword("SKIP") { Some(self.expect_int()?) } else { None };
        let limit = if self.eat_keyword("LIMIT") { Some(self.expect_int()?) } else { None };
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(Projection { distinct, items, where_clause, order_by, skip, limit })
    }

    fn expect_int(&mut self) -> Result<i64> {
        match self.bump() {
            TokenKind::Int(v) => Ok(v),
            other => Err(self.error(format!("expected integer, found `{other}`"))),
        }
    }

    fn return_item(&mut self) -> Result<ReturnItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(ReturnItem { expr: Expr::Var("*".into()), alias: None });
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
        Ok(ReturnItem { expr, alias })
    }

    // ----- patterns --------------------------------------------------------

    fn path_pattern(&mut self) -> Result<PathPattern> {
        // Optional `p = ...` path variable.
        let mut path_var = None;
        if let TokenKind::Ident(name) = self.peek() {
            if !self.is_shortest_keyword(name) && matches!(self.peek_at(1), TokenKind::Eq) {
                path_var = Some(name.clone());
                self.bump();
                self.bump();
            }
        }
        // Optional shortestPath wrapper.
        let mut shortest = None;
        if let TokenKind::Ident(name) = self.peek() {
            if name.eq_ignore_ascii_case("shortestPath") {
                shortest = Some(ShortestKind::Single);
            } else if name.eq_ignore_ascii_case("allShortestPaths") {
                shortest = Some(ShortestKind::All);
            }
        }
        if shortest.is_some() {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            let (start, steps) = self.path_body()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(PathPattern { path_var, shortest, start, steps });
        }
        let (start, steps) = self.path_body()?;
        Ok(PathPattern { path_var, shortest: None, start, steps })
    }

    fn is_shortest_keyword(&self, name: &str) -> bool {
        name.eq_ignore_ascii_case("shortestPath") || name.eq_ignore_ascii_case("allShortestPaths")
    }

    fn path_body(&mut self) -> Result<(NodePattern, Vec<(RelPattern, NodePattern)>)> {
        let start = self.node_pattern()?;
        let mut steps = Vec::new();
        while matches!(self.peek(), TokenKind::Minus | TokenKind::BackArrow) {
            let rel = self.rel_pattern()?;
            let node = self.node_pattern()?;
            steps.push((rel, node));
        }
        Ok((start, steps))
    }

    fn node_pattern(&mut self) -> Result<NodePattern> {
        self.expect(&TokenKind::LParen)?;
        let mut node = NodePattern::default();
        if let TokenKind::Ident(name) = self.peek() {
            node.var = Some(name.clone());
            self.bump();
        }
        while self.eat(&TokenKind::Colon) {
            node.labels.push(self.expect_ident()?);
        }
        if matches!(self.peek(), TokenKind::LBrace) {
            node.properties = self.property_map()?;
        }
        self.expect(&TokenKind::RParen)?;
        Ok(node)
    }

    fn rel_pattern(&mut self) -> Result<RelPattern> {
        // Leading `-` (outgoing/undirected) or `<-` (incoming).
        let incoming_prefix = match self.bump() {
            TokenKind::Minus => false,
            TokenKind::BackArrow => true,
            other => {
                return Err(self.error(format!("expected relationship pattern, found `{other}`")))
            }
        };
        let mut rel = RelPattern {
            var: None,
            types: Vec::new(),
            direction: Direction::Undirected,
            length: None,
            properties: Vec::new(),
        };
        if self.eat(&TokenKind::LBracket) {
            if let TokenKind::Ident(name) = self.peek() {
                rel.var = Some(name.clone());
                self.bump();
            }
            if self.eat(&TokenKind::Colon) {
                rel.types.push(self.expect_ident()?);
                while self.eat(&TokenKind::Pipe) {
                    let _ = self.eat(&TokenKind::Colon);
                    rel.types.push(self.expect_ident()?);
                }
            }
            if self.eat(&TokenKind::Star) {
                rel.length = Some(self.var_length()?);
            }
            if matches!(self.peek(), TokenKind::LBrace) {
                rel.properties = self.property_map()?;
            }
            self.expect(&TokenKind::RBracket)?;
        }
        // Trailing `->` (outgoing), `-` (undirected/close of incoming).
        let outgoing_suffix = match self.bump() {
            TokenKind::Arrow => true,
            TokenKind::Minus => false,
            other => {
                return Err(self.error(format!(
                    "expected `->` or `-` to close relationship pattern, found `{other}`"
                )))
            }
        };
        rel.direction = match (incoming_prefix, outgoing_suffix) {
            (false, true) => Direction::Outgoing,
            (true, false) => Direction::Incoming,
            (false, false) => Direction::Undirected,
            (true, true) => {
                return Err(self.error("relationship pattern cannot be both `<-` and `->`"))
            }
        };
        Ok(rel)
    }

    fn var_length(&mut self) -> Result<VarLength> {
        let mut len = VarLength { min: None, max: None };
        if let TokenKind::Int(v) = self.peek() {
            len.min = Some(*v as u32);
            self.bump();
        }
        if self.eat(&TokenKind::DotDot) {
            if let TokenKind::Int(v) = self.peek() {
                len.max = Some(*v as u32);
                self.bump();
            }
        } else if len.min.is_some() {
            // `*2` means exactly two hops.
            len.max = len.min;
        }
        Ok(len)
    }

    fn property_map(&mut self) -> Result<Vec<(String, Expr)>> {
        self.expect(&TokenKind::LBrace)?;
        let mut props = Vec::new();
        if !matches!(self.peek(), TokenKind::RBrace) {
            loop {
                let key = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.expr()?;
                props.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(props)
    }

    // ----- expressions -----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::Neq => Some(BinaryOp::Neq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::Le => Some(BinaryOp::Le),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::Ge => Some(BinaryOp::Ge),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("IN") => Some(BinaryOp::In),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut expr = self.atom()?;
        while self.eat(&TokenKind::Dot) {
            let prop = self.expect_ident()?;
            expr = Expr::Property(Box::new(expr), prop);
        }
        Ok(expr)
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::str(s)))
            }
            TokenKind::Parameter(p) => {
                self.bump();
                Ok(Expr::Parameter(p))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List(items))
            }
            TokenKind::Ident(name) => {
                // Literal keywords.
                if name.eq_ignore_ascii_case("true") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                self.bump();
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if self.eat(&TokenKind::Star) {
                        // count(*): no arguments.
                    } else if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::FunctionCall { name, distinct, args });
                }
                Ok(Expr::Var(name))
            }
            other => Err(self.error(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Figure 3a).
    const FIGURE3A: &str = "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City)\n\
                            RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";

    #[test]
    fn parses_the_running_example() {
        let q = parse_query(FIGURE3A).unwrap();
        assert_eq!(q.clauses.len(), 2);
        let Clause::Match(m) = &q.clauses[0] else { panic!("expected MATCH") };
        assert!(!m.optional);
        assert_eq!(m.patterns.len(), 1);
        let p = &m.patterns[0];
        assert_eq!(p.start.var.as_deref(), Some("n"));
        assert_eq!(p.start.labels, vec!["Person"]);
        assert_eq!(p.start.properties.len(), 1);
        assert_eq!(p.steps.len(), 1);
        let (rel, dst) = &p.steps[0];
        assert_eq!(rel.types, vec!["IS_LOCATED_IN"]);
        assert_eq!(rel.direction, Direction::Outgoing);
        assert_eq!(dst.var.as_deref(), Some("p"));
        assert_eq!(dst.labels, vec!["City"]);

        let Clause::Return(r) = &q.clauses[1] else { panic!("expected RETURN") };
        assert!(r.distinct);
        assert_eq!(r.items.len(), 2);
        assert_eq!(r.items[0].output_name(), "firstName");
        assert_eq!(r.items[1].output_name(), "cityId");
    }

    #[test]
    fn parses_incoming_and_undirected_relationships() {
        let q = parse_query("MATCH (a)<-[:KNOWS]-(b), (c)-[:KNOWS]-(d) RETURN a").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns[0].steps[0].0.direction, Direction::Incoming);
        assert_eq!(m.patterns[1].steps[0].0.direction, Direction::Undirected);
    }

    #[test]
    fn parses_variable_length_relationships() {
        let q = parse_query("MATCH (a:Person)-[:KNOWS*1..2]->(b:Person) RETURN b.id").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        let len = m.patterns[0].steps[0].0.length.unwrap();
        assert_eq!(len.min, Some(1));
        assert_eq!(len.max, Some(2));
        assert!(q.uses_recursion());
    }

    #[test]
    fn parses_unbounded_variable_length() {
        let q = parse_query("MATCH (a)-[:KNOWS*]->(b) RETURN b").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        let len = m.patterns[0].steps[0].0.length.unwrap();
        assert_eq!(len.min, None);
        assert_eq!(len.max, None);
    }

    #[test]
    fn parses_exact_hop_count() {
        let q = parse_query("MATCH (a)-[:KNOWS*2]->(b) RETURN b").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        let len = m.patterns[0].steps[0].0.length.unwrap();
        assert_eq!(len.min, Some(2));
        assert_eq!(len.max, Some(2));
    }

    #[test]
    fn parses_shortest_path() {
        let q = parse_query(
            "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]-(b:Person {id: 2})) RETURN b.id",
        )
        .unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns[0].shortest, Some(ShortestKind::Single));
        assert_eq!(m.patterns[0].path_var.as_deref(), Some("p"));
        assert!(q.uses_recursion());
    }

    #[test]
    fn parses_where_with_boolean_operators() {
        let q = parse_query(
            "MATCH (n:Person) WHERE n.id = 42 AND (n.age > 18 OR NOT n.name = 'Bob') RETURN n.id",
        )
        .unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        let w = m.where_clause.as_ref().unwrap();
        assert!(matches!(w, Expr::Binary(BinaryOp::And, _, _)));
    }

    #[test]
    fn parses_with_aggregation_and_order_by() {
        let q = parse_query(
            "MATCH (p:Person)-[:KNOWS]->(f:Person)\n\
             WITH f, count(p) AS cnt\n\
             RETURN DISTINCT f.id AS id, cnt ORDER BY cnt DESC LIMIT 20",
        )
        .unwrap();
        assert!(q.uses_aggregation());
        let Clause::With(w) = &q.clauses[1] else { panic!("expected WITH") };
        assert_eq!(w.items.len(), 2);
        let Clause::Return(r) = &q.clauses[2] else { panic!("expected RETURN") };
        assert_eq!(r.order_by.len(), 1);
        assert!(!r.order_by[0].ascending);
        assert_eq!(r.limit, Some(20));
    }

    #[test]
    fn parses_count_star_and_distinct_aggregates() {
        let q = parse_query("MATCH (n) RETURN count(*) AS c, count(DISTINCT n.id) AS d").unwrap();
        let Clause::Return(r) = &q.clauses[1] else { panic!() };
        let Expr::FunctionCall { name, args, distinct } = &r.items[0].expr else { panic!() };
        assert_eq!(name, "count");
        assert!(args.is_empty());
        assert!(!distinct);
        let Expr::FunctionCall { distinct, .. } = &r.items[1].expr else { panic!() };
        assert!(distinct);
    }

    #[test]
    fn parses_optional_match_and_parameters() {
        let q = parse_query(
            "MATCH (p:Person {id: $personId}) OPTIONAL MATCH (p)-[:KNOWS]->(f) RETURN f.id",
        )
        .unwrap();
        let Clause::Match(m0) = &q.clauses[0] else { panic!() };
        assert!(!m0.optional);
        assert!(matches!(m0.patterns[0].start.properties[0].1, Expr::Parameter(_)));
        let Clause::Match(m1) = &q.clauses[1] else { panic!() };
        assert!(m1.optional);
    }

    #[test]
    fn parses_multiple_relationship_types() {
        let q = parse_query("MATCH (a)-[:LIKES|KNOWS]->(b) RETURN b").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns[0].steps[0].0.types, vec!["LIKES", "KNOWS"]);
    }

    #[test]
    fn parses_multi_hop_chain_pattern() {
        let q = parse_query(
            "MATCH (m:Message)-[:HAS_CREATOR]->(p:Person)-[:IS_LOCATED_IN]->(c:City) RETURN c.name",
        )
        .unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns[0].steps.len(), 2);
        assert_eq!(m.patterns[0].nodes().len(), 3);
    }

    #[test]
    fn parses_unwind() {
        let q = parse_query("UNWIND [1, 2, 3] AS x RETURN x").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Unwind { alias, .. } if alias == "x"));
    }

    #[test]
    fn parses_in_operator() {
        let q = parse_query("MATCH (n) WHERE n.id IN [1, 2, 3] RETURN n").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        assert!(matches!(m.where_clause.as_ref().unwrap(), Expr::Binary(BinaryOp::In, _, _)));
    }

    #[test]
    fn rejects_query_without_return() {
        let err = parse_query("MATCH (n:Person)").unwrap_err();
        assert!(err.to_string().contains("RETURN"));
    }

    #[test]
    fn rejects_empty_query() {
        assert!(parse_query("").is_err());
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("MATCH (n) RETURN n )").is_err());
    }

    #[test]
    fn rejects_double_headed_relationship() {
        assert!(parse_query("MATCH (a)<-[:KNOWS]->(b) RETURN a").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("match (n:Person) return distinct n.id as id").unwrap();
        let Clause::Return(r) = &q.clauses[1] else { panic!() };
        assert!(r.distinct);
        assert_eq!(r.items[0].output_name(), "id");
    }

    #[test]
    fn accepts_trailing_semicolon() {
        assert!(parse_query("MATCH (n) RETURN n;").is_ok());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("MATCH (n) RETURN n.a + n.b * 2 AS v").unwrap();
        let Clause::Return(r) = &q.clauses[1] else { panic!() };
        // + at the top, * nested.
        let Expr::Binary(BinaryOp::Add, _, rhs) = &r.items[0].expr else {
            panic!("expected + at the top: {:?}", r.items[0].expr)
        };
        assert!(matches!(**rhs, Expr::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn anonymous_nodes_and_relationships() {
        let q = parse_query("MATCH ()-->() RETURN count(*) AS c").unwrap();
        let Clause::Match(m) = &q.clauses[0] else { panic!() };
        let p = &m.patterns[0];
        assert!(p.start.var.is_none());
        assert!(p.steps[0].0.types.is_empty());
        assert_eq!(p.steps[0].0.direction, Direction::Outgoing);
    }
}
