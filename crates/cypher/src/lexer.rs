//! Hand-written lexer shared by the Cypher and PG-Schema parsers.

use raqlet_common::{RaqletError, Result};

use crate::token::{Token, TokenKind};

/// Tokenize `input` into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    column: u32,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), pos: 0, line: 1, column: 1, _src: src }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> RaqletError {
        RaqletError::lex(msg, self.line, self.column)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else {
                tokens.push(Token::new(TokenKind::Eof, line, column));
                break;
            };
            let kind = match c {
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                '[' => self.single(TokenKind::LBracket),
                ']' => self.single(TokenKind::RBracket),
                '{' => self.single(TokenKind::LBrace),
                '}' => self.single(TokenKind::RBrace),
                ':' => self.single(TokenKind::Colon),
                ',' => self.single(TokenKind::Comma),
                ';' => self.single(TokenKind::Semicolon),
                '|' => self.single(TokenKind::Pipe),
                '+' => self.single(TokenKind::Plus),
                '*' => self.single(TokenKind::Star),
                '%' => self.single(TokenKind::Percent),
                '/' => self.single(TokenKind::Slash),
                '.' => {
                    self.bump();
                    if self.peek() == Some('.') {
                        self.bump();
                        TokenKind::DotDot
                    } else {
                        TokenKind::Dot
                    }
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        // A lone `->` without a preceding `-` only appears
                        // after `]`, the parser handles the combination.
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('>') => {
                            self.bump();
                            TokenKind::Neq
                        }
                        Some('=') => {
                            self.bump();
                            TokenKind::Le
                        }
                        Some('-') => {
                            self.bump();
                            TokenKind::BackArrow
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '=' => self.single(TokenKind::Eq),
                '\'' | '"' => self.string(c)?,
                '$' => {
                    self.bump();
                    let name = self.ident_body();
                    if name.is_empty() {
                        return Err(self.error("expected parameter name after `$`"));
                    }
                    TokenKind::Parameter(name)
                }
                '`' => {
                    // Backtick-quoted identifier.
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('`') => break,
                            Some(ch) => s.push(ch),
                            None => return Err(self.error("unterminated backtick identifier")),
                        }
                    }
                    TokenKind::Ident(s)
                }
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => TokenKind::Ident(self.ident_body()),
                other => return Err(self.error(format!("unexpected character `{other}`"))),
            };
            tokens.push(Token::new(kind, line, column));
        }
        Ok(tokens)
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                // Line comments: `//` and `--` (PG-Schema examples use `--`).
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => break,
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn ident_body(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self) -> Result<TokenKind> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let v: i64 =
            s.parse().map_err(|_| self.error(format!("integer literal `{s}` out of range")))?;
        Ok(TokenKind::Int(v))
    }

    fn string(&mut self, quote: char) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => s.push(c),
                    None => return Err(self.error("unterminated string literal")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
        Ok(TokenKind::Str(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_running_example_query() {
        let src = "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City)\n\
                   RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";
        let toks = kinds(src);
        assert!(toks.contains(&TokenKind::Ident("MATCH".into())));
        assert!(toks.contains(&TokenKind::Int(42)));
        assert!(toks.contains(&TokenKind::Arrow));
        assert!(toks.contains(&TokenKind::Ident("IS_LOCATED_IN".into())));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("< <= > >= = <> <- ->"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Neq,
                TokenKind::BackArrow,
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_variable_length_range() {
        assert_eq!(
            kinds("*1..2"),
            vec![
                TokenKind::Star,
                TokenKind::Int(1),
                TokenKind::DotDot,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_string_literals_with_both_quotes_and_escapes() {
        assert_eq!(
            kinds(r#"'hello' "wo\'rld" 'a\nb'"#),
            vec![
                TokenKind::Str("hello".into()),
                TokenKind::Str("wo'rld".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_parameters() {
        assert_eq!(
            kinds("$personId"),
            vec![TokenKind::Parameter("personId".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("MATCH // a comment\n /* block \n comment */ (n)");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("MATCH".into()),
                TokenKind::LParen,
                TokenKind::Ident("n".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_position_of_errors() {
        let err = tokenize("MATCH (n) WHERE n.id = 'oops").unwrap_err();
        assert!(err.is_syntax_error());
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn rejects_unexpected_characters() {
        let err = tokenize("MATCH ~").unwrap_err();
        assert!(err.to_string().contains('~'));
    }

    #[test]
    fn backtick_identifiers() {
        assert_eq!(
            kinds("`weird name`"),
            vec![TokenKind::Ident("weird name".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("MATCH\n(n)").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].column, 1);
    }
}
