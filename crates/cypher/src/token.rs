//! Token definitions for the Cypher and PG-Schema lexers.

use std::fmt;

/// A lexical token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub column: u32,
}

impl Token {
    /// Construct a token.
    pub fn new(kind: TokenKind, line: u32, column: u32) -> Self {
        Token { kind, line, column }
    }
}

/// The kinds of tokens produced by the lexer.
///
/// Keywords are lexed as [`TokenKind::Ident`] and classified by the parser,
/// because Cypher keywords are not reserved (e.g. `count` is both a function
/// name and a legal variable name).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`MATCH`, `Person`, `firstName`, ...).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (single or double quoted in the source).
    Str(String),
    /// Query parameter, e.g. `$personId`.
    Parameter(String),

    LParen,    // (
    RParen,    // )
    LBracket,  // [
    RBracket,  // ]
    LBrace,    // {
    RBrace,    // }
    Colon,     // :
    Comma,     // ,
    Dot,       // .
    DotDot,    // ..
    Semicolon, // ;
    Pipe,      // |

    Plus,    // +
    Minus,   // -
    Star,    // *
    Slash,   // /
    Percent, // %

    Eq,        // =
    Neq,       // <>
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    Arrow,     // ->
    BackArrow, // <- (lexed as Lt + Minus by the parser when inside patterns)

    /// End of input.
    Eof,
}

impl TokenKind {
    /// If this token is an identifier, return it.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this is an identifier equal to `kw`, compared
    /// case-insensitively (Cypher keywords are case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Parameter(p) => write!(f, "${p}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::DotDot => write!(f, ".."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::BackArrow => write!(f, "<-"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_match_case_insensitively() {
        let k = TokenKind::Ident("match".into());
        assert!(k.is_keyword("MATCH"));
        assert!(k.is_keyword("match"));
        assert!(!k.is_keyword("RETURN"));
    }

    #[test]
    fn as_ident_only_for_identifiers() {
        assert_eq!(TokenKind::Ident("x".into()).as_ident(), Some("x"));
        assert_eq!(TokenKind::Int(1).as_ident(), None);
    }

    #[test]
    fn display_of_punctuation() {
        assert_eq!(TokenKind::Arrow.to_string(), "->");
        assert_eq!(TokenKind::Neq.to_string(), "<>");
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Parameter("p".into()).to_string(), "$p");
    }
}
