//! In-memory property-graph engine: the stand-in for Neo4j in the paper's
//! evaluation.
//!
//! Two pieces live here:
//!
//! * [`PropertyGraph`] — an adjacency-list property-graph store (labelled
//!   nodes and edges, each with a property map);
//! * [`GraphEngine`] — a clause-by-clause PGIR interpreter. It evaluates each
//!   `MATCH` construct by expanding pattern elements over the adjacency
//!   lists, applies `WHERE` filters *after* the expansion, and projects
//!   `WITH`/`RETURN` items (with aggregation) at the end. This late-filtering,
//!   per-clause pipeline mirrors how an un-tuned graph engine executes the
//!   original Cypher query, which is exactly the role Neo4j plays in the
//!   paper's Table 1.

use std::collections::{HashMap, VecDeque};

use raqlet_common::cell::{Cell, ValueDict};
use raqlet_common::guard::{CheckPoint, QueryGuard};
use raqlet_common::hash::{FxHashMap, FxHashSet};
use raqlet_common::schema::normalize_label;
use raqlet_common::{RaqletError, Relation, Result, Value};
use raqlet_pgir::{
    AggFunc, ArithOp, ChainPat, CmpOp, MatchConstruct, OutputItem, PathPat, PatternElem,
    PgirClause, PgirExpr, PgirQuery,
};

/// A node in the property graph.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Node label (e.g. `Person`).
    pub label: String,
    /// Property map.
    pub properties: HashMap<String, Value>,
}

/// An edge in the property graph.
#[derive(Debug, Clone)]
pub struct GraphEdge {
    /// Edge label in Cypher spelling (e.g. `KNOWS`, `IS_LOCATED_IN`).
    pub label: String,
    /// Source node index.
    pub src: usize,
    /// Target node index.
    pub dst: usize,
    /// Property map.
    pub properties: HashMap<String, Value>,
}

/// An in-memory property graph with adjacency indexes.
///
/// Labels are normalized at **insert** time (underscores removed,
/// lowercased — see [`normalize_label`]), so `nodes_with_label` and the
/// per-node adjacency lookups are O(1) hash probes keyed by normal form
/// instead of scans that re-normalize every stored entry per hop. The raw
/// spelling is kept on each [`GraphNode`]/[`GraphEdge`]. Because
/// normalization is lossy, inserting a label whose spelling differs from an
/// earlier one with the same normal form (`HasTag` after `HAS_TAG`) is an
/// error: the two would silently merge in every lookup.
#[derive(Debug, Clone, Default)]
pub struct PropertyGraph {
    nodes: Vec<GraphNode>,
    edges: Vec<GraphEdge>,
    /// normalized node label -> node indexes.
    by_label: HashMap<String, Vec<usize>>,
    /// src node -> normalized edge label -> edge indexes.
    outgoing: HashMap<usize, HashMap<String, Vec<usize>>>,
    /// dst node -> normalized edge label -> edge indexes.
    incoming: HashMap<usize, HashMap<String, Vec<usize>>>,
    /// normalized node label -> first raw spelling seen.
    node_label_spellings: HashMap<String, String>,
    /// normalized edge label -> first raw spelling seen.
    edge_label_spellings: HashMap<String, String>,
}

/// Record `label` in the spelling registry under its normal form, rejecting
/// a spelling that differs from the one already registered for that form.
fn register_spelling(
    spellings: &mut HashMap<String, String>,
    kind: &str,
    label: &str,
) -> Result<String> {
    let norm = normalize_label(label);
    match spellings.get(&norm) {
        Some(first) if first != label => Err(RaqletError::schema(format!(
            "{kind} label `{label}` collides with `{first}` under label normalization \
             (underscores and case are ignored); rename one of them"
        ))),
        Some(_) => Ok(norm),
        None => {
            spellings.insert(norm.clone(), label.to_string());
            Ok(norm)
        }
    }
}

impl PropertyGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, returning its index. Errors if the label collides with a
    /// differently spelled label already in the graph (same normal form).
    pub fn add_node(&mut self, label: &str, properties: Vec<(&str, Value)>) -> Result<usize> {
        let norm = register_spelling(&mut self.node_label_spellings, "node", label)?;
        let idx = self.nodes.len();
        self.nodes.push(GraphNode {
            label: label.to_string(),
            properties: properties.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self.by_label.entry(norm).or_default().push(idx);
        Ok(idx)
    }

    /// Add an edge, returning its index. Errors if the label collides with a
    /// differently spelled label already in the graph (same normal form).
    pub fn add_edge(
        &mut self,
        label: &str,
        src: usize,
        dst: usize,
        properties: Vec<(&str, Value)>,
    ) -> Result<usize> {
        let norm = register_spelling(&mut self.edge_label_spellings, "edge", label)?;
        let idx = self.edges.len();
        self.edges.push(GraphEdge {
            label: label.to_string(),
            src,
            dst,
            properties: properties.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self.outgoing.entry(src).or_default().entry(norm.clone()).or_default().push(idx);
        self.incoming.entry(dst).or_default().entry(norm).or_default().push(idx);
        Ok(idx)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node data by index.
    pub fn node(&self, idx: usize) -> &GraphNode {
        &self.nodes[idx]
    }

    /// Edge data by index.
    pub fn edge(&self, idx: usize) -> &GraphEdge {
        &self.edges[idx]
    }

    /// All node indexes with the given label (matched case-tolerantly): one
    /// hash probe on the label's normal form.
    pub fn nodes_with_label(&self, label: &str) -> Vec<usize> {
        self.by_label.get(&normalize_label(label)).cloned().unwrap_or_default()
    }

    /// All node indexes.
    pub fn all_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).collect()
    }

    /// Outgoing edges of `node` with a label matching `label` (or all labels
    /// when `None`).
    pub fn outgoing_edges(&self, node: usize, label: Option<&str>) -> Vec<usize> {
        self.edges_from_index(&self.outgoing, node, label)
    }

    /// Incoming edges of `node` with a label matching `label`.
    pub fn incoming_edges(&self, node: usize, label: Option<&str>) -> Vec<usize> {
        self.edges_from_index(&self.incoming, node, label)
    }

    /// Outgoing edges of `node` whose label matches any of `labels` (all
    /// labels when the slice is empty — `[:A|B]` alternatives).
    pub fn outgoing_edges_any(&self, node: usize, labels: &[String]) -> Vec<usize> {
        self.edges_from_index_any(&self.outgoing, node, labels)
    }

    /// Incoming edges of `node` whose label matches any of `labels`.
    pub fn incoming_edges_any(&self, node: usize, labels: &[String]) -> Vec<usize> {
        self.edges_from_index_any(&self.incoming, node, labels)
    }

    fn edges_from_index(
        &self,
        index: &HashMap<usize, HashMap<String, Vec<usize>>>,
        node: usize,
        label: Option<&str>,
    ) -> Vec<usize> {
        let Some(per_label) = index.get(&node) else { return Vec::new() };
        match label {
            Some(want) => per_label.get(&normalize_label(want)).cloned().unwrap_or_default(),
            None => per_label.values().flatten().copied().collect(),
        }
    }

    fn edges_from_index_any(
        &self,
        index: &HashMap<usize, HashMap<String, Vec<usize>>>,
        node: usize,
        labels: &[String],
    ) -> Vec<usize> {
        let Some(per_label) = index.get(&node) else { return Vec::new() };
        if labels.is_empty() {
            return per_label.values().flatten().copied().collect();
        }
        let mut wanted: Vec<String> = labels.iter().map(|l| normalize_label(l)).collect();
        wanted.sort();
        wanted.dedup();
        wanted.iter().filter_map(|w| per_label.get(w)).flatten().copied().collect()
    }

    /// Neighbours reachable by one hop over `label` edges, respecting
    /// direction when `directed` is true.
    pub fn neighbours(&self, node: usize, label: Option<&str>, directed: bool) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.outgoing_edges(node, label).iter().map(|&e| self.edges[e].dst).collect();
        if !directed {
            out.extend(self.incoming_edges(node, label).iter().map(|&e| self.edges[e].src));
        }
        out
    }

    /// Neighbours reachable by one hop over edges matching any of `labels`.
    /// `directed` restricts hops to a stored direction; `forward` picks which
    /// one (reading order vs. `<-[...]-`).
    pub fn step_neighbours(
        &self,
        node: usize,
        labels: &[String],
        directed: bool,
        forward: bool,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        if !directed || forward {
            out.extend(self.outgoing_edges_any(node, labels).iter().map(|&e| self.edges[e].dst));
        }
        if !directed || !forward {
            out.extend(self.incoming_edges_any(node, labels).iter().map(|&e| self.edges[e].src));
        }
        out
    }
}

/// True when an edge's stored label matches any of the requested label
/// alternatives (an empty request matches everything).
fn edge_label_matches_any(label: &str, wanted: &[String]) -> bool {
    wanted.is_empty() || wanted.iter().any(|w| raqlet_common::schema::labels_match(label, w))
}

/// A value bound to a PGIR variable during graph execution.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Node(usize),
    Edge(usize),
    Scalar(Value),
}

type Row = HashMap<String, Binding>;

/// Statistics from a graph-engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total pattern-element expansions performed.
    pub expansions: usize,
    /// Rows alive after each clause, summed (a proxy for intermediate result
    /// size).
    pub intermediate_rows: usize,
}

/// Result of executing a PGIR query on the graph engine.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// Output rows.
    pub rows: Relation,
    /// Output column names.
    pub columns: Vec<String>,
    /// Execution statistics.
    pub stats: GraphStats,
}

/// The property-graph execution engine.
#[derive(Debug, Clone, Default)]
pub struct GraphEngine;

impl GraphEngine {
    /// Create a new engine.
    pub fn new() -> Self {
        GraphEngine
    }

    /// Execute a PGIR query against a property graph.
    pub fn execute(&self, query: &PgirQuery, graph: &PropertyGraph) -> Result<GraphResult> {
        self.execute_guarded(query, graph, &QueryGuard::new())
    }

    /// [`GraphEngine::execute`] under an execution [`QueryGuard`]: the guard
    /// is checked before every clause and once per binding row during pattern
    /// expansion, so deadlines, budgets and cancellation interrupt a
    /// combinatorial MATCH between row expansions. Intermediate binding rows
    /// count against the guard's tuple budget.
    pub fn execute_guarded(
        &self,
        query: &PgirQuery,
        graph: &PropertyGraph,
        guard: &QueryGuard,
    ) -> Result<GraphResult> {
        let mut rows: Vec<Row> = vec![HashMap::new()];
        let mut stats = GraphStats::default();
        let mut output: Option<(Relation, Vec<String>)> = None;

        for clause in &query.clauses {
            guard.checkpoint(CheckPoint::GraphStep)?;
            match clause {
                PgirClause::Match(m) => {
                    rows = self.eval_match(m, graph, rows, &mut stats, guard)?;
                }
                PgirClause::Where(w) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if eval_predicate(&w.predicate, &row, graph)?.is_truthy() {
                            kept.push(row);
                        }
                    }
                    rows = kept;
                }
                PgirClause::With(w) => {
                    rows = self.eval_projection(&w.items, &rows, graph, w.distinct)?;
                    if let Some(having) = &w.having {
                        let mut kept = Vec::with_capacity(rows.len());
                        for row in rows {
                            if eval_predicate(having, &row, graph)?.is_truthy() {
                                kept.push(row);
                            }
                        }
                        rows = kept;
                    }
                }
                PgirClause::Return(r) => {
                    let projected = self.eval_projection(&r.items, &rows, graph, true)?;
                    let columns: Vec<String> = r.items.iter().map(|i| i.alias.clone()).collect();
                    let mut rel = Relation::new(columns.len());
                    for row in &projected {
                        let tuple: Vec<Value> =
                            columns.iter().map(|c| binding_to_value(row.get(c), graph)).collect();
                        rel.insert_unchecked(tuple);
                    }
                    output = Some((rel, columns));
                }
                PgirClause::Unwind(u) => {
                    // Native UNWIND: each row fans out into one row per list
                    // element, with the element bound to the alias.
                    let mut fanned = Vec::with_capacity(rows.len() * u.values.len());
                    for row in rows {
                        for value in &u.values {
                            let mut r = row.clone();
                            r.insert(u.alias.clone(), Binding::Scalar(value.clone()));
                            fanned.push(r);
                        }
                    }
                    rows = fanned;
                }
            }
            stats.intermediate_rows += rows.len();
            guard.add_tuples(rows.len());
        }

        let (rows, columns) =
            output.ok_or_else(|| RaqletError::semantic("PGIR query has no RETURN construct"))?;
        Ok(GraphResult { rows, columns, stats })
    }

    fn eval_match(
        &self,
        m: &MatchConstruct,
        graph: &PropertyGraph,
        rows: Vec<Row>,
        stats: &mut GraphStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>> {
        if m.optional {
            return Err(RaqletError::unsupported("OPTIONAL MATCH on the graph engine"));
        }
        let mut rows = rows;
        for pattern in &m.patterns {
            rows = self.expand_pattern(pattern, graph, rows, stats, guard)?;
        }
        Ok(rows)
    }

    fn expand_pattern(
        &self,
        pattern: &PatternElem,
        graph: &PropertyGraph,
        rows: Vec<Row>,
        stats: &mut GraphStats,
        guard: &QueryGuard,
    ) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        match pattern {
            PatternElem::Node(n) => {
                for row in rows {
                    guard.checkpoint(CheckPoint::GraphStep)?;
                    stats.expansions += 1;
                    match row.get(&n.var) {
                        Some(Binding::Node(idx)) => {
                            if node_label_matches(graph, *idx, n.label.as_deref()) {
                                out.push(row);
                            }
                        }
                        Some(_) => {
                            return Err(RaqletError::semantic(format!(
                                "variable `{}` is not a node",
                                n.var
                            )))
                        }
                        None => {
                            let candidates = match &n.label {
                                Some(l) => graph.nodes_with_label(l),
                                None => graph.all_nodes(),
                            };
                            for idx in candidates {
                                let mut r = row.clone();
                                r.insert(n.var.clone(), Binding::Node(idx));
                                out.push(r);
                            }
                        }
                    }
                }
            }
            PatternElem::Edge(e) => {
                for row in rows {
                    guard.checkpoint(CheckPoint::GraphStep)?;
                    stats.expansions += 1;
                    let src_bound = match row.get(&e.src.var) {
                        Some(Binding::Node(i)) => Some(*i),
                        _ => None,
                    };
                    let dst_bound = match row.get(&e.dst.var) {
                        Some(Binding::Node(i)) => Some(*i),
                        _ => None,
                    };
                    // Candidate edges (any label alternative matches).
                    let candidates: Vec<usize> = if let Some(s) = src_bound {
                        let mut c = graph.outgoing_edges_any(s, &e.labels);
                        if !e.directed {
                            c.extend(graph.incoming_edges_any(s, &e.labels));
                        }
                        c
                    } else if let Some(d) = dst_bound {
                        let mut c = graph.incoming_edges_any(d, &e.labels);
                        if !e.directed {
                            c.extend(graph.outgoing_edges_any(d, &e.labels));
                        }
                        c
                    } else {
                        (0..graph.edge_count())
                            .filter(|&i| edge_label_matches_any(&graph.edge(i).label, &e.labels))
                            .collect()
                    };
                    for edge_idx in candidates {
                        let edge = graph.edge(edge_idx);
                        // Try both orientations for undirected patterns.
                        let orientations: Vec<(usize, usize)> = if e.directed {
                            vec![(edge.src, edge.dst)]
                        } else {
                            vec![(edge.src, edge.dst), (edge.dst, edge.src)]
                        };
                        for (s, d) in orientations {
                            if let Some(b) = src_bound {
                                if b != s {
                                    continue;
                                }
                            }
                            if let Some(b) = dst_bound {
                                if b != d {
                                    continue;
                                }
                            }
                            if !node_label_matches(graph, s, e.src.label.as_deref())
                                || !node_label_matches(graph, d, e.dst.label.as_deref())
                            {
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(e.src.var.clone(), Binding::Node(s));
                            r.insert(e.dst.var.clone(), Binding::Node(d));
                            r.insert(e.var.clone(), Binding::Edge(edge_idx));
                            out.push(r);
                        }
                    }
                }
            }
            PatternElem::Path(p) => {
                for row in rows {
                    guard.checkpoint(CheckPoint::GraphStep)?;
                    stats.expansions += 1;
                    let sources: Vec<usize> = match row.get(&p.src.var) {
                        Some(Binding::Node(i)) => vec![*i],
                        _ => match &p.src.label {
                            Some(l) => graph.nodes_with_label(l),
                            None => graph.all_nodes(),
                        },
                    };
                    let target_filter: Option<usize> = match row.get(&p.dst.var) {
                        Some(Binding::Node(i)) => Some(*i),
                        _ => None,
                    };
                    for source in sources {
                        let reached = self.traverse(graph, source, p);
                        for (node, dist) in reached {
                            if let Some(t) = target_filter {
                                if t != node {
                                    continue;
                                }
                            }
                            if !node_label_matches(graph, node, p.dst.label.as_deref()) {
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(p.src.var.clone(), Binding::Node(source));
                            r.insert(p.dst.var.clone(), Binding::Node(node));
                            r.insert(p.var.clone(), Binding::Scalar(Value::Int(dist as i64)));
                            out.push(r);
                        }
                    }
                }
            }
            PatternElem::Chain(c) => {
                let dst = c.dst().clone();
                for row in rows {
                    guard.checkpoint(CheckPoint::GraphStep)?;
                    stats.expansions += 1;
                    let sources: Vec<usize> = match row.get(&c.src.var) {
                        Some(Binding::Node(i)) => vec![*i],
                        _ => match &c.src.label {
                            Some(l) => graph.nodes_with_label(l),
                            None => graph.all_nodes(),
                        },
                    };
                    let target_filter: Option<usize> = match row.get(&dst.var) {
                        Some(Binding::Node(i)) => Some(*i),
                        _ => None,
                    };
                    for source in sources {
                        let reached = self.traverse_chain(graph, source, c, &row);
                        for (node, dist) in reached {
                            if let Some(t) = target_filter {
                                if t != node {
                                    continue;
                                }
                            }
                            if !node_label_matches(graph, node, dst.label.as_deref()) {
                                continue;
                            }
                            let mut r = row.clone();
                            r.insert(c.src.var.clone(), Binding::Node(source));
                            r.insert(dst.var.clone(), Binding::Node(node));
                            r.insert(c.var.clone(), Binding::Scalar(Value::Int(dist as i64)));
                            out.push(r);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// BFS traversal implementing variable-length and shortest-path
    /// semantics. Returns reached nodes with their hop distance (for
    /// reachability the minimal distance at which the node was first seen).
    fn traverse(&self, graph: &PropertyGraph, source: usize, p: &PathPat) -> Vec<(usize, u32)> {
        // Incoming single-segment paths are normalised to forward direction
        // by the PGIR lowering (endpoints swapped), so hops always read
        // forward here. BFS already yields minimal distances, so for
        // shortest-path semantics every surviving (node, d) pair is a
        // shortest path; for plain reachability the distance is
        // informational only.
        bfs_segment(graph, source, &p.labels, p.directed, true, p.min_hops, p.max_hops)
    }

    /// Evaluate a multi-hop shortestPath chain from one source: compose the
    /// per-step BFS minima left to right, keeping the minimal total distance
    /// per reached node — the same per-step-minimum composition the DLIR
    /// lowering performs (lengths are additive, so per-step minima compose).
    fn traverse_chain(
        &self,
        graph: &PropertyGraph,
        source: usize,
        c: &ChainPat,
        row: &Row,
    ) -> Vec<(usize, u32)> {
        let last = c.steps.len() - 1;
        let mut frontier: HashMap<usize, u32> = HashMap::from([(source, 0)]);
        for (i, step) in c.steps.iter().enumerate() {
            let mut next: HashMap<usize, u32> = HashMap::new();
            for (&node, &total) in &frontier {
                for (reached, d) in bfs_segment(
                    graph,
                    node,
                    &step.labels,
                    step.directed,
                    step.forward,
                    step.min_hops,
                    step.max_hops,
                ) {
                    if i < last {
                        // Intermediate nodes are existential: enforce their
                        // label (and a pre-bound variable, if any) here; the
                        // final node is checked by the caller.
                        if !node_label_matches(graph, reached, step.node.label.as_deref()) {
                            continue;
                        }
                        if let Some(Binding::Node(b)) = row.get(&step.node.var) {
                            if *b != reached {
                                continue;
                            }
                        }
                    }
                    let candidate = total + d;
                    next.entry(reached)
                        .and_modify(|t| *t = (*t).min(candidate))
                        .or_insert(candidate);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier.into_iter().collect()
    }

    fn eval_projection(
        &self,
        items: &[OutputItem],
        rows: &[Row],
        graph: &PropertyGraph,
        distinct: bool,
    ) -> Result<Vec<Row>> {
        // Dedup and group-by keys are packed cells: projected values are
        // encoded through a projection-local dictionary, so repeated string
        // keys hash and compare as `u64` words instead of re-walking the
        // string per row.
        let dict = ValueDict::new();
        let has_aggregate = items.iter().any(|i| i.expr.contains_aggregate());
        if !has_aggregate {
            let mut out = Vec::with_capacity(rows.len());
            let mut seen: FxHashSet<Vec<Cell>> = FxHashSet::default();
            for row in rows {
                let mut new_row: Row = HashMap::new();
                let mut key: Vec<Cell> = Vec::with_capacity(items.len());
                for item in items {
                    let binding = eval_item(&item.expr, row, graph)?;
                    if distinct {
                        key.push(dict.encode_value(&binding_to_value(Some(&binding), graph)));
                    }
                    new_row.insert(item.alias.clone(), binding);
                }
                if distinct && !seen.insert(key) {
                    continue;
                }
                out.push(new_row);
            }
            return Ok(out);
        }

        // Group by the non-aggregate items.
        let group_items: Vec<&OutputItem> =
            items.iter().filter(|i| !i.expr.contains_aggregate()).collect();
        let mut groups: FxHashMap<Vec<Cell>, (Row, Vec<&Row>)> = FxHashMap::default();
        for row in rows {
            let mut key: Vec<Cell> = Vec::with_capacity(group_items.len());
            let mut group_row: Row = HashMap::new();
            for item in &group_items {
                let binding = eval_item(&item.expr, row, graph)?;
                key.push(dict.encode_value(&binding_to_value(Some(&binding), graph)));
                group_row.insert(item.alias.clone(), binding);
            }
            groups.entry(key).or_insert_with(|| (group_row, Vec::new())).1.push(row);
        }
        let mut out = Vec::new();
        for (_, (mut group_row, members)) in groups {
            for item in items {
                if let PgirExpr::Aggregate { func, distinct: agg_distinct, arg } = &item.expr {
                    let mut values = Vec::new();
                    for member in &members {
                        let v = match arg {
                            Some(a) => binding_to_value(Some(&eval_item(a, member, graph)?), graph),
                            None => Value::Int(1),
                        };
                        values.push(v);
                    }
                    // Set semantics: Raqlet aggregates over distinct values,
                    // matching the Datalog and SQL backends.
                    if *agg_distinct || arg.is_some() {
                        values.sort();
                        values.dedup();
                    }
                    let result = match func {
                        AggFunc::Count => Value::Int(values.len() as i64),
                        AggFunc::Sum => {
                            Value::Int(values.iter().filter_map(|v| v.as_int()).sum::<i64>())
                        }
                        AggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Null),
                        AggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Null),
                        AggFunc::Avg => {
                            let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
                            if ints.is_empty() {
                                Value::Null
                            } else {
                                Value::Int(ints.iter().sum::<i64>() / ints.len() as i64)
                            }
                        }
                        AggFunc::Collect => {
                            return Err(RaqletError::unsupported("collect() on the graph engine"))
                        }
                    };
                    group_row.insert(item.alias.clone(), Binding::Scalar(result));
                }
            }
            out.push(group_row);
        }
        Ok(out)
    }
}

/// BFS over one path segment from `source`: nodes reachable within
/// `[min_hops, max_hops]` hops over edges matching `labels`, with the minimal
/// hop distance each was first seen at. The source itself is only reached
/// again through a cycle (distance ≥ 1) unless `min_hops == 0`, matching
/// Cypher's semantics for `*1..` patterns on cyclic graphs.
fn bfs_segment(
    graph: &PropertyGraph,
    source: usize,
    labels: &[String],
    directed: bool,
    forward: bool,
    min_hops: u32,
    max_hops: Option<u32>,
) -> Vec<(usize, u32)> {
    if min_hops >= 2 {
        // A plain BFS only knows each node's *minimal* distance, but a node
        // whose minimal distance is below `min_hops` may still be reached by
        // a longer walk inside the requested range (e.g. bouncing over an
        // undirected edge) — the Datalog lowering enumerates those walks, so
        // the graph engine must too.
        return walk_segment(graph, source, labels, directed, forward, min_hops, max_hops);
    }
    let max = max_hops.unwrap_or(u32::MAX);
    let mut dist: HashMap<usize, u32> = HashMap::new();
    let mut queue = VecDeque::new();
    if max >= 1 {
        for next in graph.step_neighbours(source, labels, directed, forward) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                e.insert(1);
                queue.push_back(next);
            }
        }
    }
    while let Some(n) = queue.pop_front() {
        let d = dist[&n];
        if d >= max {
            continue;
        }
        for next in graph.step_neighbours(n, labels, directed, forward) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                e.insert(d + 1);
                queue.push_back(next);
            }
        }
    }
    // A zero-hop match (src = dst with no traversal) is only allowed when the
    // segment's minimum is 0, and it dominates any cyclic path back.
    if min_hops == 0 {
        dist.insert(source, 0);
    }
    dist.into_iter().filter(|(_, d)| *d >= min_hops && *d <= max).collect()
}

/// Walk-semantics traversal for `min_hops >= 2`: iterate exact-length
/// frontier sets up to `max_hops` (or `min_hops` when unbounded), recording
/// each node at the first qualifying walk length; for unbounded patterns the
/// exactly-`min_hops` set is then extended by an ordinary BFS — mirroring the
/// two-phase DLIR lowering.
fn walk_segment(
    graph: &PropertyGraph,
    source: usize,
    labels: &[String],
    directed: bool,
    forward: bool,
    min_hops: u32,
    max_hops: Option<u32>,
) -> Vec<(usize, u32)> {
    let cap = max_hops.unwrap_or(min_hops);
    let mut result: HashMap<usize, u32> = HashMap::new();
    let mut frontier: Vec<usize> = vec![source];
    for l in 1..=cap {
        let mut next: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &n in &frontier {
            next.extend(graph.step_neighbours(n, labels, directed, forward));
        }
        frontier = next.into_iter().collect();
        if frontier.is_empty() {
            break;
        }
        if l >= min_hops {
            for &n in &frontier {
                result.entry(n).or_insert(l);
            }
        }
    }
    if max_hops.is_none() {
        // `*min..`: everything reachable from a walk of length exactly
        // `min_hops` also qualifies, at that walk's length plus the
        // extension.
        let mut queue: VecDeque<usize> = frontier.into_iter().collect();
        while let Some(n) = queue.pop_front() {
            let d = result[&n];
            for next in graph.step_neighbours(n, labels, directed, forward) {
                if let std::collections::hash_map::Entry::Vacant(e) = result.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
    }
    result.into_iter().collect()
}

fn node_label_matches(graph: &PropertyGraph, node: usize, label: Option<&str>) -> bool {
    match label {
        None => true,
        Some(l) => raqlet_common::schema::labels_match(&graph.node(node).label, l),
    }
}

fn eval_item(expr: &PgirExpr, row: &Row, graph: &PropertyGraph) -> Result<Binding> {
    match expr {
        PgirExpr::Var(v) => row
            .get(v)
            .cloned()
            .ok_or_else(|| RaqletError::semantic(format!("unknown variable `{v}`"))),
        other => Ok(Binding::Scalar(eval_predicate(other, row, graph)?)),
    }
}

/// Evaluate a scalar/boolean PGIR expression over a row.
fn eval_predicate(expr: &PgirExpr, row: &Row, graph: &PropertyGraph) -> Result<Value> {
    match expr {
        PgirExpr::Const(v) => Ok(v.clone()),
        PgirExpr::Var(v) => match row.get(v) {
            Some(b) => Ok(binding_to_value(Some(b), graph)),
            None => Err(RaqletError::semantic(format!("unknown variable `{v}`"))),
        },
        PgirExpr::Property { var, prop } => {
            let binding = row
                .get(var)
                .ok_or_else(|| RaqletError::semantic(format!("unknown variable `{var}`")))?;
            match binding {
                Binding::Node(idx) => {
                    Ok(graph.node(*idx).properties.get(prop).cloned().unwrap_or(Value::Null))
                }
                Binding::Edge(idx) => {
                    Ok(graph.edge(*idx).properties.get(prop).cloned().unwrap_or(Value::Null))
                }
                Binding::Scalar(_) => Err(RaqletError::semantic(format!(
                    "cannot access property `{prop}` of scalar `{var}`"
                ))),
            }
        }
        PgirExpr::Cmp { op, lhs, rhs } => {
            let l = eval_predicate(lhs, row, graph)?;
            let r = eval_predicate(rhs, row, graph)?;
            let result = match op {
                CmpOp::Eq => l == r,
                CmpOp::Neq => l != r,
                CmpOp::Lt => l < r,
                CmpOp::Le => l <= r,
                CmpOp::Gt => l > r,
                CmpOp::Ge => l >= r,
            };
            Ok(Value::Bool(result))
        }
        PgirExpr::And(a, b) => Ok(Value::Bool(
            eval_predicate(a, row, graph)?.is_truthy()
                && eval_predicate(b, row, graph)?.is_truthy(),
        )),
        PgirExpr::Or(a, b) => Ok(Value::Bool(
            eval_predicate(a, row, graph)?.is_truthy()
                || eval_predicate(b, row, graph)?.is_truthy(),
        )),
        PgirExpr::Not(e) => Ok(Value::Bool(!eval_predicate(e, row, graph)?.is_truthy())),
        PgirExpr::InList { expr, list } => {
            let v = eval_predicate(expr, row, graph)?;
            Ok(Value::Bool(list.contains(&v)))
        }
        PgirExpr::Arith { op, lhs, rhs } => {
            let l = eval_predicate(lhs, row, graph)?;
            let r = eval_predicate(rhs, row, graph)?;
            let (Some(a), Some(b)) = (l.as_int(), r.as_int()) else { return Ok(Value::Null) };
            Ok(match op {
                ArithOp::Add => Value::Int(a + b),
                ArithOp::Sub => Value::Int(a - b),
                ArithOp::Mul => Value::Int(a * b),
                ArithOp::Div => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a / b)
                    }
                }
                ArithOp::Mod => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a % b)
                    }
                }
            })
        }
        PgirExpr::Aggregate { .. } => {
            Err(RaqletError::semantic("aggregate outside of WITH/RETURN projection"))
        }
    }
}

/// Convert a binding to the scalar value placed in an output tuple: nodes
/// and edges are represented by their `id` property (falling back to their
/// internal index).
fn binding_to_value(binding: Option<&Binding>, graph: &PropertyGraph) -> Value {
    match binding {
        None => Value::Null,
        Some(Binding::Scalar(v)) => v.clone(),
        Some(Binding::Node(idx)) => {
            graph.node(*idx).properties.get("id").cloned().unwrap_or(Value::Int(*idx as i64))
        }
        Some(Binding::Edge(idx)) => {
            graph.edge(*idx).properties.get("id").cloned().unwrap_or(Value::Int(*idx as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_pgir::{cypher_to_pgir, LowerOptions};

    /// Small social graph: Alice -KNOWS-> Bob -KNOWS-> Carol; Alice located
    /// in Edinburgh, Bob and Carol in Glasgow.
    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let alice = g
            .add_node("Person", vec![("id", Value::Int(1)), ("firstName", Value::str("Alice"))])
            .unwrap();
        let bob = g
            .add_node("Person", vec![("id", Value::Int(2)), ("firstName", Value::str("Bob"))])
            .unwrap();
        let carol = g
            .add_node("Person", vec![("id", Value::Int(3)), ("firstName", Value::str("Carol"))])
            .unwrap();
        let edinburgh = g
            .add_node("City", vec![("id", Value::Int(100)), ("name", Value::str("Edinburgh"))])
            .unwrap();
        let glasgow = g
            .add_node("City", vec![("id", Value::Int(200)), ("name", Value::str("Glasgow"))])
            .unwrap();
        g.add_edge("KNOWS", alice, bob, vec![("id", Value::Int(10))]).unwrap();
        g.add_edge("KNOWS", bob, carol, vec![("id", Value::Int(11))]).unwrap();
        g.add_edge("IS_LOCATED_IN", alice, edinburgh, vec![("id", Value::Int(20))]).unwrap();
        g.add_edge("IS_LOCATED_IN", bob, glasgow, vec![("id", Value::Int(21))]).unwrap();
        g.add_edge("IS_LOCATED_IN", carol, glasgow, vec![("id", Value::Int(22))]).unwrap();
        g
    }

    fn run(src: &str, graph: &PropertyGraph) -> GraphResult {
        let pgir = cypher_to_pgir(src, &LowerOptions::new()).unwrap();
        GraphEngine::new().execute(&pgir, graph).unwrap()
    }

    #[test]
    fn single_hop_pattern_with_filter() {
        let g = sample_graph();
        let result = run(
            "MATCH (n:Person {id: 1})-[:IS_LOCATED_IN]->(c:City) \
             RETURN DISTINCT n.firstName AS firstName, c.name AS city",
            &g,
        );
        assert_eq!(result.columns, vec!["firstName", "city"]);
        assert_eq!(result.rows.sorted(), vec![vec![Value::str("Alice"), Value::str("Edinburgh")]]);
    }

    #[test]
    fn incoming_and_undirected_patterns() {
        let g = sample_graph();
        let incoming = run(
            "MATCH (c:City)<-[:IS_LOCATED_IN]-(p:Person) WHERE c.name = 'Glasgow' \
             RETURN p.firstName AS name",
            &g,
        );
        assert_eq!(incoming.rows.len(), 2);
        let undirected = run("MATCH (a:Person {id: 2})-[:KNOWS]-(b:Person) RETURN b.id AS id", &g);
        // Bob knows Carol and is known by Alice.
        assert_eq!(undirected.rows.len(), 2);
    }

    #[test]
    fn variable_length_reachability() {
        let g = sample_graph();
        let result =
            run("MATCH (a:Person {id: 1})-[:KNOWS*1..2]->(b:Person) RETURN b.id AS id", &g);
        assert_eq!(result.rows.sorted(), vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    }

    #[test]
    fn unbounded_reachability_handles_cycles() {
        let mut g = sample_graph();
        // close the cycle: Carol knows Alice.
        g.add_edge("KNOWS", 2, 0, vec![("id", Value::Int(12))]).unwrap();
        let result = run("MATCH (a:Person {id: 1})-[:KNOWS*]->(b:Person) RETURN b.id AS id", &g);
        // Alice reaches Bob, Carol and (around the cycle) herself.
        assert_eq!(result.rows.len(), 3);
    }

    #[test]
    fn shortest_path_query() {
        let g = sample_graph();
        let result = run(
            "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]-(b:Person {id: 3})) \
             RETURN b.id AS id",
            &g,
        );
        assert_eq!(result.rows.sorted(), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn aggregation_in_with() {
        let g = sample_graph();
        let result = run(
            "MATCH (c:City)<-[:IS_LOCATED_IN]-(p:Person) \
             WITH c, count(p) AS inhabitants \
             RETURN c.name AS name, inhabitants AS inhabitants",
            &g,
        );
        let rows = result.rows.sorted();
        assert!(rows.contains(&vec![Value::str("Edinburgh"), Value::Int(1)]));
        assert!(rows.contains(&vec![Value::str("Glasgow"), Value::Int(2)]));
    }

    #[test]
    fn distinct_return_deduplicates() {
        let g = sample_graph();
        // Two persons live in Glasgow -> one distinct city name.
        let result = run(
            "MATCH (p:Person)-[:IS_LOCATED_IN]->(c:City {name: 'Glasgow'}) \
             RETURN DISTINCT c.name AS name",
            &g,
        );
        assert_eq!(result.rows.len(), 1);
    }

    #[test]
    fn missing_properties_are_null_not_errors() {
        let g = sample_graph();
        let result = run("MATCH (p:Person {id: 1}) RETURN p.nickname AS nick", &g);
        assert_eq!(result.rows.sorted(), vec![vec![Value::Null]]);
    }

    #[test]
    fn stats_track_expansion_work() {
        let g = sample_graph();
        let result = run("MATCH (p:Person)-[:KNOWS]->(q:Person) RETURN q.id AS id", &g);
        assert!(result.stats.expansions > 0);
        assert!(result.stats.intermediate_rows > 0);
    }

    #[test]
    fn unwind_fans_each_row_out_per_list_element() {
        let g = sample_graph();
        let result = run(
            "UNWIND [1, 3] AS pid MATCH (n:Person {id: pid}) \
             RETURN n.firstName AS name",
            &g,
        );
        assert_eq!(
            result.rows.sorted(),
            vec![vec![Value::str("Alice")], vec![Value::str("Carol")]]
        );
    }

    #[test]
    fn alternative_relationship_types_match_either_label() {
        let g = sample_graph();
        // Alice -KNOWS-> Bob and Alice -IS_LOCATED_IN-> Edinburgh.
        let result =
            run("MATCH (a:Person {id: 1})-[:KNOWS|IS_LOCATED_IN]->(x) RETURN x.id AS id", &g);
        assert_eq!(result.rows.sorted(), vec![vec![Value::Int(2)], vec![Value::Int(100)]]);
    }

    #[test]
    fn zero_hop_variable_length_includes_the_source() {
        let g = sample_graph();
        let result =
            run("MATCH (a:Person {id: 1})-[:KNOWS*0..1]->(b:Person) RETURN b.id AS id", &g);
        // Zero hops reaches Alice herself; one hop reaches Bob.
        assert_eq!(result.rows.sorted(), vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn multi_hop_shortest_path_composes_per_step_minima() {
        let g = sample_graph();
        // Shortest KNOWS-path to any person, then their city: via Bob/Carol
        // the chain reaches Glasgow; under walk semantics the undirected
        // Alice–Bob edge also leads back to Alice (2 hops), then Edinburgh.
        let result = run(
            "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]-(b:Person)-[:IS_LOCATED_IN]->(c:City)) \
             RETURN c.name AS name",
            &g,
        );
        assert_eq!(
            result.rows.sorted(),
            vec![vec![Value::str("Edinburgh")], vec![Value::str("Glasgow")]]
        );
    }

    #[test]
    fn multi_hop_shortest_path_binds_the_minimal_total_length() {
        let g = sample_graph();
        // Glasgow is reachable via Bob (1 KNOWS hop + 1 location hop) and
        // via Carol (2 + 1); Edinburgh via the walk back to Alice (2 + 1).
        // The path variable carries the minimal total per city.
        let result = run(
            "MATCH p = shortestPath((a:Person {id: 1})-[:KNOWS*]-(b:Person)-[:IS_LOCATED_IN]->(c:City)) \
             RETURN c.name AS name, p AS totalHops",
            &g,
        );
        assert_eq!(
            result.rows.sorted(),
            vec![
                vec![Value::str("Edinburgh"), Value::Int(3)],
                vec![Value::str("Glasgow"), Value::Int(2)]
            ]
        );
    }

    #[test]
    fn graph_store_basic_accessors() {
        let g = sample_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.nodes_with_label("Person").len(), 3);
        assert_eq!(g.nodes_with_label("City").len(), 2);
        assert_eq!(g.outgoing_edges(0, Some("KNOWS")).len(), 1);
        assert_eq!(g.incoming_edges(1, Some("KNOWS")).len(), 1);
        assert_eq!(g.neighbours(1, Some("KNOWS"), false).len(), 2);
        assert_eq!(g.neighbours(1, Some("KNOWS"), true).len(), 1);
    }

    #[test]
    fn label_lookups_stay_case_tolerant_after_normalization() {
        // The schema spelling (`isLocatedIn`) and the Cypher spelling
        // (`IS_LOCATED_IN`) must keep resolving to the same stored edges
        // now that lookups are keyed by normal form.
        let g = sample_graph();
        assert_eq!(g.nodes_with_label("person").len(), 3);
        assert_eq!(g.nodes_with_label("PERSON").len(), 3);
        assert_eq!(g.outgoing_edges(0, Some("isLocatedIn")).len(), 1);
        assert_eq!(g.outgoing_edges(0, Some("IS_LOCATED_IN")).len(), 1);
        assert_eq!(g.incoming_edges(4, Some("islocatedin")).len(), 2);
        assert_eq!(g.outgoing_edges_any(0, &["knows".into(), "isLocatedIn".into()]).len(), 2);
        // Duplicate alternatives must not double-count the same edges.
        assert_eq!(g.outgoing_edges_any(0, &["KNOWS".into(), "knows".into()]).len(), 1);
        assert!(g.nodes_with_label("NoSuchLabel").is_empty());
        assert!(g.outgoing_edges(0, Some("NoSuchLabel")).is_empty());
    }

    #[test]
    fn colliding_label_spellings_are_rejected_at_insert() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("Person", vec![]).unwrap();
        // Same spelling again: fine.
        let b = g.add_node("Person", vec![]).unwrap();
        // A different spelling with the same normal form would silently
        // merge with `Person` in every lookup — reject it loudly.
        let err = g.add_node("PER_SON", vec![]).unwrap_err();
        assert!(err.to_string().contains("collides"), "{err}");
        g.add_edge("HasTag", a, b, vec![]).unwrap();
        g.add_edge("HasTag", b, a, vec![]).unwrap();
        let err = g.add_edge("HAS_TAG", a, b, vec![]).unwrap_err();
        assert!(err.to_string().contains("collides"), "{err}");
        // The failed inserts left the graph unchanged.
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }
}
