//! Warm, prepared execution of Datalog programs.
//!
//! [`DatalogEngine::evaluate`] copies every referenced extensional relation
//! into a fresh working set on each call and rebuilds the persistent join
//! indexes there — profiling put that clone+reindex tax at roughly 60% of
//! small optimized queries. A [`PreparedDatabase`] pays it once: the EDB
//! facts are loaded a single time, the packed row arenas, the value
//! dictionary and the persistent indexes stay alive across executions, and
//! successive programs run directly against the warm working set.
//!
//! Two further fixed costs are amortised here:
//!
//! * **plan caching** — validation, stratification and rule compilation are
//!   memoized per program fingerprint, so re-executing a program compiles
//!   nothing ([`PreparedDatabase::plan_compiles`] lets tests pin "zero
//!   recompiles on re-execution");
//! * **dictionary warmth** — constants and EDB strings are encoded into the
//!   shared [`raqlet_common::ValueDict`] on first sight and never again; a
//!   warm run performs zero dictionary re-encoding (pin via
//!   [`raqlet_common::cell::ValueDict::len`] on
//!   [`PreparedDatabase::database`]).
//!
//! Derived relations follow copy-on-write semantics at relation granularity:
//! pure-IDB relations are created inside the warm set for the duration of a
//! run and dropped afterwards, while warm relations a program *also* derives
//! into (Datalog allows facts and rules for the same relation) are
//! snapshotted before the run and restored after it. Executions therefore
//! never observe one another's derivations, and the extensional arenas —
//! including every index built on them — are reused verbatim, which
//! [`PreparedDatabase::index_builds`] lets tests pin ("a second execution
//! performs zero index rebuilds").

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use raqlet_common::error::panic_message;
use raqlet_common::{Database, QueryGuard, RaqletError, Relation, Result, SupportCounts, Tuple};
use raqlet_dlir::DlirProgram;

use crate::datalog::{DatalogEngine, EvalStats, ProgramPlan};
use crate::ivm::{self, EdbDelta};

/// Rollback snapshot of one standing query: its derived relations, support
/// counts and epoch, captured before an armed guarded delta mutates them.
type ViewSnapshot = (Vec<(String, Relation)>, HashMap<String, SupportCounts>, u64);

/// Run `f` with panics converted to [`RaqletError::Internal`]. Evaluation
/// mutates the warm database in place, so a panic must not unwind through
/// the callers here — they restore the pre-call state on *error return*,
/// and this adapter turns the panic into exactly that. `AssertUnwindSafe`
/// is sound because every caller restores or discards the touched state
/// before the error escapes.
fn contain_panics<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(RaqletError::internal(format!(
            "evaluation panicked: {}",
            panic_message(payload.as_ref())
        )))
    })
}

/// A standing query installed by [`PreparedDatabase::install_view`]: its
/// compiled plan, its materialized derived relations (moved into the warm
/// database for the duration of each maintenance pass, kept outside it the
/// rest of the time so plain [`PreparedDatabase::run`] executions never see
/// them), and the derivation-count tables of its counting-managed
/// components.
#[derive(Debug, Clone)]
struct StandingQuery {
    plan: Arc<ProgramPlan>,
    output: String,
    derived: Vec<(String, Relation)>,
    counts: HashMap<String, SupportCounts>,
    epoch: u64,
}

/// A warm Datalog working set that amortises EDB loading, index construction
/// and program compilation across executions.
///
/// ```
/// use raqlet_common::{Database, Value};
/// use raqlet_dlir::{Atom, BodyElem, DlirProgram, Rule};
/// use raqlet_engine::PreparedDatabase;
///
/// // tc(x, y) :- edge(x, y).   tc(x, y) :- tc(x, z), edge(z, y).
/// let mut program = DlirProgram::default();
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![BodyElem::Atom(Atom::with_vars("edge", &["x", "y"]))],
/// ));
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![
///         BodyElem::Atom(Atom::with_vars("tc", &["x", "z"]))
///         , BodyElem::Atom(Atom::with_vars("edge", &["z", "y"])),
///     ],
/// ));
/// program.add_output("tc");
///
/// let mut db = Database::new();
/// for (a, b) in [(1, 2), (2, 3)] {
///     db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
/// }
///
/// let mut prepared = PreparedDatabase::new(db);
/// let cold = prepared.run(&program, "tc").unwrap();
/// let warm = prepared.run(&program, "tc").unwrap(); // no clone, no reindex, no recompile
/// assert_eq!(cold, warm);
/// assert_eq!(warm.len(), 3);
/// assert_eq!(prepared.executions(), 2);
/// assert_eq!(prepared.plan_compiles(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PreparedDatabase {
    engine: DatalogEngine,
    db: Database,
    last_stats: EvalStats,
    executions: usize,
    /// Index builds whose relation was since replaced by a copy-on-write
    /// restore (the restored snapshot carries the *pre-run* count, so these
    /// would otherwise vanish from [`PreparedDatabase::index_builds`]).
    restored_builds: usize,
    /// Compiled-plan cache, keyed by the program's exact fingerprint string.
    plans: HashMap<String, Arc<ProgramPlan>>,
    /// Number of from-scratch program compilations (validate + stratify +
    /// rule plans) this working set has paid for. Stable across repeated
    /// executions of the same program.
    plan_compiles: usize,
    /// Installed standing queries, maintained by [`PreparedDatabase::apply_delta`].
    views: Vec<StandingQuery>,
    /// Number of delta batches applied so far.
    epoch: u64,
    /// Run the `raqcheck` analyzer (warn level) on every from-scratch plan
    /// compile. Off by default — warm executions never re-lint either way.
    lint_on_prepare: bool,
    /// Findings from the most recent lint-on-prepare pass.
    diagnostics: Vec<raqlet_analysis::Diagnostic>,
}

/// Fingerprint a program *exactly*: its rules and outputs (via the canonical
/// `Display` rendering), its lattice annotations, and its schema (validation
/// consults declared arities, so the same rule text under a different schema
/// must not hit the cache). The full string is the cache key — one
/// allocation per run, no hash-collision risk.
fn program_fingerprint(program: &DlirProgram) -> String {
    format!("{program}\x1f{:?}\x1f{:?}", program.annotations, program.schema)
}

impl PreparedDatabase {
    /// Prepare a working set from an extensional database, using the default
    /// (semi-naive, auto-threaded) engine.
    pub fn new(edb: Database) -> Self {
        Self::with_engine(edb, DatalogEngine::new())
    }

    /// Prepare a working set evaluated by the given engine configuration.
    pub fn with_engine(edb: Database, engine: DatalogEngine) -> Self {
        PreparedDatabase {
            engine,
            db: edb,
            last_stats: EvalStats::default(),
            executions: 0,
            restored_builds: 0,
            plans: HashMap::new(),
            plan_compiles: 0,
            views: Vec::new(),
            epoch: 0,
            lint_on_prepare: false,
            diagnostics: Vec::new(),
        }
    }

    /// Enable or disable automatic `raqcheck` analysis on plan compilation.
    /// When enabled, every from-scratch compile (a plan-cache miss) runs the
    /// analyzer at its default severities — statistics are collected from the
    /// warm working set, so the advisory plan lints see real row counts — and
    /// the findings land in [`PreparedDatabase::diagnostics`]. Findings never
    /// block execution here; deny-level semantic errors already fail plan
    /// compilation itself.
    pub fn set_lint_on_prepare(&mut self, on: bool) {
        self.lint_on_prepare = on;
    }

    /// Findings of the most recent lint-on-prepare pass (empty when linting
    /// is disabled or every compiled program was clean).
    pub fn diagnostics(&self) -> &[raqlet_analysis::Diagnostic] {
        &self.diagnostics
    }

    /// The warm working set (extensional relations plus their persistent
    /// indexes; derived relations of past runs are not retained).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The engine executing programs against this working set.
    pub fn engine(&self) -> &DatalogEngine {
        &self.engine
    }

    /// Statistics of the most recent [`PreparedDatabase::run`].
    pub fn last_stats(&self) -> &EvalStats {
        &self.last_stats
    }

    /// Number of successful executions so far.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Number of from-scratch program compilations (validation,
    /// stratification, rule-plan generation, constant encoding) paid so far.
    /// Re-executing a previously seen program performs **zero** recompiles —
    /// the count does not grow.
    pub fn plan_compiles(&self) -> usize {
        self.plan_compiles
    }

    /// Total from-scratch index constructions paid on behalf of this working
    /// set (see [`Relation::index_build_count`]), *including* builds on warm
    /// relations that a copy-on-write restore has since replaced. Stable
    /// across repeated executions of a program whose heads are pure IDB:
    /// warm runs only probe. Warm relations a program also derives into are
    /// the exception — their indexes cover derived rows and are necessarily
    /// discarded with the restore, so re-running such a program rebuilds
    /// them, and this counter honestly grows.
    pub fn index_builds(&self) -> usize {
        let view_builds: usize = self
            .views
            .iter()
            .flat_map(|v| v.derived.iter())
            .map(|(_, rel)| rel.index_build_count())
            .sum();
        self.db.index_builds() + self.restored_builds + view_builds
    }

    /// Load one more fact into the warm set (extending any indexes on the
    /// relation in place).
    pub fn insert_fact(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        self.db.insert_fact(name, tuple)
    }

    /// Execute `program` against the warm working set and return the
    /// `output` relation.
    ///
    /// The run derives IDB relations directly inside the warm database; on
    /// completion (or error) every relation the run created is dropped and
    /// every pre-existing relation the program derives into is restored from
    /// its pre-run snapshot, so the warm set again holds exactly the
    /// extensional state — plus the persistent indexes on the relations the
    /// run only *read*, which is the point. (Indexes on restored relations
    /// cover derived rows and necessarily vanish with the restore;
    /// [`PreparedDatabase::index_builds`] still counts them.)
    pub fn run(&mut self, program: &DlirProgram, output: &str) -> Result<Relation> {
        self.run_guarded(program, output, &QueryGuard::new())
    }

    /// [`PreparedDatabase::run`] under an execution [`QueryGuard`]: the
    /// guard's deadline, budgets and cancellation token are checked at every
    /// engine checkpoint, and a trip surfaces as
    /// [`RaqletError::Timeout`] / [`RaqletError::BudgetExceeded`] /
    /// [`RaqletError::Cancelled`] carrying the partial [`EvalStats`].
    ///
    /// Failure is atomic with respect to the warm state: whether the run
    /// errors, trips the guard, or panics mid-evaluation (contained — it
    /// never unwinds out of this call), every relation it created is dropped
    /// and every pre-existing relation it derived into is restored from its
    /// pre-run snapshot. Only the shared value dictionary may have grown —
    /// it is append-only, so warm executions are unaffected.
    pub fn run_guarded(
        &mut self,
        program: &DlirProgram,
        output: &str,
        guard: &QueryGuard,
    ) -> Result<Relation> {
        let plan = self.plan_for(program)?;

        let heads = program.idb_names();
        // Copy-on-write: snapshot only the warm relations the program will
        // write into; pure-IDB heads are created fresh and dropped after.
        let snapshots: Vec<(String, Relation)> = heads
            .iter()
            .filter_map(|name| self.db.get(name).map(|rel| (name.clone(), rel.clone())))
            .collect();
        let created: Vec<String> =
            heads.iter().filter(|name| self.db.get(name.as_str()).is_none()).cloned().collect();

        let outcome = contain_panics(|| self.engine.evaluate_plan(&plan, &mut self.db, guard));
        let result = match &outcome {
            Ok(_) => self.db.get(output).cloned().unwrap_or_else(|| Relation::new(0)),
            Err(_) => Relation::new(0),
        };

        // Restore the warm state even when evaluation failed part-way. The
        // restored snapshot carries the pre-run build counter, so account
        // for the builds the run paid on the replaced relation first.
        for name in &created {
            self.db.remove(name);
        }
        for (name, snapshot) in snapshots {
            if let Some(live) = self.db.get(&name) {
                self.restored_builds +=
                    live.index_build_count().saturating_sub(snapshot.index_build_count());
            }
            self.db.set(name, snapshot);
        }

        self.last_stats = outcome?;
        self.executions += 1;
        Ok(result)
    }

    /// Plan cache: compile once per distinct program. The plan encodes the
    /// program's constants against the warm dictionary, so a cache hit
    /// performs zero dictionary encoding as well. On a compile, the plan's
    /// declared indexes are pre-built on the warm extensional relations
    /// right away: these are exactly the column sets the compiled join
    /// schedules will probe, they persist in the warm set, and every later
    /// execution reuses them verbatim. Relations the program also derives
    /// into are skipped — their indexes would cover derived rows and be
    /// discarded by the copy-on-write restore, so evaluation builds those
    /// per run instead.
    fn plan_for(&mut self, program: &DlirProgram) -> Result<Arc<ProgramPlan>> {
        let fingerprint = program_fingerprint(program);
        if let Some(plan) = self.plans.get(&fingerprint) {
            return Ok(plan.clone());
        }
        if self.lint_on_prepare {
            let stats = raqlet_analysis::EdbStats::collect(&self.db);
            self.diagnostics = raqlet_analysis::RaqCheck::new().with_stats(stats).check(program);
        }
        let plan = Arc::new(ProgramPlan::prepare(program, self.db.dict())?);
        self.plan_compiles += 1;
        for (name, column_sets) in plan.required_indexes() {
            if plan.is_idb(name) {
                continue;
            }
            if let Some(rel) = self.db.get_mut(name) {
                rel.require_indexes(column_sets);
            }
        }
        self.plans.insert(fingerprint, plan.clone());
        Ok(plan)
    }

    /// Install `program` as a standing query: evaluate it once against the
    /// warm set, keep every derived relation materialized, and maintain them
    /// incrementally on each subsequent [`PreparedDatabase::apply_delta`].
    /// Returns the view's id for the [`PreparedDatabase::view`] accessors.
    ///
    /// The derived relations live *outside* the warm database between
    /// maintenance passes, so plain [`PreparedDatabase::run`] executions
    /// behave exactly as if no view were installed. Every index incremental
    /// maintenance may probe (`ProgramPlan::ivm_required_indexes` — a
    /// superset of the plan's declared evaluation indexes) is materialized
    /// here, once; maintenance itself never builds an index.
    pub fn install_view(&mut self, program: &DlirProgram, output: &str) -> Result<usize> {
        self.install_view_guarded(program, output, &QueryGuard::new())
    }

    /// [`PreparedDatabase::install_view`] under an execution [`QueryGuard`].
    /// The guard covers both the initial materialization and the
    /// support-count construction. On any error, guard trip, or contained
    /// panic, every relation the installation created in the warm set is
    /// removed and no view is registered — the working set is exactly as it
    /// was before the call (modulo append-only dictionary growth).
    pub fn install_view_guarded(
        &mut self,
        program: &DlirProgram,
        output: &str,
        guard: &QueryGuard,
    ) -> Result<usize> {
        let plan = self.plan_for(program)?;
        ivm::validate_for_ivm(&plan, &self.db)?;
        let ivm_indexes = plan.ivm_required_indexes();
        for (name, column_sets) in &ivm_indexes {
            if plan.is_idb(name) {
                continue;
            }
            if let Some(rel) = self.db.get_mut(name) {
                rel.require_indexes(column_sets);
            }
        }
        let outcome = contain_panics(|| {
            let mut stats = self.engine.evaluate_plan(&plan, &mut self.db, guard)?;
            for (name, column_sets) in &ivm_indexes {
                if !plan.is_idb(name) {
                    continue;
                }
                if let Some(rel) = self.db.get_mut(name) {
                    rel.require_indexes(column_sets);
                }
            }
            let counts =
                ivm::build_support_counts(&self.engine, &plan, &self.db, &mut stats, guard)?;
            Ok((stats, counts))
        });
        let (stats, counts) = match outcome {
            Ok(pair) => pair,
            Err(err) => {
                for (name, _) in &plan.idbs {
                    self.db.remove(name);
                }
                return Err(err);
            }
        };
        let derived: Vec<(String, Relation)> = plan
            .idbs
            .iter()
            .map(|(name, arity)| {
                (name.clone(), self.db.remove(name).unwrap_or_else(|| Relation::new(*arity)))
            })
            .collect();
        self.views.push(StandingQuery {
            plan,
            output: output.to_string(),
            derived,
            counts,
            epoch: self.epoch,
        });
        self.last_stats = stats;
        Ok(self.views.len() - 1)
    }

    /// Apply a batch of extensional inserts and deletes to the warm set and
    /// incrementally maintain every installed standing query — no plan
    /// recompilation, no index construction, no from-scratch evaluation.
    /// Returns the accumulated maintenance statistics (all-zero when the
    /// batch nets to nothing, e.g. deleting absent rows).
    ///
    /// Deletes apply before inserts; see [`EdbDelta`]. Writing a relation
    /// derived by an installed view is rejected before anything is applied
    /// to that relation.
    pub fn apply_delta(&mut self, delta: EdbDelta) -> Result<EvalStats> {
        self.apply_delta_guarded(delta, &QueryGuard::new())
    }

    /// [`PreparedDatabase::apply_delta`] under an execution [`QueryGuard`],
    /// checked at every incremental-maintenance step.
    ///
    /// When the guard is armed, the call is additionally *atomic*: before
    /// anything is mutated, the delta-touched extensional relations, every
    /// view's derived relations, support counts and epoch, and the working
    /// set's own epoch are snapshotted, and any error, guard trip, or
    /// contained panic rolls all of them back — a failed batch leaves the
    /// warm set and every standing view bit-identical to before the call
    /// (modulo append-only dictionary growth). The unarmed path
    /// (plain [`PreparedDatabase::apply_delta`]) skips the snapshots and
    /// keeps its zero-copy cost profile.
    pub fn apply_delta_guarded(
        &mut self,
        delta: EdbDelta,
        guard: &QueryGuard,
    ) -> Result<EvalStats> {
        // Rollback snapshots, taken only on the armed path so the common
        // unguarded batch stays snapshot-free.
        let rollback = if guard.is_armed() {
            let mut edb_names: Vec<&str> = delta
                .inserts()
                .iter()
                .chain(delta.deletes().iter())
                .map(|(name, _)| name.as_str())
                .collect();
            edb_names.sort_unstable();
            edb_names.dedup();
            let edb: Vec<(String, Option<Relation>)> = edb_names
                .into_iter()
                .map(|name| (name.to_string(), self.db.get(name).cloned()))
                .collect();
            let views: Vec<ViewSnapshot> =
                self.views.iter().map(|v| (v.derived.clone(), v.counts.clone(), v.epoch)).collect();
            Some((edb, views, self.epoch))
        } else {
            None
        };

        let outcome = self.apply_delta_inner(&delta, guard);
        match outcome {
            Ok(stats) => Ok(stats),
            Err(err) => {
                if let Some((edb, views, epoch)) = rollback {
                    for (name, snapshot) in edb {
                        match snapshot {
                            Some(rel) => self.db.set(name, rel),
                            None => {
                                self.db.remove(&name);
                            }
                        }
                    }
                    for (view, (derived, counts, view_epoch)) in self.views.iter_mut().zip(views) {
                        // A view's derived relations may still be inside the
                        // warm database if maintenance failed mid-pass; the
                        // snapshot replaces them wholesale, so drop the
                        // partially maintained copies from the warm set.
                        for (name, _) in &view.plan.idbs {
                            self.db.remove(name);
                        }
                        view.derived = derived;
                        view.counts = counts;
                        view.epoch = view_epoch;
                    }
                    self.epoch = epoch;
                }
                Err(err)
            }
        }
    }

    /// The mutating body of [`PreparedDatabase::apply_delta_guarded`];
    /// failure cleanup (rollback on the armed path) lives in the caller.
    fn apply_delta_inner(&mut self, delta: &EdbDelta, guard: &QueryGuard) -> Result<EvalStats> {
        let guarded: HashSet<&str> = self
            .views
            .iter()
            .flat_map(|v| v.plan.idbs.iter().map(|(name, _)| name.as_str()))
            .collect();
        let changes = ivm::apply_edb_delta(&mut self.db, delta, &|name| guarded.contains(name))?;
        drop(guarded);
        self.epoch += 1;
        let mut stats = EvalStats::default();
        if changes.is_empty() {
            for view in &mut self.views {
                view.epoch = self.epoch;
            }
            return Ok(stats);
        }
        // Move each view's derived relations into the warm database for the
        // maintenance pass and back out afterwards (O(1) map moves on the
        // shared dictionary — no copies, no rebinds), so concurrent views
        // and plain runs never observe one another's derivations.
        let mut views = std::mem::take(&mut self.views);
        let mut outcome = Ok(());
        for view in &mut views {
            for (name, rel) in view.derived.drain(..) {
                self.db.set(name, rel);
            }
            let result = contain_panics(|| {
                ivm::maintain(
                    &self.engine,
                    &view.plan,
                    &mut self.db,
                    &mut view.counts,
                    &changes,
                    &mut stats,
                    guard,
                )
            });
            view.derived = view
                .plan
                .idbs
                .iter()
                .map(|(name, arity)| {
                    (name.clone(), self.db.remove(name).unwrap_or_else(|| Relation::new(*arity)))
                })
                .collect();
            view.epoch = self.epoch;
            if outcome.is_ok() {
                outcome = result;
            }
        }
        self.views = views;
        outcome?;
        // Standing views retract and re-derive in place; without compaction
        // the tombstone garbage makes every full-arena scan degrade linearly
        // with batch count. Amortized O(1) per written row.
        for name in changes.names() {
            if let Some(rel) = self.db.get_mut(name) {
                rel.maybe_compact();
            }
        }
        for view in &mut self.views {
            for (_, rel) in &mut view.derived {
                rel.maybe_compact();
            }
        }
        self.last_stats = stats.clone();
        Ok(stats)
    }

    /// Number of installed standing queries.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// The maintained output relation of the view returned by
    /// [`PreparedDatabase::install_view`].
    pub fn view(&self, id: usize) -> Option<&Relation> {
        let view = self.views.get(id)?;
        view.derived.iter().find(|(name, _)| *name == view.output).map(|(_, rel)| rel)
    }

    /// Any maintained derived relation of a view (differential tests compare
    /// every intermediate, not just the output).
    pub fn view_relation(&self, id: usize, name: &str) -> Option<&Relation> {
        self.views.get(id)?.derived.iter().find(|(n, _)| n == name).map(|(_, rel)| rel)
    }

    /// The epoch (delta batches applied) a view was last maintained at.
    pub fn view_epoch(&self, id: usize) -> Option<u64> {
        self.views.get(id).map(|v| v.epoch)
    }

    /// Number of delta batches applied to this working set so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compact every warm extensional relation's arena (drop tombstoned
    /// slots; see [`Relation::compact`]). Afterwards each arena is
    /// *canonical* — `nrows == len`, live rows contiguous in insertion
    /// order — which is the form the `raqlet_storage` snapshot writer
    /// persists: exporting a compacted arena and re-inserting its rows in
    /// file order reproduces the arena bit-for-bit. Between calls the warm
    /// set holds no active fixpoint state, so compaction here is always
    /// legal.
    pub fn compact_edb(&mut self) {
        for (_, rel) in self.db.iter_mut() {
            rel.compact();
        }
    }

    /// Re-anchor the delta epoch — and every installed view's maintenance
    /// epoch — at `epoch`. The durability layer calls this after loading a
    /// snapshot so the recovered working set resumes at the snapshot's
    /// durable epoch instead of zero, and WAL replay can assert that each
    /// recovered frame advances the epoch contiguously.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        for view in &mut self.views {
            view.epoch = epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::Value;
    use raqlet_dlir::{Atom, BodyElem, Rule};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn tc_program() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        p
    }

    fn chain_edges(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_fact("edge", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        db
    }

    #[test]
    fn warm_and_cold_results_agree() {
        let db = chain_edges(6);
        let program = tc_program();
        let cold = DatalogEngine::new().run_output(&program, &db, "tc").unwrap();
        let mut prepared = PreparedDatabase::new(db);
        let warm = prepared.run(&program, "tc").unwrap();
        assert_eq!(cold.sorted(), warm.sorted());
    }

    #[test]
    fn derived_relations_do_not_leak_between_runs() {
        let mut prepared = PreparedDatabase::new(chain_edges(4));
        prepared.run(&tc_program(), "tc").unwrap();
        assert!(prepared.database().get("tc").is_none());
        // The extensional relation survived untouched.
        assert_eq!(prepared.database().get("edge").unwrap().len(), 4);
    }

    #[test]
    fn warm_relations_derived_into_are_restored() {
        // `tc` holds both facts and rules; the run must not leak derivations
        // into the warm copy.
        let mut db = chain_edges(3);
        db.insert_fact("tc", vec![Value::Int(100), Value::Int(200)]).unwrap();
        let mut prepared = PreparedDatabase::new(db);
        let result = prepared.run(&tc_program(), "tc").unwrap();
        assert!(result.contains(&[Value::Int(100), Value::Int(200)]));
        assert!(result.contains(&[Value::Int(0), Value::Int(3)]));
        // The warm copy kept only the original fact.
        assert_eq!(prepared.database().get("tc").unwrap().len(), 1);
        // And a re-run sees identical state.
        let again = prepared.run(&tc_program(), "tc").unwrap();
        assert_eq!(result.sorted(), again.sorted());
    }

    #[test]
    fn second_execution_builds_no_new_indexes() {
        let mut prepared = PreparedDatabase::new(chain_edges(8));
        prepared.run(&tc_program(), "tc").unwrap();
        let after_first = prepared.index_builds();
        assert!(after_first > 0, "the first run builds the edge join index");
        prepared.run(&tc_program(), "tc").unwrap();
        assert_eq!(prepared.index_builds(), after_first);
    }

    #[test]
    fn second_execution_compiles_no_new_plans() {
        let mut prepared = PreparedDatabase::new(chain_edges(8));
        prepared.run(&tc_program(), "tc").unwrap();
        assert_eq!(prepared.plan_compiles(), 1);
        for _ in 0..3 {
            prepared.run(&tc_program(), "tc").unwrap();
        }
        assert_eq!(prepared.plan_compiles(), 1, "re-execution must not recompile");
        // A genuinely different program compiles exactly once more.
        let mut hop2 = DlirProgram::default();
        hop2.add_rule(Rule::new(
            Atom::with_vars("hop2", &["x", "z"]),
            vec![atom("edge", &["x", "y"]), atom("edge", &["y", "z"])],
        ));
        hop2.add_output("hop2");
        prepared.run(&hop2, "hop2").unwrap();
        prepared.run(&hop2, "hop2").unwrap();
        assert_eq!(prepared.plan_compiles(), 2);
    }

    #[test]
    fn warm_runs_do_not_grow_the_dictionary() {
        let mut db = chain_edges(4);
        db.insert_fact("name", vec![Value::Int(0), Value::str("Ada")]).unwrap();
        let mut prepared = PreparedDatabase::new(db);
        prepared.run(&tc_program(), "tc").unwrap();
        let warm_len = prepared.database().dict().len();
        prepared.run(&tc_program(), "tc").unwrap();
        assert_eq!(
            prepared.database().dict().len(),
            warm_len,
            "a warm re-run must perform zero dictionary re-encoding"
        );
    }

    #[test]
    fn rebuilds_on_restored_relations_are_counted_honestly() {
        // Non-linear recursion probes the derived-into relation itself, so
        // its index covers derived rows and is discarded with every
        // copy-on-write restore. The rebuild cost recurs per run — and the
        // counter must say so rather than reporting "warm".
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("path", &["x", "z"]),
            vec![atom("path", &["x", "y"]), atom("path", &["y", "z"])],
        ));
        p.add_output("path");
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            db.insert_fact("path", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let mut prepared = PreparedDatabase::new(db);
        prepared.run(&p, "path").unwrap();
        let after_first = prepared.index_builds();
        assert!(after_first > 0, "the run probes `path` and must build (and count) its index");
        prepared.run(&p, "path").unwrap();
        assert_eq!(
            prepared.index_builds(),
            2 * after_first,
            "per-run rebuilds on restored relations must keep counting"
        );
    }

    #[test]
    fn errors_restore_the_warm_state() {
        let mut p = DlirProgram::default();
        // Unsafe rule: head variable never bound.
        p.add_rule(Rule::new(Atom::with_vars("q", &["x", "w"]), vec![atom("edge", &["x", "y"])]));
        p.add_output("q");
        let mut prepared = PreparedDatabase::new(chain_edges(3));
        assert!(prepared.run(&p, "q").is_err());
        assert_eq!(prepared.executions(), 0);
        assert!(prepared.database().get("q").is_none());
        assert_eq!(prepared.database().get("edge").unwrap().len(), 3);
    }
}
