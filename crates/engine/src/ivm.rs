//! Incremental view maintenance: apply EDB deltas to standing queries.
//!
//! [`crate::PreparedDatabase`] amortises loading, indexing and compilation;
//! this module amortises *evaluation itself*. A standing query installed with
//! [`crate::PreparedDatabase::install_view`] keeps its derived relations
//! materialized, and [`crate::PreparedDatabase::apply_delta`] folds a batch
//! of extensional inserts **and deletes** into them without recomputing —
//! walking the compiled `ProgramPlan`'s strata and strongly connected
//! components in dependency order, exactly the schedule full evaluation
//! uses, but scoped to what actually changed.
//!
//! Per SCC the maintenance strategy is chosen from the same structure the
//! scheduler already knows:
//!
//! * **Non-looping, set-semantics SCCs** use *counting*: a
//!   [`SupportCounts`] table records how many rule derivations produce each
//!   row, and the signed multilinear expansion of the join delta — every
//!   nonempty subset of changed body positions, each pinned to the net
//!   insert or net delete rows, remaining atoms probing the stored (new)
//!   state — yields the exact count change. A row is inserted when its
//!   count becomes positive and retracted when it reaches zero.
//! * **Looping set-semantics SCCs** use *DRed* (delete-and-re-derive):
//!   over-delete everything possibly supported by a deleted row (negation
//!   checks over changed relations are skipped — the old state may have
//!   satisfied them), then re-derive each candidate from surviving support
//!   via a backward join seeded from the candidate's own head bindings, and
//!   finally propagate the insert frontier with the scoped semi-naive
//!   delta rounds (`DatalogEngine::scc_delta_rounds`).
//! * **Lattice (`@min`/`@max`) SCCs** are maintained monotonically on
//!   insert-only batches (a better row simply displaces the stored one) and
//!   fall back to a *scoped recompute* — clear and re-run just that SCC —
//!   whenever a deletion might have removed a winning row.
//! * **Aggregating rules** (non-monotone heads) recompute their head
//!   relation whenever an input changed; the head is typically tiny.
//!
//! Every path reports the derived rows it inserted and retracted as that
//! relation's net delta, so downstream SCCs see derived changes exactly as
//! they see extensional ones. Recompute fallbacks retract and re-publish
//! rows in place (never dropping the `Relation`), keeping the persistent
//! indexes — and the index build counters tests pin — intact.

use std::collections::HashMap;

use raqlet_common::cell::{is_tombstone, Cell, UNBOUND_CELL};
use raqlet_common::guard::{CheckPoint, QueryGuard};
use raqlet_common::hash::{FxHashMap, FxHashSet};
use raqlet_common::{Database, RaqletError, Result, SupportChange, SupportCounts, Tuple};
use raqlet_dlir::LatticeMerge;

use crate::datalog::{
    instantiate_head, join_body_pinned, publish_derived, stage_derived, DatalogEngine, Derived,
    Env, EvalStats, Pin, PlanElem, PlanTerm, ProgramPlan, RulePlan, SccPlan, StratumPlan,
};

/// Above this many changed body positions in one rule, the signed subset
/// expansion (up to 3^n pinned joins) would cost more than re-running the
/// rule; the SCC falls back to a scoped recompute instead.
const MAX_EXPANSION_POSITIONS: usize = 6;

/// A batch of extensional-database changes to apply to a
/// [`crate::PreparedDatabase`] and its standing queries.
///
/// Deletes are applied before inserts: a tuple both deleted and inserted in
/// the same batch ends up present. Deleting an absent tuple (or a tuple
/// whose values were never seen by the dictionary) is a no-op, as is
/// re-inserting a present one — the *net* change per relation is what the
/// maintenance machinery propagates, so a batch that cancels out costs
/// nothing downstream.
#[derive(Debug, Clone, Default)]
pub struct EdbDelta {
    inserts: Vec<(String, Tuple)>,
    deletes: Vec<(String, Tuple)>,
}

impl EdbDelta {
    /// An empty batch.
    pub fn new() -> Self {
        EdbDelta::default()
    }

    /// Queue a tuple insertion into the named extensional relation.
    pub fn insert(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.inserts.push((relation.into(), tuple));
        self
    }

    /// Queue a tuple deletion from the named extensional relation.
    pub fn delete(&mut self, relation: impl Into<String>, tuple: Tuple) -> &mut Self {
        self.deletes.push((relation.into(), tuple));
        self
    }

    /// True when the batch queues no operations at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of queued operations (inserts plus deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The queued insertions, in order.
    pub fn inserts(&self) -> &[(String, Tuple)] {
        &self.inserts
    }

    /// The queued deletions, in order.
    pub fn deletes(&self) -> &[(String, Tuple)] {
        &self.deletes
    }
}

/// The net change to one relation: disjoint packed insert and delete row
/// sets, stored stride-wide so they can be pinned into maintenance joins
/// directly.
#[derive(Debug, Clone)]
pub(crate) struct RelChange {
    arity: usize,
    stride: usize,
    ins: Vec<Cell>,
    del: Vec<Cell>,
}

impl RelChange {
    fn new(arity: usize) -> RelChange {
        RelChange { arity, stride: arity.max(1), ins: Vec::new(), del: Vec::new() }
    }

    fn push_padded(buf: &mut Vec<Cell>, row: &[Cell], arity: usize, stride: usize) {
        buf.extend_from_slice(&row[..arity]);
        for _ in arity..stride {
            buf.push(raqlet_common::cell::NULL_CELL);
        }
    }

    fn push_ins(&mut self, row: &[Cell]) {
        Self::push_padded(&mut self.ins, row, self.arity, self.stride);
    }

    fn push_del(&mut self, row: &[Cell]) {
        Self::push_padded(&mut self.del, row, self.arity, self.stride);
    }

    /// Drop `row` from the delete set if present (an insert re-adding a row
    /// deleted earlier in the same batch nets to nothing). Returns true when
    /// a cancellation happened.
    fn cancel_del(&mut self, row: &[Cell]) -> bool {
        let stride = self.stride;
        let pos = self.del.chunks_exact(stride).position(|r| r[..self.arity] == row[..self.arity]);
        match pos {
            Some(i) => {
                self.del.drain(i * stride..(i + 1) * stride);
                true
            }
            None => false,
        }
    }

    fn has_ins(&self) -> bool {
        !self.ins.is_empty()
    }

    fn has_del(&self) -> bool {
        !self.del.is_empty()
    }

    fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// Net changes per relation, accumulated as maintenance walks the plan:
/// seeded with the extensional batch, extended with every derived relation's
/// net delta so downstream components see upstream changes uniformly.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChangeSet {
    rels: HashMap<String, RelChange>,
}

impl ChangeSet {
    /// The net change of `name`, if any part of it is nonempty.
    fn changed(&self, name: &str) -> Option<&RelChange> {
        self.rels.get(name).filter(|c| !c.is_empty())
    }

    fn entry(&mut self, name: &str, arity: usize) -> &mut RelChange {
        self.rels.entry(name.to_string()).or_insert_with(|| RelChange::new(arity))
    }

    /// Names of the extensional relations with a recorded (possibly
    /// cancelled-out) change — the compaction candidates after a batch.
    pub(crate) fn names(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// True when every recorded change cancelled out.
    pub(crate) fn is_empty(&self) -> bool {
        self.rels.values().all(|c| c.is_empty())
    }
}

/// Apply an extensional batch to the warm database — deletes first, then
/// inserts — returning the *net* packed change per relation. Deleting an
/// absent row (or one whose values the dictionary never saw) and
/// re-inserting a present row are no-ops; a delete-then-insert of the same
/// row in one batch cancels. `is_view_idb` guards relations derived by an
/// installed standing query: extensional traffic may not write them.
pub(crate) fn apply_edb_delta(
    db: &mut Database,
    delta: &EdbDelta,
    is_view_idb: &dyn Fn(&str) -> bool,
) -> Result<ChangeSet> {
    let mut changes = ChangeSet::default();
    for (name, tuple) in &delta.deletes {
        if is_view_idb(name) {
            return Err(RaqletError::execution(format!(
                "cannot delete from `{name}`: it is derived by an installed standing query"
            )));
        }
        let Some(rel) = db.get_mut(name) else { continue };
        if tuple.len() != rel.arity() {
            return Err(RaqletError::execution(format!(
                "delete from `{name}`: tuple arity {} != relation arity {}",
                tuple.len(),
                rel.arity()
            )));
        }
        let dict = rel.dict().clone();
        let Some(row) =
            tuple.iter().map(|v| dict.try_encode_value(v)).collect::<Option<Vec<Cell>>>()
        else {
            continue; // values never encoded: the row cannot be present
        };
        if rel.remove_cells(&row) {
            let arity = rel.arity();
            changes.entry(name, arity).push_del(&row);
        }
    }
    for (name, tuple) in &delta.inserts {
        if is_view_idb(name) {
            return Err(RaqletError::execution(format!(
                "cannot insert into `{name}`: it is derived by an installed standing query"
            )));
        }
        let arity = tuple.len();
        let rel = db.get_or_create(name, arity);
        if rel.arity() != arity {
            return Err(RaqletError::execution(format!(
                "insert into `{name}`: tuple arity {} != relation arity {}",
                arity,
                rel.arity()
            )));
        }
        let dict = rel.dict().clone();
        let row: Vec<Cell> = tuple.iter().map(|v| dict.encode_value(v)).collect();
        if rel.insert_cells(&row) {
            let change = changes.entry(name, arity);
            if !change.cancel_del(&row) {
                change.push_ins(&row);
            }
        }
    }
    Ok(changes)
}

/// Reject programs the maintenance machinery cannot keep incrementally:
/// a derived (IDB) relation colliding with a warm extensional relation that
/// already holds facts (its rows would be indistinguishable from derived
/// ones), and a relation with both aggregating and plain rules.
pub(crate) fn validate_for_ivm(plan: &ProgramPlan, db: &Database) -> Result<()> {
    for (name, _) in &plan.idbs {
        if db.get(name).is_some_and(|rel| !rel.is_empty()) {
            return Err(RaqletError::execution(format!(
                "cannot install standing query: derived relation `{name}` collides with a \
                 non-empty extensional relation"
            )));
        }
    }
    for stratum in &plan.strata {
        for agg_rule in &stratum.agg_rules {
            let mixed = stratum
                .sccs
                .iter()
                .flat_map(|scc| &scc.rules)
                .any(|r| r.head_relation == agg_rule.head_relation);
            if mixed {
                return Err(RaqletError::execution(format!(
                    "cannot install standing query: `{}` mixes aggregating and plain rules",
                    agg_rule.head_relation
                )));
            }
        }
    }
    Ok(())
}

/// Build the per-relation derivation-count tables for every counting-managed
/// (non-looping, set-semantics, non-aggregating) component, by re-applying
/// each of its rules once against the freshly evaluated fixpoint: the rule
/// application's pre-deduplication multiplicity *is* the derivation count.
pub(crate) fn build_support_counts(
    engine: &DatalogEngine,
    plan: &ProgramPlan,
    db: &Database,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<HashMap<String, SupportCounts>> {
    let threads = engine.config.effective_threads();
    let mut counts = HashMap::new();
    for stratum in &plan.strata {
        for scc in &stratum.sccs {
            if !counting_managed(scc) {
                continue;
            }
            for rule in &scc.rules {
                let derived = engine.apply_rule(rule, db, None, threads, stats, guard)?;
                let table: &mut SupportCounts =
                    counts.entry(rule.head_relation.clone()).or_default();
                let arity = rule.head_arity;
                for row in derived.cells.chunks_exact(derived.stride) {
                    table.add(&row[..arity], 1);
                }
            }
        }
    }
    Ok(counts)
}

/// True when the component is maintained by derivation counting.
fn counting_managed(scc: &SccPlan) -> bool {
    !scc.looping && scc.rules.iter().all(|r| matches!(r.lattice, LatticeMerge::Set))
}

/// Maintain every derived relation of `plan` against the extensional net
/// changes in `edb`, walking strata and components in the compiled
/// dependency order. `counts` holds the counting tables built at install
/// time (rebuilt in place whenever a scoped recompute runs).
pub(crate) fn maintain(
    engine: &DatalogEngine,
    plan: &ProgramPlan,
    db: &mut Database,
    counts: &mut HashMap<String, SupportCounts>,
    edb: &ChangeSet,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    let threads = engine.config.effective_threads();
    let mut changes = edb.clone();
    for stratum in &plan.strata {
        guard.checkpoint(CheckPoint::IvmStep)?;
        let mut stratum_changed = false;
        maintain_agg_rules(
            engine,
            stratum,
            db,
            threads,
            &mut changes,
            &mut stratum_changed,
            stats,
            guard,
        )?;
        for scc in &stratum.sccs {
            maintain_scc(
                engine,
                scc,
                db,
                threads,
                counts,
                &mut changes,
                &mut stratum_changed,
                stats,
                guard,
            )?;
        }
        if stratum_changed {
            stats.strata += 1;
        }
    }
    Ok(())
}

/// Aggregating heads are non-monotone under both insertion and deletion
/// (a count shrinks, a min moves), so any input change recomputes the head
/// relation in place and reports the row-level diff downstream.
#[allow(clippy::too_many_arguments)]
fn maintain_agg_rules(
    engine: &DatalogEngine,
    stratum: &StratumPlan,
    db: &mut Database,
    threads: usize,
    changes: &mut ChangeSet,
    stratum_changed: &mut bool,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    if stratum.agg_rules.is_empty() {
        return Ok(());
    }
    let mut heads: Vec<&str> = Vec::new();
    for rule in &stratum.agg_rules {
        if !heads.contains(&rule.head_relation.as_str()) {
            heads.push(&rule.head_relation);
        }
    }
    for head in heads {
        let rules: Vec<&RulePlan> =
            stratum.agg_rules.iter().filter(|r| r.head_relation == head).collect();
        if !rules.iter().any(|r| rule_inputs_changed(r, &[], changes)) {
            continue;
        }
        *stratum_changed = true;
        let old = snapshot_rows(db, head);
        clear_rows(db, head, &old);
        for rule in &rules {
            stats.rule_applications += 1;
            let derived = engine.apply_rule(rule, db, None, threads, stats, guard)?;
            stats.tuples_derived += derived.rows;
            publish_derived(rule, db, derived)?;
        }
        stats.iterations += 1;
        diff_into_changes(db, head, &old, changes);
    }
    Ok(())
}

/// Dispatch one component to its maintenance strategy (see module docs).
#[allow(clippy::too_many_arguments)]
fn maintain_scc(
    engine: &DatalogEngine,
    scc: &SccPlan,
    db: &mut Database,
    threads: usize,
    counts: &mut HashMap<String, SupportCounts>,
    changes: &mut ChangeSet,
    stratum_changed: &mut bool,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    if !scc.rules.iter().any(|r| rule_inputs_changed(r, &scc.relations, changes)) {
        return Ok(());
    }
    guard.checkpoint(CheckPoint::IvmStep)?;
    *stratum_changed = true;
    stats.sccs += 1;
    let lattice = scc.rules.iter().any(|r| !matches!(r.lattice, LatticeMerge::Set));
    let neg_changed =
        scc.rules.iter().any(|r| !negated_changed_positions(r, &scc.relations, changes).is_empty());
    let too_wide = scc.rules.iter().any(|r| {
        positive_changed_positions(r, &scc.relations, changes).len() > MAX_EXPANSION_POSITIONS
    });
    if lattice {
        let has_del = neg_changed
            || scc.rules.iter().any(|r| {
                positive_changed_positions(r, &scc.relations, changes)
                    .iter()
                    .any(|&pos| changed_at(r, pos, changes).has_del())
            });
        if has_del {
            recompute_scc(engine, scc, db, threads, None, changes, stats, guard)
        } else {
            if scc.looping {
                stats.looping_sccs += 1;
            }
            lattice_monotone_scc(engine, scc, db, threads, changes, stats, guard)
        }
    } else if too_wide {
        let counting = counting_managed(scc).then_some(&mut *counts);
        if scc.looping {
            stats.looping_sccs += 1;
        }
        recompute_scc(engine, scc, db, threads, counting, changes, stats, guard)
    } else if scc.looping {
        stats.looping_sccs += 1;
        if dred_scc(engine, scc, db, threads, changes, stats, guard)? {
            Ok(())
        } else {
            // The over-deletion grew past the point where DRed can beat a
            // scoped recompute; marking mutated nothing, so recomputing the
            // component in place is a clean restart.
            recompute_scc(engine, scc, db, threads, None, changes, stats, guard)
        }
    } else if neg_changed {
        recompute_scc(engine, scc, db, threads, Some(counts), changes, stats, guard)
    } else {
        counting_scc(scc, db, counts, changes, stats, guard)
    }
}

/// The net change pinned at a positive body position (which
/// `positive_changed_positions` guaranteed exists).
// Callers only pass positions returned by `positive_changed_positions`, which
// filters on exactly this lookup succeeding.
#[allow(clippy::expect_used)]
fn changed_at<'c>(plan: &RulePlan, pos: usize, changes: &'c ChangeSet) -> &'c RelChange {
    let PlanElem::Atom(atom) = &plan.body[pos] else {
        unreachable!("changed position must hold a positive atom")
    };
    changes.changed(&atom.relation).expect("changed position names a changed relation")
}

/// True when any body element of `plan` reads a relation outside `own` that
/// carries a net change.
fn rule_inputs_changed(plan: &RulePlan, own: &[String], changes: &ChangeSet) -> bool {
    plan.body.iter().any(|elem| match elem {
        PlanElem::Atom(a) | PlanElem::Negated(a) => {
            !own.contains(&a.relation) && changes.changed(&a.relation).is_some()
        }
        PlanElem::Constraint { .. } => false,
    })
}

/// Body positions holding positive atoms over changed relations outside the
/// component (the candidate pins of the delta expansion).
fn positive_changed_positions(plan: &RulePlan, own: &[String], changes: &ChangeSet) -> Vec<usize> {
    plan.body
        .iter()
        .enumerate()
        .filter_map(|(i, elem)| match elem {
            PlanElem::Atom(a)
                if !own.contains(&a.relation) && changes.changed(&a.relation).is_some() =>
            {
                Some(i)
            }
            _ => None,
        })
        .collect()
}

/// Body positions holding negated atoms over changed relations (always
/// outside the component — stratification forbids negating into it).
fn negated_changed_positions(plan: &RulePlan, own: &[String], changes: &ChangeSet) -> Vec<usize> {
    plan.body
        .iter()
        .enumerate()
        .filter_map(|(i, elem)| match elem {
            PlanElem::Negated(a)
                if !own.contains(&a.relation) && changes.changed(&a.relation).is_some() =>
            {
                Some(i)
            }
            _ => None,
        })
        .collect()
}

/// Snapshot a relation's live rows (arity-wide, packed).
fn snapshot_rows(db: &Database, name: &str) -> Vec<Vec<Cell>> {
    db.get(name).map(|rel| rel.iter_rows().map(|r| r.to_vec()).collect()).unwrap_or_default()
}

/// Retract every snapshot row in place, keeping the relation (and its
/// persistent indexes, and their build counters) alive.
fn clear_rows(db: &mut Database, name: &str, rows: &[Vec<Cell>]) {
    if let Some(rel) = db.get_mut(name) {
        for row in rows {
            rel.remove_cells(row);
        }
    }
}

/// Record `name`'s rows-now vs `old` difference as its net change.
fn diff_into_changes(db: &Database, name: &str, old: &[Vec<Cell>], changes: &mut ChangeSet) {
    let Some(rel) = db.get(name) else { return };
    let old_set: FxHashSet<&[Cell]> = old.iter().map(|r| r.as_slice()).collect();
    let arity = rel.arity();
    let mut ins: Vec<Vec<Cell>> = Vec::new();
    for row in rel.iter_rows() {
        if !old_set.contains(row) {
            ins.push(row.to_vec());
        }
    }
    let mut del: Vec<&Vec<Cell>> = Vec::new();
    for row in old {
        if !rel.contains_cells(row) {
            del.push(row);
        }
    }
    if ins.is_empty() && del.is_empty() {
        return;
    }
    let change = changes.entry(name, arity);
    for row in &ins {
        change.push_ins(row);
    }
    for row in del {
        change.push_del(row);
    }
}

/// Scoped recompute of one component: retract every derived row in place,
/// re-run the component's rules (full fixpoint for looping ones), rebuild
/// its counting tables when it is counting-managed, and report the diff.
/// The fallback for every case the incremental strategies exclude.
#[allow(clippy::too_many_arguments)]
fn recompute_scc(
    engine: &DatalogEngine,
    scc: &SccPlan,
    db: &mut Database,
    threads: usize,
    mut counts: Option<&mut HashMap<String, SupportCounts>>,
    changes: &mut ChangeSet,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    let old: Vec<(String, Vec<Vec<Cell>>)> =
        scc.relations.iter().map(|n| (n.clone(), snapshot_rows(db, n))).collect();
    for (name, rows) in &old {
        clear_rows(db, name, rows);
    }
    if let Some(counts) = counts.as_deref_mut() {
        for name in &scc.relations {
            counts.entry(name.clone()).or_default().clear();
        }
    }
    if scc.looping {
        engine.evaluate_scc_fixpoint(scc, db, threads, stats, guard)?;
    } else {
        for rule in &scc.rules {
            stats.rule_applications += 1;
            let derived = engine.apply_rule(rule, db, None, threads, stats, guard)?;
            stats.tuples_derived += derived.rows;
            if let Some(counts) = counts.as_deref_mut() {
                // The loop right above this one (re)inserted a count table
                // for every head relation of the component.
                #[allow(clippy::expect_used)]
                let table = counts.get_mut(&rule.head_relation).expect("cleared above");
                let arity = rule.head_arity;
                for row in derived.cells.chunks_exact(derived.stride) {
                    table.add(&row[..arity], 1);
                }
            }
            publish_derived(rule, db, derived)?;
        }
        stats.iterations += 1;
    }
    for (name, old_rows) in &old {
        diff_into_changes(db, name, old_rows, changes);
    }
    Ok(())
}

/// Counting maintenance of a non-looping, set-semantics component: the
/// signed multilinear expansion of each rule's join delta (see module docs)
/// folded into the component's [`SupportCounts`] table; liveness
/// transitions become physical insertions/retractions and the net delta.
fn counting_scc(
    scc: &SccPlan,
    db: &mut Database,
    counts: &mut HashMap<String, SupportCounts>,
    changes: &mut ChangeSet,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    let name = scc.relations[0].clone();
    let mut delta_counts: FxHashMap<Vec<Cell>, i64> = FxHashMap::default();
    for rule in &scc.rules {
        let positions = positive_changed_positions(rule, &scc.relations, changes);
        if positions.is_empty() {
            continue;
        }
        for subset in 1u32..(1u32 << positions.len()) {
            guard.checkpoint(CheckPoint::IvmStep)?;
            let selected: Vec<usize> = positions
                .iter()
                .enumerate()
                .filter(|(j, _)| subset >> j & 1 == 1)
                .map(|(_, &pos)| pos)
                .collect();
            // Each selected position independently picks its insert or its
            // delete part; remaining atoms probe the stored (new) state.
            for part_mask in 0u32..(1u32 << selected.len()) {
                let mut pins: Vec<Pin> = Vec::with_capacity(selected.len());
                let mut n_ins = 0usize;
                let mut feasible = true;
                for (j, &pos) in selected.iter().enumerate() {
                    let change = changed_at(rule, pos, changes);
                    let use_ins = part_mask >> j & 1 == 1;
                    let rows = if use_ins { &change.ins } else { &change.del };
                    if rows.is_empty() {
                        feasible = false;
                        break;
                    }
                    if use_ins {
                        n_ins += 1;
                    }
                    pins.push(Pin { pos, rows, stride: change.stride });
                }
                if !feasible {
                    continue;
                }
                let sign: i64 = if n_ins % 2 == 1 { 1 } else { -1 };
                stats.rule_applications += 1;
                let envs = join_body_pinned(rule, db, &pins, None, &[], None, guard)?;
                stats.tuples_derived += envs.len();
                let mut derived = Derived::new(rule.head_stride());
                for env in &envs {
                    instantiate_head(rule, env, &mut derived)?;
                }
                let arity = rule.head_arity;
                for row in derived.cells.chunks_exact(derived.stride) {
                    *delta_counts.entry(row[..arity].to_vec()).or_insert(0) += sign;
                }
            }
        }
    }
    let mut transitions: Vec<(Vec<Cell>, i64)> =
        delta_counts.into_iter().filter(|(_, d)| *d != 0).collect();
    if transitions.is_empty() {
        return Ok(());
    }
    transitions.sort();
    let arity = db.get(&name).map(|r| r.arity()).unwrap_or(0);
    let table = counts.entry(name.clone()).or_default();
    for (row, delta) in transitions {
        match table.apply(&row, delta) {
            SupportChange::BecameLive => {
                if let Some(rel) = db.get_mut(&name) {
                    rel.insert_cells(&row);
                }
                changes.entry(&name, arity).push_ins(&row);
            }
            SupportChange::BecameDead => {
                if let Some(rel) = db.get_mut(&name) {
                    rel.remove_cells(&row);
                }
                changes.entry(&name, arity).push_del(&row);
            }
            SupportChange::Unchanged => {}
        }
    }
    stats.iterations += 1;
    Ok(())
}

/// Monotone maintenance of a lattice component on an insert-only batch:
/// seed every rule from its changed positions' inserted rows, let the
/// lattice staging displace dominated rows, run the scoped delta rounds for
/// looping components, and diff against a pre-batch snapshot (displacements
/// surface as downstream deletes).
fn lattice_monotone_scc(
    engine: &DatalogEngine,
    scc: &SccPlan,
    db: &mut Database,
    threads: usize,
    changes: &mut ChangeSet,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<()> {
    let old: Vec<(String, Vec<Vec<Cell>>)> =
        scc.relations.iter().map(|n| (n.clone(), snapshot_rows(db, n))).collect();
    for rule in &scc.rules {
        for pos in positive_changed_positions(rule, &scc.relations, changes) {
            let change = changed_at(rule, pos, changes);
            if !change.has_ins() {
                continue;
            }
            stats.rule_applications += 1;
            let envs = join_body_pinned(
                rule,
                db,
                &[Pin { pos, rows: &change.ins, stride: change.stride }],
                None,
                &[],
                None,
                guard,
            )?;
            stats.tuples_derived += envs.len();
            let mut derived = Derived::new(rule.head_stride());
            for env in &envs {
                instantiate_head(rule, env, &mut derived)?;
            }
            stage_derived(rule, db, derived)?;
        }
    }
    stats.iterations += 1;
    for name in &scc.relations {
        if let Some(rel) = db.get_mut(name) {
            rel.advance();
        }
    }
    if scc.looping {
        engine.scc_delta_rounds(scc, db, threads, stats, guard)?;
    }
    for name in &scc.relations {
        if let Some(rel) = db.get_mut(name) {
            rel.clear_rounds();
        }
    }
    for (name, old_rows) in &old {
        diff_into_changes(db, name, old_rows, changes);
    }
    Ok(())
}

/// Bind a rule's head terms to a concrete derived row, producing the seed
/// environment of DRed's backward re-derivation check. `None` when the row
/// cannot match the head (constant mismatch, or conflicting repeated
/// variables).
fn env_from_head(plan: &RulePlan, row: &[Cell]) -> Option<Env> {
    let mut env = vec![UNBOUND_CELL; plan.nvars];
    for (i, term) in plan.head.iter().enumerate() {
        match term {
            PlanTerm::Slot(s) => {
                if env[*s] != UNBOUND_CELL && env[*s] != row[i] {
                    return None;
                }
                env[*s] = row[i];
            }
            PlanTerm::Const(c) => {
                if row[i] != *c {
                    return None;
                }
            }
            PlanTerm::Wildcard => return None,
        }
    }
    Some(env)
}

/// DRed maintenance of a looping, set-semantics component.
///
/// 1. **Over-delete**: mark every stored row with a derivation touching a
///    deleted external row (all nonempty subsets of deleted positions,
///    pinned) or a newly failing negation (seeded from the negated
///    relation's inserted rows), then cascade the marks through the
///    component's recursive positions — without physically removing
///    anything yet, so multi-premise derivations are still observable.
/// 2. **Remove** every marked candidate.
/// 3. **Re-derive**: per candidate, a backward join seeded from its head
///    bindings checks for surviving support; re-inserted rows propagate
///    forward through the recursive positions.
/// 4. **Insert propagation**: seed each rule from inserted external rows
///    (and re-satisfied negations), stage, and run the scoped semi-naive
///    delta rounds to fixpoint.
///
/// The component's net delta is read off the arena: rows appended after
/// phase 2 that are not re-derived candidates are net inserts; candidates
/// absent at the end are net deletes.
///
/// Returns `false` — with the database untouched — when the over-deletion
/// cascade marks so much of the component that a scoped recompute is the
/// cheaper correct move (DRed's known overshoot on densely connected
/// components: one cut edge can transitively mark, remove and re-derive the
/// entire reachable set). The caller falls back to [`recompute_scc`].
#[allow(clippy::too_many_arguments)]
fn dred_scc(
    engine: &DatalogEngine,
    scc: &SccPlan,
    db: &mut Database,
    threads: usize,
    changes: &mut ChangeSet,
    stats: &mut EvalStats,
    guard: &QueryGuard,
) -> Result<bool> {
    // Marking is pure bookkeeping over the stored state, so bailing out at
    // any point before phase 2 leaves nothing to undo.
    let stored_total: usize = scc.relations.iter().filter_map(|n| db.get(n)).map(|r| r.len()).sum();
    let overshoot = |cand: &HashMap<String, FxHashSet<Vec<Cell>>>| {
        let marked: usize = cand.values().map(|s| s.len()).sum();
        marked >= 16 && marked * 4 >= stored_total
    };
    let mut cand: HashMap<String, FxHashSet<Vec<Cell>>> =
        scc.relations.iter().map(|n| (n.clone(), FxHashSet::default())).collect();
    let mut frontier: HashMap<String, Vec<Cell>> =
        scc.relations.iter().map(|n| (n.clone(), Vec::new())).collect();
    let info: HashMap<String, (usize, usize)> = scc
        .relations
        .iter()
        .filter_map(|n| db.get(n).map(|r| (n.clone(), (r.arity(), r.stride()))))
        .collect();

    // Marks stored rows of `rule`'s head derived by the given environments.
    fn mark(
        db: &Database,
        rule: &RulePlan,
        envs: &[Env],
        cand: &mut HashMap<String, FxHashSet<Vec<Cell>>>,
        frontier: &mut HashMap<String, Vec<Cell>>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        stats.tuples_derived += envs.len();
        let mut derived = Derived::new(rule.head_stride());
        for env in envs {
            instantiate_head(rule, env, &mut derived)?;
        }
        let name = &rule.head_relation;
        let Some(rel) = db.get(name) else { return Ok(()) };
        let arity = rule.head_arity;
        // `cand`/`frontier` are seeded with every relation of the component
        // before marking begins; rule heads are component relations.
        #[allow(clippy::expect_used)]
        let set = cand.get_mut(name).expect("component relation");
        #[allow(clippy::expect_used)]
        let front = frontier.get_mut(name).expect("component relation");
        for row in derived.cells.chunks_exact(derived.stride) {
            let key = &row[..arity];
            if rel.contains_cells(key) && !set.contains(key) {
                set.insert(key.to_vec());
                front.extend_from_slice(row);
            }
        }
        Ok(())
    }

    // Phase 1: seed the over-deletion from external deletes and newly
    // failing negations.
    for rule in &scc.rules {
        let skip = negated_changed_positions(rule, &scc.relations, changes);
        let del_positions: Vec<usize> = positive_changed_positions(rule, &scc.relations, changes)
            .into_iter()
            .filter(|&pos| changed_at(rule, pos, changes).has_del())
            .collect();
        for subset in 1u32..(1u32 << del_positions.len()) {
            let pins: Vec<Pin> = del_positions
                .iter()
                .enumerate()
                .filter(|(j, _)| subset >> j & 1 == 1)
                .map(|(_, &pos)| {
                    let change = changed_at(rule, pos, changes);
                    Pin { pos, rows: &change.del, stride: change.stride }
                })
                .collect();
            stats.rule_applications += 1;
            let envs = join_body_pinned(rule, db, &pins, None, &skip, None, guard)?;
            mark(db, rule, &envs, &mut cand, &mut frontier, stats)?;
        }
        for &idx in &skip {
            let PlanElem::Negated(atom) = &rule.body[idx] else { continue };
            // `skip` holds positions from `negated_changed_positions`, which
            // filters on exactly this lookup succeeding.
            #[allow(clippy::expect_used)]
            let change = changes.changed(&atom.relation).expect("changed negation");
            if !change.has_ins() {
                continue;
            }
            let seed = Pin { pos: idx, rows: &change.ins, stride: change.stride };
            stats.rule_applications += 1;
            let envs = join_body_pinned(rule, db, &[], Some(seed), &skip, None, guard)?;
            mark(db, rule, &envs, &mut cand, &mut frontier, stats)?;
        }
    }

    // Phase 1 cascade: marks propagate through the recursive positions
    // (marked rows are still stored, so sibling premises remain joinable).
    loop {
        guard.checkpoint(CheckPoint::IvmStep)?;
        if overshoot(&cand) {
            return Ok(false);
        }
        let current = std::mem::take(&mut frontier);
        frontier = scc.relations.iter().map(|n| (n.clone(), Vec::new())).collect();
        if current.values().all(|rows| rows.is_empty()) {
            break;
        }
        for rule in &scc.rules {
            let skip = negated_changed_positions(rule, &scc.relations, changes);
            for &pos in &rule.recursive_positions {
                let PlanElem::Atom(atom) = &rule.body[pos] else { continue };
                let Some(rows) = current.get(&atom.relation) else { continue };
                if rows.is_empty() {
                    continue;
                }
                let stride = info.get(&atom.relation).map(|&(_, s)| s).unwrap_or(1);
                stats.rule_applications += 1;
                let envs = join_body_pinned(
                    rule,
                    db,
                    &[Pin { pos, rows, stride }],
                    None,
                    &skip,
                    None,
                    guard,
                )?;
                mark(db, rule, &envs, &mut cand, &mut frontier, stats)?;
            }
        }
    }

    // Phase 2: physically retract every candidate.
    for name in &scc.relations {
        let set = &cand[name];
        if set.is_empty() {
            continue;
        }
        // Maintenance moved every component relation into the warm database
        // before this pass (see `PreparedDatabase::apply_delta`).
        #[allow(clippy::expect_used)]
        let rel = db.get_mut(name).expect("component relation");
        for row in set {
            rel.remove_cells(row);
        }
    }

    // Everything phases 3–4 append after this arena mark is a (re-)derived
    // row; the net delta is read off the suffix at the end.
    let marks: Vec<(String, usize)> = scc
        .relations
        .iter()
        .map(|n| (n.clone(), db.get(n).map(|r| r.full_cells().len()).unwrap_or(0)))
        .collect();

    // Phase 3: backward re-derivation checks, then forward propagation of
    // everything that survived.
    let mut refront: HashMap<String, Vec<Cell>> =
        scc.relations.iter().map(|n| (n.clone(), Vec::new())).collect();
    for name in &scc.relations {
        let rows: Vec<Vec<Cell>> = cand[name].iter().cloned().collect();
        let (arity, _) = *info.get(name).unwrap_or(&(0, 1));
        for row in rows {
            for rule in scc.rules.iter().filter(|p| p.head_relation == *name) {
                let Some(env0) = env_from_head(rule, &row) else { continue };
                stats.rule_applications += 1;
                let envs = join_body_pinned(rule, db, &[], None, &[], Some(vec![env0]), guard)?;
                if !envs.is_empty() {
                    // Component relations live in the warm database for the
                    // whole pass, and `refront` is seeded with all of them.
                    #[allow(clippy::expect_used)]
                    let rel = db.get_mut(name).expect("component relation");
                    rel.insert_cells(&row[..arity]);
                    #[allow(clippy::expect_used)]
                    let front = refront.get_mut(name).expect("component relation");
                    RelChange::push_padded(front, &row, arity, arity.max(1));
                    break;
                }
            }
        }
    }
    loop {
        guard.checkpoint(CheckPoint::IvmStep)?;
        let current = std::mem::take(&mut refront);
        refront = scc.relations.iter().map(|n| (n.clone(), Vec::new())).collect();
        if current.values().all(|rows| rows.is_empty()) {
            break;
        }
        for rule in &scc.rules {
            for &pos in &rule.recursive_positions {
                let PlanElem::Atom(atom) = &rule.body[pos] else { continue };
                let Some(rows) = current.get(&atom.relation) else { continue };
                if rows.is_empty() {
                    continue;
                }
                let stride = info.get(&atom.relation).map(|&(_, s)| s).unwrap_or(1);
                stats.rule_applications += 1;
                let envs = join_body_pinned(
                    rule,
                    db,
                    &[Pin { pos, rows, stride }],
                    None,
                    &[],
                    None,
                    guard,
                )?;
                stats.tuples_derived += envs.len();
                let mut derived = Derived::new(rule.head_stride());
                for env in &envs {
                    instantiate_head(rule, env, &mut derived)?;
                }
                let head = &rule.head_relation;
                let arity = rule.head_arity;
                for row in derived.cells.chunks_exact(derived.stride) {
                    let key = &row[..arity];
                    let present = db.get(head).map(|r| r.contains_cells(key)).unwrap_or(false);
                    if !present {
                        if let Some(rel) = db.get_mut(head) {
                            rel.insert_cells(key);
                        }
                        // `refront` is re-seeded with every component
                        // relation at the top of each round.
                        #[allow(clippy::expect_used)]
                        refront.get_mut(head).expect("component relation").extend_from_slice(row);
                    }
                }
            }
        }
    }

    // Phase 4: insert propagation — seed from external inserts and
    // re-satisfied negations, then run the scoped delta rounds.
    for rule in &scc.rules {
        for pos in positive_changed_positions(rule, &scc.relations, changes) {
            let change = changed_at(rule, pos, changes);
            if !change.has_ins() {
                continue;
            }
            stats.rule_applications += 1;
            let envs = join_body_pinned(
                rule,
                db,
                &[Pin { pos, rows: &change.ins, stride: change.stride }],
                None,
                &[],
                None,
                guard,
            )?;
            stats.tuples_derived += envs.len();
            let mut derived = Derived::new(rule.head_stride());
            for env in &envs {
                instantiate_head(rule, env, &mut derived)?;
            }
            stage_derived(rule, db, derived)?;
        }
        for idx in negated_changed_positions(rule, &scc.relations, changes) {
            let PlanElem::Negated(atom) = &rule.body[idx] else { continue };
            // `negated_changed_positions` filters on this lookup succeeding.
            #[allow(clippy::expect_used)]
            let change = changes.changed(&atom.relation).expect("changed negation");
            if !change.has_del() {
                continue;
            }
            // Seeded from the *deleted* rows of the negated relation; the
            // negation check stays on, verifying the gain in the new state.
            let seed = Pin { pos: idx, rows: &change.del, stride: change.stride };
            stats.rule_applications += 1;
            let envs = join_body_pinned(rule, db, &[], Some(seed), &[], None, guard)?;
            stats.tuples_derived += envs.len();
            let mut derived = Derived::new(rule.head_stride());
            for env in &envs {
                instantiate_head(rule, env, &mut derived)?;
            }
            stage_derived(rule, db, derived)?;
        }
    }
    stats.iterations += 1;
    for name in &scc.relations {
        if let Some(rel) = db.get_mut(name) {
            rel.advance();
        }
    }
    engine.scc_delta_rounds(scc, db, threads, stats, guard)?;
    for name in &scc.relations {
        if let Some(rel) = db.get_mut(name) {
            rel.clear_rounds();
        }
    }

    // Net delta: arena-suffix rows not in the candidate set are inserts;
    // candidates that never came back are deletes.
    for (name, mark_len) in marks {
        let Some(rel) = db.get(&name) else { continue };
        let (arity, stride) = (rel.arity(), rel.stride());
        let set = &cand[&name];
        let mut ins: Vec<Vec<Cell>> = Vec::new();
        for row in rel.full_cells()[mark_len..].chunks_exact(stride) {
            if is_tombstone(row[0]) {
                continue;
            }
            let key = &row[..arity];
            if !set.contains(key) {
                ins.push(key.to_vec());
            }
        }
        let mut del: Vec<&Vec<Cell>> = Vec::new();
        for row in set {
            if !rel.contains_cells(row) {
                del.push(row);
            }
        }
        if ins.is_empty() && del.is_empty() {
            continue;
        }
        let change = changes.entry(&name, arity);
        for row in &ins {
            change.push_ins(row);
        }
        for row in del {
            change.push_del(row);
        }
    }
    Ok(true)
}
