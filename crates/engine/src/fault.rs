//! Deterministic fault-injection harness for the execution-governance layer.
//!
//! Robustness claims are only worth what their tests exercise, so this module
//! turns one PRNG seed into a *fault schedule*: a fault kind (cancellation,
//! deadline trip, budget trip, or a synthetic panic) plus the guard-checkpoint
//! hit number at which to inject it. Because every engine checkpoint reports
//! its global hit count to the guard's fault hook, a schedule deterministically
//! picks one moment inside an evaluation — a fixpoint round, an SCC boundary,
//! a parallel worker chunk, a join-scan tick, an IVM step — and fails it
//! there. Sweeping seeds sweeps injection points across the whole execution.
//!
//! The module is compiled only for tests and benches (`cfg(test)` or the
//! `fault-inject` feature); release builds of the engine carry none of it.
//!
//! Typical use, from a differential test:
//!
//! ```ignore
//! let schedule = FaultSchedule::from_seed(seed, 40);
//! let guard = schedule.guard();
//! let err = prepared.run_guarded(&program, "tc", &guard);
//! // `err` is Ok only if the schedule's trip point was past the end of the
//! // execution; on Err, assert the database equals an untouched control.
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use raqlet_common::error::panic_message;
use raqlet_common::guard::{CheckPoint, InjectedFault, QueryGuard};
use raqlet_common::rng::SplitMix64;
use raqlet_common::{RaqletError, Result};

/// One deterministic fault schedule: inject `kind` at the `trip_at`-th guard
/// checkpoint hit (1-based). Derived from a seed, so a failing schedule is
/// reproducible from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The seed this schedule was derived from (kept for diagnostics).
    pub seed: u64,
    /// The fault to inject.
    pub kind: InjectedFault,
    /// 1-based checkpoint hit count at which the fault fires. A schedule
    /// whose trip point lies past the end of the execution injects nothing —
    /// the call succeeds, which sweeps naturally cover.
    pub trip_at: u64,
}

impl FaultSchedule {
    /// Derive a schedule from `seed`, tripping somewhere within the first
    /// `max_hit` checkpoint hits. All four fault kinds are drawn uniformly.
    pub fn from_seed(seed: u64, max_hit: u64) -> FaultSchedule {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let kind = match rng.gen_index(0..4) {
            0 => InjectedFault::Cancel,
            1 => InjectedFault::Timeout,
            2 => InjectedFault::Budget,
            _ => InjectedFault::Panic,
        };
        let trip_at = 1 + rng.next_u64() % max_hit.max(1);
        FaultSchedule { seed, kind, trip_at }
    }

    /// A guard armed with this schedule: its fault hook fires `kind` at
    /// checkpoint hit `trip_at` and stays silent otherwise.
    pub fn guard(&self) -> QueryGuard {
        let FaultSchedule { kind, trip_at, .. } = *self;
        QueryGuard::new().with_fault_hook(Arc::new(move |_site: CheckPoint, hit: u64| {
            (hit == trip_at).then_some(kind)
        }))
    }
}

/// Run `f`, converting any panic into [`RaqletError::Internal`] carrying the
/// panic message. The differential suites use this to keep sweeping after an
/// injected synthetic panic that fires on the calling thread (worker-thread
/// panics are already contained inside the engine; `PreparedDatabase`'s
/// guarded entry points contain calling-thread panics themselves, so this is
/// for driving the raw engines).
pub fn with_contained_panics<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        Err(RaqletError::internal(format!("contained panic: {}", panic_message(payload.as_ref()))))
    })
}

/// Count the guard checkpoints an execution hits, by running it once under an
/// armed guard whose fault hook never fires. Sweeps use this to size
/// `max_hit` so the schedule space actually covers the execution.
pub fn count_checkpoints(f: impl FnOnce(&QueryGuard) -> Result<()>) -> Result<u64> {
    let guard = QueryGuard::new().with_fault_hook(Arc::new(|_, _| None));
    f(&guard)?;
    Ok(guard.checkpoints_hit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        for seed in 0..64 {
            let a = FaultSchedule::from_seed(seed, 40);
            let b = FaultSchedule::from_seed(seed, 40);
            assert_eq!(a, b);
            assert!(a.trip_at >= 1 && a.trip_at <= 40);
        }
    }

    #[test]
    fn seed_sweep_covers_every_fault_kind() {
        let mut seen = [false; 4];
        for seed in 0..64 {
            let s = FaultSchedule::from_seed(seed, 10);
            seen[match s.kind {
                InjectedFault::Cancel => 0,
                InjectedFault::Timeout => 1,
                InjectedFault::Budget => 2,
                InjectedFault::Panic => 3,
            }] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn contained_panics_become_internal_errors() {
        let out: Result<()> = with_contained_panics(|| panic!("boom at {}", 7));
        let err = out.unwrap_err();
        assert!(err.to_string().contains("boom at 7"), "{err}");
    }
}
