//! In-memory relational engine interpreting SQIR: the stand-in for the
//! paper's DuckDB and HyPer backends.
//!
//! The engine evaluates a [`SqirQuery`] against a [`Database`]:
//!
//! * CTEs are evaluated in order and materialised;
//! * recursive CTEs follow the SQL standard's semantics: the base branches
//!   seed a working table, the recursive branches see only the previous
//!   iteration's new rows, and `UNION` (distinct) deduplication drives the
//!   iteration to a fixpoint;
//! * two *cost profiles* stand in for the two RDBMS of the paper's Table 1:
//!   [`SqlProfile::Duck`] joins with hash tables on equi-join keys (a
//!   vectorised, analytics-style executor), while [`SqlProfile::Hyper`]
//!   uses tuple-at-a-time nested-loop joins (a compiled, pipeline-style
//!   executor whose low constants win on tiny, selective queries but lose on
//!   large joins). Both produce identical results.
//!
//! Intermediate joined rows are flat vectors of packed [`Cell`]s taken
//! straight from the relations' arenas: hash-join keys, group-by keys and
//! working-table dedup are `u64` word compares against the shared
//! per-database dictionary, and values are decoded only at expression
//! boundaries (predicates, arithmetic, aggregation).
//!
//! Column names are resolved through a [`TableCatalog`] (built from the
//! DL-Schema for base tables; CTE columns come from their declarations).

use std::collections::HashMap;

use raqlet_common::cell::{Cell, ValueDict};
use raqlet_common::guard::{CheckPoint, QueryGuard};
use raqlet_common::hash::FxHashMap;
use raqlet_common::schema::DlSchema;
use raqlet_common::{Database, RaqletError, Relation, Result, Value};
use raqlet_sqir::{
    Cte, FromItem, SelectStmt, SqirQuery, SqlAggFunc, SqlArithOp, SqlCmpOp, SqlExpr,
};

/// Execution profile: which join strategy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqlProfile {
    /// Hash joins on equi-join keys (DuckDB-style analytics executor).
    #[default]
    Duck,
    /// Nested-loop joins (HyPer-style tuple-at-a-time executor).
    Hyper,
}

impl SqlProfile {
    /// Human-readable name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            SqlProfile::Duck => "duckdb-sim",
            SqlProfile::Hyper => "hyper-sim",
        }
    }
}

/// Maps table / CTE names to their ordered column names.
#[derive(Debug, Clone, Default)]
pub struct TableCatalog {
    columns: HashMap<String, Vec<String>>,
}

impl TableCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a catalog from a DL-Schema (every declared relation).
    pub fn from_schema(schema: &DlSchema) -> Self {
        let mut catalog = TableCatalog::new();
        for decl in schema.iter() {
            catalog.register(&decl.name, decl.columns.iter().map(|c| c.name.clone()).collect());
        }
        catalog
    }

    /// Register (or replace) a table's column names.
    pub fn register(&mut self, table: &str, columns: Vec<String>) {
        self.columns.insert(table.to_string(), columns);
    }

    /// Column names of a table.
    pub fn columns_of(&self, table: &str) -> Result<&[String]> {
        self.columns.get(table).map(|v| v.as_slice()).ok_or_else(|| {
            RaqletError::execution(format!("no column metadata for table `{table}`"))
        })
    }

    /// Index of a column within a table.
    pub fn column_index(&self, table: &str, column: &str) -> Result<usize> {
        self.columns_of(table)?
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| RaqletError::execution(format!("unknown column `{table}.{column}`")))
    }
}

/// Statistics for a SQL evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SqlStats {
    /// Number of CTEs materialised.
    pub ctes_materialised: usize,
    /// Total fixpoint iterations across recursive CTEs.
    pub recursive_iterations: usize,
    /// Total rows produced across all materialisations (before dedup).
    pub rows_produced: usize,
}

/// Result of executing a SQIR query.
#[derive(Debug, Clone)]
pub struct SqlResult {
    /// The rows of the final SELECT.
    pub rows: Relation,
    /// Output column names.
    pub columns: Vec<String>,
    /// Execution statistics.
    pub stats: SqlStats,
}

/// The SQL engine.
#[derive(Debug, Clone, Default)]
pub struct SqlEngine {
    /// Join strategy profile.
    pub profile: SqlProfile,
}

impl SqlEngine {
    /// A DuckDB-profile engine.
    pub fn duck() -> Self {
        SqlEngine { profile: SqlProfile::Duck }
    }

    /// A HyPer-profile engine.
    pub fn hyper() -> Self {
        SqlEngine { profile: SqlProfile::Hyper }
    }

    /// Execute a SQIR query against the database of base tables.
    pub fn execute(
        &self,
        query: &SqirQuery,
        db: &Database,
        catalog: &TableCatalog,
    ) -> Result<SqlResult> {
        self.execute_guarded(query, db, catalog, &QueryGuard::new())
    }

    /// [`SqlEngine::execute`] under an execution [`QueryGuard`]: the guard is
    /// checked before each CTE materialization and at every recursive-CTE
    /// fixpoint round, so deadlines, budgets and cancellation interrupt a
    /// runaway recursive query between rounds.
    pub fn execute_guarded(
        &self,
        query: &SqirQuery,
        db: &Database,
        catalog: &TableCatalog,
        guard: &QueryGuard,
    ) -> Result<SqlResult> {
        let mut scope = db.clone();
        let mut names = catalog.clone();
        let mut stats = SqlStats::default();
        for cte in &query.ctes {
            guard.checkpoint(CheckPoint::Scc)?;
            names.register(&cte.name, cte.columns.clone());
            let relation = self.evaluate_cte(cte, &scope, &names, &mut stats, guard)?;
            stats.ctes_materialised += 1;
            scope.set(cte.name.clone(), relation);
        }
        let rows = self.evaluate_select(&query.final_select, &scope, &names, None, &mut stats)?;
        Ok(SqlResult { rows, columns: query.final_select.output_columns(), stats })
    }

    fn evaluate_cte(
        &self,
        cte: &Cte,
        scope: &Database,
        names: &TableCatalog,
        stats: &mut SqlStats,
        guard: &QueryGuard,
    ) -> Result<Relation> {
        let arity = cte.columns.len();
        if !cte.recursive {
            let mut all = Relation::with_dict(arity, scope.dict().clone());
            for branch in &cte.branches {
                let rel = self.evaluate_select(branch, scope, names, None, stats)?;
                all.merge(&rel)?;
            }
            return Ok(all);
        }

        // Recursive CTE: base branches seed the working table; recursive
        // branches see only the previous iteration's delta under the CTE's
        // own name (the SQL standard's working-table semantics).
        let mut all = Relation::with_dict(arity, scope.dict().clone());
        for branch in cte.base_branches() {
            let rel = self.evaluate_select(branch, scope, names, None, stats)?;
            all.merge(&rel)?;
        }
        // The base tables of the recursive branches are iteration-invariant:
        // push their single-alias predicates down once, before the loop. The
        // working-table binding itself (whose contents change every round)
        // is deliberately left unfiltered.
        let prefiltered: Vec<Vec<Option<Relation>>> = cte
            .recursive_branches()
            .iter()
            .map(|branch| prefilter_tables(branch, scope, names, Some(&cte.name)))
            .collect::<Result<_>>()?;
        let mut delta = all.clone();
        while !delta.is_empty() {
            guard.checkpoint(CheckPoint::FixpointRound)?;
            if guard.memory_budget().is_some() {
                guard.check_memory(all.heap_bytes())?;
            }
            stats.recursive_iterations += 1;
            let mut derived = Relation::with_dict(arity, scope.dict().clone());
            for (branch, filtered) in cte.recursive_branches().iter().zip(&prefiltered) {
                let rel = self.evaluate_select_with(
                    branch,
                    scope,
                    names,
                    Some((&cte.name, &delta)),
                    filtered,
                    stats,
                )?;
                derived.merge(&rel)?;
            }
            let new = derived.difference(&all);
            guard.add_tuples(new.len());
            all.merge(&new)?;
            delta = new;
        }
        Ok(all)
    }

    /// Evaluate one SELECT. `recursive_binding` substitutes the named table
    /// with the given relation (the recursive CTE's working delta).
    fn evaluate_select(
        &self,
        stmt: &SelectStmt,
        scope: &Database,
        names: &TableCatalog,
        recursive_binding: Option<(&str, &Relation)>,
        stats: &mut SqlStats,
    ) -> Result<Relation> {
        let prefiltered =
            prefilter_tables(stmt, scope, names, recursive_binding.map(|(name, _)| name))?;
        self.evaluate_select_with(stmt, scope, names, recursive_binding, &prefiltered, stats)
    }

    /// [`SqlEngine::evaluate_select`] with the selection pushdown already
    /// computed (recursive CTE loops hoist it out of the working-table
    /// iteration, since the base tables never change between rounds).
    fn evaluate_select_with(
        &self,
        stmt: &SelectStmt,
        scope: &Database,
        names: &TableCatalog,
        recursive_binding: Option<(&str, &Relation)>,
        prefiltered: &[Option<Relation>],
        stats: &mut SqlStats,
    ) -> Result<Relation> {
        // Resolve FROM tables and build the row layout.
        let mut tables: Vec<(&FromItem, &Relation)> = Vec::new();
        for (i, item) in stmt.from.iter().enumerate() {
            let rel: &Relation = match &prefiltered[i] {
                Some(filtered) => filtered,
                None => match recursive_binding {
                    Some((name, delta)) if name == item.table => delta,
                    _ => scope.get(&item.table).ok_or_else(|| {
                        RaqletError::execution(format!("table `{}` not found", item.table))
                    })?,
                },
            };
            tables.push((item, rel));
        }
        // Join in greedy bound-first order rather than FROM order, mirroring
        // the Datalog planner: the recursive working table (the delta, when
        // present) drives the join, and each subsequent table is the one
        // reached through the most equi-join keys from the tables already
        // joined (ties broken towards smaller tables). Inner joins plus the
        // residual re-check make any order produce the same rows; the order
        // only controls how large the intermediate products get.
        let order =
            greedy_join_order(&tables, &stmt.where_conjuncts, recursive_binding.map(|(n, _)| n));
        let tables: Vec<(&FromItem, &Relation)> = order.iter().map(|&i| tables[i]).collect();
        let mut layout = RowLayout::default();
        let mut offset = 0usize;
        for (item, rel) in &tables {
            let columns = names.columns_of(&item.table)?.to_vec();
            if !rel.is_empty() && columns.len() != rel.arity() {
                return Err(RaqletError::execution(format!(
                    "table `{}` has arity {} but catalog lists {} columns",
                    item.table,
                    rel.arity(),
                    columns.len()
                )));
            }
            layout.aliases.push(AliasColumns {
                alias: item.alias.clone(),
                offset,
                columns: columns.clone(),
            });
            offset += columns.len();
        }

        // Join over packed rows.
        let rows = match self.profile {
            SqlProfile::Duck => self.hash_join(&tables, &layout, &stmt.where_conjuncts)?,
            SqlProfile::Hyper => self.nested_loop_join(&tables, &layout, &stmt.where_conjuncts)?,
        };
        stats.rows_produced += rows.len();

        // Residual predicates (everything, including NOT EXISTS — the
        // equi-join keys evaluate to true on joined rows, so re-checking them
        // is harmless).
        let ctx = RowContext { layout: &layout, scope, names, dict: scope.dict() };
        let mut filtered: Vec<Vec<Cell>> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut keep = true;
            for pred in &stmt.where_conjuncts {
                if !ctx.eval_predicate(pred, &row)? {
                    keep = false;
                    break;
                }
            }
            if keep {
                filtered.push(row);
            }
        }

        // Projection / aggregation.
        let mut out = Relation::with_dict(stmt.items.len(), scope.dict().clone());
        if stmt.is_aggregating() {
            let mut groups: FxHashMap<Vec<Cell>, Vec<Vec<Cell>>> = FxHashMap::default();
            for row in filtered {
                let key: Vec<Cell> = stmt
                    .group_by
                    .iter()
                    .map(|g| ctx.eval_cell(g, &row))
                    .collect::<Result<Vec<_>>>()?;
                groups.entry(key).or_default().push(row);
            }
            if groups.is_empty() && stmt.group_by.is_empty() {
                groups.insert(Vec::new(), Vec::new());
            }
            let mut tuple: Vec<Cell> = Vec::with_capacity(stmt.items.len());
            for (_, group_rows) in groups {
                tuple.clear();
                for item in &stmt.items {
                    let value = ctx.eval_aggregate_item(&item.expr, &group_rows)?;
                    tuple.push(ctx.dict.encode_value(&value));
                }
                out.insert_cells(&tuple);
            }
        } else {
            let mut tuple: Vec<Cell> = Vec::with_capacity(stmt.items.len());
            for row in filtered {
                tuple.clear();
                for item in &stmt.items {
                    tuple.push(ctx.eval_cell(&item.expr, &row)?);
                }
                // Raqlet only emits DISTINCT selects; the set-backed Relation
                // deduplicates for us.
                out.insert_cells(&tuple);
            }
        }
        Ok(out)
    }

    /// Hash join: join tables left to right, building a hash table over the
    /// new table's equi-join columns and probing it with the partial rows.
    /// Keys are packed cells — single-key joins index on the bare `u64`.
    fn hash_join(
        &self,
        tables: &[(&FromItem, &Relation)],
        layout: &RowLayout,
        predicates: &[SqlExpr],
    ) -> Result<Vec<Vec<Cell>>> {
        let mut rows: Vec<Vec<Cell>> = vec![Vec::new()];
        for (idx, (item, rel)) in tables.iter().enumerate() {
            let joined: Vec<&str> = tables[..idx].iter().map(|(i, _)| i.alias.as_str()).collect();
            let keys = equi_join_keys(predicates, &joined, &item.alias, layout)?;
            let mut next = Vec::new();
            if keys.is_empty() {
                for row in &rows {
                    for tuple in rel.iter_rows() {
                        let mut r = Vec::with_capacity(row.len() + tuple.len());
                        r.extend_from_slice(row);
                        r.extend_from_slice(tuple);
                        next.push(r);
                    }
                }
            } else if keys.len() == 1 {
                let (left_off, right_col) = keys[0];
                let mut index: FxHashMap<Cell, Vec<&[Cell]>> = FxHashMap::default();
                for tuple in rel.iter_rows() {
                    index.entry(tuple[right_col]).or_default().push(tuple);
                }
                for row in &rows {
                    if let Some(matches) = index.get(&row[left_off]) {
                        for tuple in matches {
                            let mut r = Vec::with_capacity(row.len() + tuple.len());
                            r.extend_from_slice(row);
                            r.extend_from_slice(tuple);
                            next.push(r);
                        }
                    }
                }
            } else {
                let mut index: FxHashMap<Vec<Cell>, Vec<&[Cell]>> = FxHashMap::default();
                for tuple in rel.iter_rows() {
                    let key: Vec<Cell> =
                        keys.iter().map(|(_, right_col)| tuple[*right_col]).collect();
                    index.entry(key).or_default().push(tuple);
                }
                let mut key: Vec<Cell> = Vec::with_capacity(keys.len());
                for row in &rows {
                    key.clear();
                    key.extend(keys.iter().map(|(left_off, _)| row[*left_off]));
                    if let Some(matches) = index.get(key.as_slice()) {
                        for tuple in matches {
                            let mut r = Vec::with_capacity(row.len() + tuple.len());
                            r.extend_from_slice(row);
                            r.extend_from_slice(tuple);
                            next.push(r);
                        }
                    }
                }
            }
            rows = next;
        }
        Ok(rows)
    }

    /// Nested-loop join: every new table is scanned per partial row, checking
    /// the applicable equi-join predicates pair by pair (cell compares).
    fn nested_loop_join(
        &self,
        tables: &[(&FromItem, &Relation)],
        layout: &RowLayout,
        predicates: &[SqlExpr],
    ) -> Result<Vec<Vec<Cell>>> {
        let mut rows: Vec<Vec<Cell>> = vec![Vec::new()];
        for (idx, (item, rel)) in tables.iter().enumerate() {
            let joined: Vec<&str> = tables[..idx].iter().map(|(i, _)| i.alias.as_str()).collect();
            let keys = equi_join_keys(predicates, &joined, &item.alias, layout)?;
            let mut next = Vec::new();
            for row in &rows {
                for tuple in rel.iter_rows() {
                    let ok = keys
                        .iter()
                        .all(|(left_off, right_col)| row[*left_off] == tuple[*right_col]);
                    if ok {
                        let mut r = Vec::with_capacity(row.len() + tuple.len());
                        r.extend_from_slice(row);
                        r.extend_from_slice(tuple);
                        next.push(r);
                    }
                }
            }
            rows = next;
        }
        Ok(rows)
    }
}

/// Column layout of a joined row.
#[derive(Debug, Clone, Default)]
struct RowLayout {
    aliases: Vec<AliasColumns>,
}

#[derive(Debug, Clone)]
struct AliasColumns {
    alias: String,
    offset: usize,
    columns: Vec<String>,
}

impl RowLayout {
    /// Offset of `alias.column` within a fully joined row.
    fn offset_of(&self, alias: &str, column: &str) -> Result<usize> {
        let a = self
            .aliases
            .iter()
            .find(|a| a.alias == alias)
            .ok_or_else(|| RaqletError::execution(format!("unknown table alias `{alias}`")))?;
        let idx =
            a.columns.iter().position(|c| c == column).ok_or_else(|| {
                RaqletError::execution(format!("unknown column `{alias}.{column}`"))
            })?;
        Ok(a.offset + idx)
    }

    /// Index of `column` within the alias's own tuple.
    fn local_index(&self, alias: &str, column: &str) -> Result<usize> {
        let a = self
            .aliases
            .iter()
            .find(|a| a.alias == alias)
            .ok_or_else(|| RaqletError::execution(format!("unknown table alias `{alias}`")))?;
        a.columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| RaqletError::execution(format!("unknown column `{alias}.{column}`")))
    }
}

/// Selection pushdown: filter each FROM table by the predicates that
/// reference only its alias *before* joining. Without this, literal filters
/// like `R.id = 42` (which carry no equi-join key) only run after the full
/// join materialises — the optimizer's constant propagation would make
/// queries slower on this engine, not faster (the CQ2 pathology recorded in
/// `BENCH_baseline.json`). Returns one entry per FROM item; `None` means the
/// table has no pushable predicate (or is the iteration-variant recursive
/// working table named by `skip_table`) and should be read as-is.
fn prefilter_tables(
    stmt: &SelectStmt,
    scope: &Database,
    names: &TableCatalog,
    skip_table: Option<&str>,
) -> Result<Vec<Option<Relation>>> {
    let mut prefiltered: Vec<Option<Relation>> = Vec::with_capacity(stmt.from.len());
    for item in &stmt.from {
        if skip_table == Some(item.table.as_str()) {
            prefiltered.push(None);
            continue;
        }
        let single: Vec<&SqlExpr> =
            stmt.where_conjuncts.iter().filter(|p| references_only_alias(p, &item.alias)).collect();
        if single.is_empty() {
            prefiltered.push(None);
            continue;
        }
        let rel = scope
            .get(&item.table)
            .ok_or_else(|| RaqletError::execution(format!("table `{}` not found", item.table)))?;
        let layout = RowLayout {
            aliases: vec![AliasColumns {
                alias: item.alias.clone(),
                offset: 0,
                columns: names.columns_of(&item.table)?.to_vec(),
            }],
        };
        let ctx = RowContext { layout: &layout, scope, names, dict: scope.dict() };
        let mut kept = Relation::with_dict(rel.arity(), scope.dict().clone());
        'rows: for tuple in rel.iter_rows() {
            for pred in &single {
                if !ctx.eval_predicate(pred, tuple)? {
                    continue 'rows;
                }
            }
            kept.insert_cells(tuple);
        }
        prefiltered.push(Some(kept));
    }
    Ok(prefiltered)
}

/// True if the predicate can be evaluated against a single table alias: all
/// column references belong to `alias` and the expression has no subquery or
/// aggregate parts. Such predicates are safe to push below the join.
fn references_only_alias(expr: &SqlExpr, alias: &str) -> bool {
    match expr {
        SqlExpr::Column { table, .. } => table == alias,
        SqlExpr::Literal(_) => true,
        SqlExpr::Cmp { lhs, rhs, .. } | SqlExpr::Arith { lhs, rhs, .. } => {
            references_only_alias(lhs, alias) && references_only_alias(rhs, alias)
        }
        SqlExpr::Aggregate { .. } | SqlExpr::NotExists { .. } => false,
    }
}

/// Pick the order in which FROM tables are joined: the recursive working
/// table first when present (it plays the role of the Datalog delta — small
/// and shrinking towards the fixpoint), then greedily the table connected to
/// the already-joined set by the most equi-join predicates, with ties broken
/// towards smaller tables and then FROM position. Returns indexes into
/// `tables`.
fn greedy_join_order(
    tables: &[(&FromItem, &Relation)],
    predicates: &[SqlExpr],
    recursive_table: Option<&str>,
) -> Vec<usize> {
    if tables.len() <= 1 {
        return (0..tables.len()).collect();
    }
    let mut order: Vec<usize> = Vec::with_capacity(tables.len());
    let mut remaining: Vec<usize> = (0..tables.len()).collect();
    if let Some(name) = recursive_table {
        if let Some(p) = remaining.iter().position(|&i| tables[i].0.table == name) {
            order.push(remaining.remove(p));
        }
    }
    while !remaining.is_empty() {
        let joined: Vec<&str> = order.iter().map(|&i| tables[i].0.alias.as_str()).collect();
        // The loop guard proves `remaining` non-empty, so a maximum exists.
        #[allow(clippy::expect_used)]
        let best = remaining
            .iter()
            .enumerate()
            .map(|(pos, &idx)| {
                let alias = tables[idx].0.alias.as_str();
                let keys = connecting_key_count(predicates, &joined, alias);
                let size = tables[idx].1.len();
                (pos, (keys as i64, -(size as i64), -(idx as i64)))
            })
            .max_by_key(|(_, score)| *score)
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        order.push(remaining.remove(best));
    }
    order
}

/// Number of `a.x = b.y` predicates connecting the already-joined aliases to
/// `new_alias` (the hash/nested-loop joins will use exactly these as keys).
fn connecting_key_count(predicates: &[SqlExpr], joined: &[&str], new_alias: &str) -> usize {
    predicates
        .iter()
        .filter(|pred| {
            let SqlExpr::Cmp { op: SqlCmpOp::Eq, lhs, rhs } = pred else { return false };
            let (SqlExpr::Column { table: t1, .. }, SqlExpr::Column { table: t2, .. }) =
                (lhs.as_ref(), rhs.as_ref())
            else {
                return false;
            };
            (joined.contains(&t1.as_str()) && t2 == new_alias)
                || (joined.contains(&t2.as_str()) && t1 == new_alias)
        })
        .count()
}

/// Extract equi-join keys `(left row offset, right local column index)`
/// between the already-joined aliases and the alias being added.
fn equi_join_keys(
    predicates: &[SqlExpr],
    joined: &[&str],
    new_alias: &str,
    layout: &RowLayout,
) -> Result<Vec<(usize, usize)>> {
    let mut keys = Vec::new();
    for pred in predicates {
        let SqlExpr::Cmp { op: SqlCmpOp::Eq, lhs, rhs } = pred else { continue };
        let (SqlExpr::Column { table: t1, column: c1 }, SqlExpr::Column { table: t2, column: c2 }) =
            (lhs.as_ref(), rhs.as_ref())
        else {
            continue;
        };
        let (left, right) = if joined.contains(&t1.as_str()) && t2 == new_alias {
            ((t1, c1), (t2, c2))
        } else if joined.contains(&t2.as_str()) && t1 == new_alias {
            ((t2, c2), (t1, c1))
        } else {
            continue;
        };
        keys.push((layout.offset_of(left.0, left.1)?, layout.local_index(right.0, right.1)?));
    }
    Ok(keys)
}

/// Evaluation context for one SELECT: the joined-row layout plus the shared
/// dictionary cells are decoded through at expression boundaries.
struct RowContext<'a> {
    layout: &'a RowLayout,
    scope: &'a Database,
    names: &'a TableCatalog,
    dict: &'a ValueDict,
}

impl<'a> RowContext<'a> {
    fn eval_predicate(&self, expr: &SqlExpr, row: &[Cell]) -> Result<bool> {
        match expr {
            SqlExpr::NotExists { table, alias, conditions } => {
                let Some(rel) = self.scope.get(table) else { return Ok(true) };
                'tuples: for tuple in rel.iter_rows() {
                    for cond in conditions {
                        if !self.eval_with_candidate(cond, row, table, alias, tuple)? {
                            continue 'tuples;
                        }
                    }
                    return Ok(false);
                }
                Ok(true)
            }
            other => Ok(self.eval_scalar(other, row)?.is_truthy()),
        }
    }

    /// Evaluate a NOT EXISTS condition where references to `candidate_alias`
    /// read from `candidate`.
    fn eval_with_candidate(
        &self,
        expr: &SqlExpr,
        row: &[Cell],
        candidate_table: &str,
        candidate_alias: &str,
        candidate: &[Cell],
    ) -> Result<bool> {
        let v =
            self.eval_scalar_with(expr, row, Some((candidate_table, candidate_alias, candidate)))?;
        Ok(v.is_truthy())
    }

    fn eval_scalar(&self, expr: &SqlExpr, row: &[Cell]) -> Result<Value> {
        self.eval_scalar_with(expr, row, None)
    }

    /// Evaluate an expression straight to a packed cell: bare column
    /// references copy the cell (the projection fast path); everything else
    /// evaluates at the value level and encodes the result.
    fn eval_cell(&self, expr: &SqlExpr, row: &[Cell]) -> Result<Cell> {
        match expr {
            SqlExpr::Column { table, column } => {
                let offset = self.layout.offset_of(table, column)?;
                Ok(row.get(offset).copied().unwrap_or(raqlet_common::cell::NULL_CELL))
            }
            other => Ok(self.dict.encode_value(&self.eval_scalar(other, row)?)),
        }
    }

    fn eval_scalar_with(
        &self,
        expr: &SqlExpr,
        row: &[Cell],
        candidate: Option<(&str, &str, &[Cell])>,
    ) -> Result<Value> {
        match expr {
            SqlExpr::Column { table, column } => {
                if let Some((cand_table, cand_alias, tuple)) = candidate {
                    if table == cand_alias {
                        let idx = self.names.column_index(cand_table, column)?;
                        return Ok(tuple
                            .get(idx)
                            .map(|&c| self.dict.decode(c))
                            .unwrap_or(Value::Null));
                    }
                }
                let offset = self.layout.offset_of(table, column)?;
                Ok(row.get(offset).map(|&c| self.dict.decode(c)).unwrap_or(Value::Null))
            }
            SqlExpr::Literal(v) => Ok(v.clone()),
            SqlExpr::Cmp { op, lhs, rhs } => {
                let l = self.eval_scalar_with(lhs, row, candidate)?;
                let r = self.eval_scalar_with(rhs, row, candidate)?;
                Ok(Value::Bool(eval_cmp(*op, &l, &r)))
            }
            SqlExpr::Arith { op, lhs, rhs } => {
                let l = self.eval_scalar_with(lhs, row, candidate)?;
                let r = self.eval_scalar_with(rhs, row, candidate)?;
                eval_arith(*op, &l, &r)
            }
            SqlExpr::Aggregate { .. } => Err(RaqletError::execution(
                "aggregate expression evaluated outside GROUP BY context",
            )),
            SqlExpr::NotExists { .. } => {
                Err(RaqletError::execution("NOT EXISTS evaluated as a scalar expression"))
            }
        }
    }

    fn eval_aggregate_item(&self, expr: &SqlExpr, group_rows: &[Vec<Cell>]) -> Result<Value> {
        match expr {
            SqlExpr::Aggregate { func, distinct, arg } => {
                let mut values: Vec<Value> = match arg {
                    Some(a) => group_rows
                        .iter()
                        .map(|row| self.eval_scalar(a, row))
                        .collect::<Result<Vec<_>>>()?,
                    None => group_rows.iter().map(|_| Value::Int(1)).collect(),
                };
                if *distinct {
                    values.sort();
                    values.dedup();
                }
                Ok(match func {
                    SqlAggFunc::Count => Value::Int(values.len() as i64),
                    SqlAggFunc::Sum => {
                        Value::Int(values.iter().filter_map(|v| v.as_int()).sum::<i64>())
                    }
                    SqlAggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Null),
                    SqlAggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Null),
                    SqlAggFunc::Avg => {
                        let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
                        if ints.is_empty() {
                            Value::Null
                        } else {
                            Value::Int(ints.iter().sum::<i64>() / ints.len() as i64)
                        }
                    }
                })
            }
            // Non-aggregate items inside a GROUP BY are group keys: all rows
            // of the group agree, so read from the first.
            other => match group_rows.first() {
                Some(row) => self.eval_scalar(other, row),
                None => Ok(Value::Null),
            },
        }
    }
}

fn eval_cmp(op: SqlCmpOp, l: &Value, r: &Value) -> bool {
    if l.is_null() || r.is_null() {
        return false;
    }
    match op {
        SqlCmpOp::Eq => l == r,
        SqlCmpOp::Neq => l != r,
        SqlCmpOp::Lt => l < r,
        SqlCmpOp::Le => l <= r,
        SqlCmpOp::Gt => l > r,
        SqlCmpOp::Ge => l >= r,
    }
}

fn eval_arith(op: SqlArithOp, l: &Value, r: &Value) -> Result<Value> {
    let (a, b) = match (l.as_int(), r.as_int()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Value::Null),
    };
    Ok(match op {
        SqlArithOp::Add => Value::Int(a + b),
        SqlArithOp::Sub => Value::Int(a - b),
        SqlArithOp::Mul => Value::Int(a * b),
        SqlArithOp::Div => {
            if b == 0 {
                Value::Null
            } else {
                Value::Int(a / b)
            }
        }
        SqlArithOp::Mod => {
            if b == 0 {
                Value::Null
            } else {
                Value::Int(a % b)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::schema::{Column, RelationDecl, RelationKind};
    use raqlet_common::ValueType;
    use raqlet_dlir::{Atom, BodyElem, DlExpr, DlirProgram, Rule};
    use raqlet_sqir::{lower_to_sqir, SqlLowerOptions};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn edge_program() -> DlirProgram {
        let mut schema = DlSchema::new();
        schema
            .add(RelationDecl::new(
                "edge",
                vec![Column::new("src", ValueType::Int), Column::new("dst", ValueType::Int)],
                RelationKind::BaseTable,
            ))
            .unwrap();
        DlirProgram::new(schema)
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_fact("edge", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        db
    }

    fn run(program: &DlirProgram, output: &str, db: &Database, profile: SqlProfile) -> Relation {
        let sqir = lower_to_sqir(program, output, &SqlLowerOptions::default()).unwrap();
        let catalog = TableCatalog::from_schema(&program.schema);
        let engine = SqlEngine { profile };
        engine.execute(&sqir, db, &catalog).unwrap().rows
    }

    #[test]
    fn recursive_cte_computes_transitive_closure() {
        let mut p = edge_program();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let rows = run(&p, "tc", &chain_db(5), SqlProfile::Duck);
        assert_eq!(rows.len(), 15);
    }

    #[test]
    fn duck_and_hyper_profiles_agree() {
        let mut p = edge_program();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let db = chain_db(7);
        assert_eq!(run(&p, "tc", &db, SqlProfile::Duck), run(&p, "tc", &db, SqlProfile::Hyper));
    }

    #[test]
    fn joins_constants_and_filters() {
        // q(c) :- edge(1, b), edge(b, c).
        let mut p = edge_program();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["c"]),
            vec![
                BodyElem::Atom(Atom::new(
                    "edge",
                    vec![raqlet_dlir::Term::int(1), raqlet_dlir::Term::var("b")],
                )),
                atom("edge", &["b", "c"]),
            ],
        ));
        p.add_output("q");
        let rows = run(&p, "q", &chain_db(5), SqlProfile::Duck);
        assert_eq!(rows.sorted(), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn cte_chains_pass_results_downstream() {
        // V1 = edge; Return(x) :- V1(x, y), y = 3.
        let mut p = edge_program();
        p.add_rule(Rule::new(Atom::with_vars("V1", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["x"]),
            vec![atom("V1", &["x", "y"]), BodyElem::eq(DlExpr::var("y"), DlExpr::int(3))],
        ));
        p.add_output("Return");
        let rows = run(&p, "Return", &chain_db(5), SqlProfile::Hyper);
        assert_eq!(rows.sorted(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn group_by_aggregation() {
        use raqlet_dlir::{AggFunc, Aggregation};
        let mut p = edge_program();
        let mut rule =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        rule.aggregation = Some(Aggregation {
            func: AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        p.add_rule(rule);
        p.add_output("deg");
        let mut db = Database::new();
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let rows = run(&p, "deg", &db, SqlProfile::Duck);
        assert!(rows.contains(&[Value::Int(1), Value::Int(2)]));
        assert!(rows.contains(&[Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn not_exists_implements_negation() {
        // sink(x) :- edge(_, x), !edge(x, _): nodes with no outgoing edge.
        let mut p = edge_program();
        p.add_rule(Rule::new(
            Atom::with_vars("sink", &["x"]),
            vec![
                BodyElem::Atom(Atom::new(
                    "edge",
                    vec![raqlet_dlir::Term::Wildcard, raqlet_dlir::Term::var("x")],
                )),
                BodyElem::Negated(Atom::new(
                    "edge",
                    vec![raqlet_dlir::Term::var("x"), raqlet_dlir::Term::Wildcard],
                )),
            ],
        ));
        p.add_output("sink");
        let rows = run(&p, "sink", &chain_db(4), SqlProfile::Duck);
        assert_eq!(rows.sorted(), vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn sql_engine_matches_datalog_engine_on_tc() {
        let mut p = edge_program();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let db = chain_db(6);
        let sql_rows = run(&p, "tc", &db, SqlProfile::Duck);
        let dl_rows = crate::datalog::DatalogEngine::new().run_output(&p, &db, "tc").unwrap();
        assert_eq!(sql_rows, dl_rows);
    }

    #[test]
    fn string_columns_join_through_the_dictionary() {
        let mut schema = DlSchema::new();
        schema
            .add(RelationDecl::new(
                "person",
                vec![Column::new("name", ValueType::Text), Column::new("city", ValueType::Text)],
                RelationKind::BaseTable,
            ))
            .unwrap();
        schema
            .add(RelationDecl::new(
                "lives",
                vec![Column::new("city", ValueType::Text), Column::new("country", ValueType::Text)],
                RelationKind::BaseTable,
            ))
            .unwrap();
        let mut p = DlirProgram::new(schema);
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["n", "c"]),
            vec![atom("person", &["n", "t"]), atom("lives", &["t", "c"])],
        ));
        p.add_output("q");
        let mut db = Database::new();
        db.insert_fact("person", vec![Value::str("Ada"), Value::str("Edinburgh")]).unwrap();
        db.insert_fact("person", vec![Value::str("Bob"), Value::str("Glasgow")]).unwrap();
        db.insert_fact("lives", vec![Value::str("Edinburgh"), Value::str("Scotland")]).unwrap();
        let rows = run(&p, "q", &db, SqlProfile::Duck);
        assert_eq!(rows.sorted(), vec![vec![Value::str("Ada"), Value::str("Scotland")]]);
        assert_eq!(run(&p, "q", &db, SqlProfile::Hyper), rows);
    }

    #[test]
    fn greedy_join_order_prefers_the_delta_then_connected_tables() {
        let items: Vec<FromItem> = [("work", "t0"), ("big", "t1"), ("small", "t2")]
            .iter()
            .map(|(t, a)| FromItem { table: t.to_string(), alias: a.to_string() })
            .collect();
        let work = Relation::from_tuples(1, vec![vec![Value::Int(1)]]).unwrap();
        let big =
            Relation::from_tuples(1, (0..100).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>())
                .unwrap();
        let small =
            Relation::from_tuples(1, vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
        let tables: Vec<(&FromItem, &Relation)> =
            vec![(&items[0], &work), (&items[1], &big), (&items[2], &small)];
        let col = |t: &str, c: &str| SqlExpr::Column { table: t.into(), column: c.into() };
        // work joins small; small joins big. FROM order would join work×big
        // first (a cross product).
        let predicates = vec![
            SqlExpr::Cmp {
                op: SqlCmpOp::Eq,
                lhs: Box::new(col("t0", "x")),
                rhs: Box::new(col("t2", "x")),
            },
            SqlExpr::Cmp {
                op: SqlCmpOp::Eq,
                lhs: Box::new(col("t2", "x")),
                rhs: Box::new(col("t1", "x")),
            },
        ];
        // The recursive working table drives; then the connected small table;
        // the big table comes last even though FROM lists it second.
        assert_eq!(greedy_join_order(&tables, &predicates, Some("work")), vec![0, 2, 1]);
        // Without a recursive binding the first pick is the smallest table
        // (no connections yet), then greedily the connected ones.
        assert_eq!(greedy_join_order(&tables, &predicates, None), vec![0, 2, 1]);
    }

    #[test]
    fn missing_table_is_reported() {
        let mut p = edge_program();
        p.schema
            .add(RelationDecl::new(
                "mystery",
                vec![Column::new("x", ValueType::Int)],
                RelationKind::BaseTable,
            ))
            .unwrap();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("mystery", &["x"])]));
        p.add_output("q");
        let sqir = lower_to_sqir(&p, "q", &SqlLowerOptions::default()).unwrap();
        let catalog = TableCatalog::from_schema(&p.schema);
        // The schema declares `mystery`, but the database never loaded it.
        let err = SqlEngine::duck().execute(&sqir, &Database::new(), &catalog).unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn stats_count_ctes_and_iterations() {
        let mut p = edge_program();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let sqir = lower_to_sqir(&p, "tc", &SqlLowerOptions::default()).unwrap();
        let catalog = TableCatalog::from_schema(&p.schema);
        let result = SqlEngine::duck().execute(&sqir, &chain_db(5), &catalog).unwrap();
        assert_eq!(result.stats.ctes_materialised, 1);
        assert!(result.stats.recursive_iterations >= 4);
        assert_eq!(result.columns, vec!["x", "y"]);
    }
}
