//! # raqlet-engine
//!
//! Execution substrates for Raqlet. The paper evaluates its generated queries
//! on Neo4j (Cypher), Soufflé (Datalog), DuckDB and Tableau HyPer (SQL);
//! this crate provides laptop-scale in-memory simulators of those backends so
//! the whole evaluation can run hermetically (the substitutions are listed in
//! DESIGN.md §3):
//!
//! * [`datalog`] — a stratified naive/semi-naive Datalog engine with lattice
//!   (shortest-path) support and parallel delta-partitioned rule evaluation —
//!   the Soufflé stand-in and Raqlet's golden reference implementation;
//! * [`prepared`] — warm execution: a [`PreparedDatabase`] keeps the EDB row
//!   arenas and persistent indexes alive across runs, eliminating the
//!   per-call clone+reindex tax;
//! * [`ivm`] — incremental view maintenance: standing queries installed on a
//!   [`PreparedDatabase`] absorb batches of extensional inserts and deletes
//!   ([`EdbDelta`]) without recomputation, via per-SCC counting / DRed /
//!   scoped-lattice strategies;
//! * [`sql`] — a SQIR interpreter (CTE chains, recursive CTEs, hash or
//!   nested-loop joins, aggregation, NOT EXISTS) with DuckDB-like and
//!   HyPer-like profiles;
//! * [`graph`] — a property-graph store plus a clause-by-clause PGIR
//!   interpreter — the Neo4j stand-in executing the original Cypher query.
//!
//! Every engine entry point has a `*_guarded` variant taking a
//! [`raqlet_common::QueryGuard`] — a wall-clock deadline, derived-tuple and
//! heap budgets, and a cooperative cancellation token, checked at fixpoint
//! rounds, SCC boundaries, parallel chunks and traversal steps. The `fault`
//! module (compiled for tests and the `fault-inject` feature only) sweeps
//! deterministic fault schedules across those checkpoints to prove failure
//! atomicity.

#![deny(missing_docs)]
// Robustness: the engine's non-test code must not unwrap/expect its way into
// a panic on a reachable path — every justified exception carries an
// `#[allow]` with its invariant spelled out. Tests keep the ergonomic forms.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod datalog;
#[cfg(any(test, feature = "fault-inject"))]
pub mod fault;
pub mod graph;
pub mod ivm;
pub mod prepared;
pub mod sql;

pub use datalog::{DatalogConfig, DatalogEngine, EvalResult, EvalStats, EvalStrategy};
pub use graph::{GraphEngine, GraphResult, GraphStats, PropertyGraph};
pub use ivm::EdbDelta;
pub use prepared::PreparedDatabase;
pub use sql::{SqlEngine, SqlProfile, SqlResult, SqlStats, TableCatalog};
