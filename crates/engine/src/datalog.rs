//! Bottom-up Datalog engine: the stand-in for Soufflé in the paper's
//! evaluation.
//!
//! The engine evaluates a stratified [`DlirProgram`] against an extensional
//! [`Database`]:
//!
//! * strata are computed with [`raqlet_dlir::stratify`] and evaluated bottom
//!   up;
//! * inside a stratum, rules are iterated to a fixpoint using either naive or
//!   **semi-naive** evaluation (the default; naive is kept for the ablation
//!   benchmarks);
//! * joins are index-driven: bound columns of an atom probe a hash index on
//!   the stored relation;
//! * negation reads fully-computed lower strata; aggregation groups the
//!   deduplicated bindings of its group-by and input variables;
//! * relations annotated with a `@min` lattice keep only the minimal value of
//!   the annotated column per group, which makes shortest-path recursion
//!   terminate on cyclic data.

use std::collections::HashMap;

use raqlet_common::{Database, RaqletError, Relation, Result, Tuple, Value};
use raqlet_dlir::{
    stratify, Aggregation, Atom, BodyElem, DepGraph, DlExpr, DlirProgram, LatticeMerge, Rule, Term,
};

/// Fixpoint evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-derive everything each iteration (kept for comparison benchmarks).
    Naive,
    /// Only join against the tuples derived in the previous iteration.
    #[default]
    SemiNaive,
}

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of strata evaluated.
    pub strata: usize,
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Total number of rule applications (rule × iteration).
    pub rule_applications: usize,
    /// Total tuples derived (including duplicates discarded by set
    /// semantics).
    pub tuples_derived: usize,
}

/// The result of evaluating a program.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The database containing the EDBs plus every derived IDB.
    pub database: Database,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The relation derived for `name` (empty if nothing was derived).
    pub fn relation(&self, name: &str) -> Relation {
        self.database.get(name).cloned().unwrap_or_else(|| Relation::new(0))
    }
}

/// The Datalog engine.
#[derive(Debug, Clone, Default)]
pub struct DatalogEngine {
    /// Evaluation strategy.
    pub strategy: EvalStrategy,
}

impl DatalogEngine {
    /// An engine using semi-naive evaluation.
    pub fn new() -> Self {
        DatalogEngine { strategy: EvalStrategy::SemiNaive }
    }

    /// An engine using naive evaluation (for ablation benchmarks).
    pub fn naive() -> Self {
        DatalogEngine { strategy: EvalStrategy::Naive }
    }

    /// Evaluate `program` over the extensional database `edb`.
    pub fn evaluate(&self, program: &DlirProgram, edb: &Database) -> Result<EvalResult> {
        raqlet_dlir::validate(program)?;
        let stratification = stratify(program)?;
        let graph = DepGraph::build(program);

        let mut db = edb.clone();
        let mut stats = EvalStats { strata: stratification.len(), ..Default::default() };

        // Ensure every IDB exists (possibly empty) so downstream negation and
        // outputs behave deterministically.
        for idb in program.idb_names() {
            let arity = program.rules_for(&idb).first().map(|r| r.head.arity()).unwrap_or(0);
            db.get_or_create(&idb, arity);
        }

        for stratum in &stratification.strata {
            let rules: Vec<&Rule> =
                program.rules.iter().filter(|r| stratum.contains(&r.head.relation)).collect();
            if rules.is_empty() {
                continue;
            }
            self.evaluate_stratum(program, &graph, &rules, &mut db, &mut stats)?;
        }
        Ok(EvalResult { database: db, stats })
    }

    /// Evaluate the output relation of a program directly.
    pub fn run_output(
        &self,
        program: &DlirProgram,
        edb: &Database,
        output: &str,
    ) -> Result<Relation> {
        Ok(self.evaluate(program, edb)?.relation(output))
    }

    fn evaluate_stratum(
        &self,
        program: &DlirProgram,
        graph: &DepGraph,
        rules: &[&Rule],
        db: &mut Database,
        stats: &mut EvalStats,
    ) -> Result<()> {
        // Relations derived in this stratum (the ones whose deltas matter).
        let mut stratum_relations: Vec<String> = Vec::new();
        for rule in rules {
            if !stratum_relations.contains(&rule.head.relation) {
                stratum_relations.push(rule.head.relation.clone());
            }
        }

        // Aggregating rules are never recursive, and stratification places
        // everything they read in a strictly lower stratum — so they are
        // evaluated once, *before* the fixpoint rules of this stratum (which
        // may consume their output).
        let (agg_rules, fix_rules): (Vec<&&Rule>, Vec<&&Rule>) =
            rules.iter().partition(|r| r.aggregation.is_some());
        for rule in &agg_rules {
            stats.rule_applications += 1;
            let derived = self.apply_rule(program, rule, db, None)?;
            stats.tuples_derived += derived.len();
            let mut unused = HashMap::new();
            merge_derived(program, db, &mut unused, &rule.head.relation, derived)?;
        }

        // Initial round: evaluate every rule against the full database.
        let mut deltas: HashMap<String, Relation> = HashMap::new();
        for name in &stratum_relations {
            let arity = db.get(name).map(|r| r.arity()).unwrap_or(0);
            deltas.insert(name.clone(), Relation::new(arity));
        }
        for rule in &fix_rules {
            stats.rule_applications += 1;
            let derived = self.apply_rule(program, rule, db, None)?;
            stats.tuples_derived += derived.len();
            merge_derived(program, db, &mut deltas, &rule.head.relation, derived)?;
        }
        stats.iterations += 1;

        // Fixpoint iterations.
        let recursive = fix_rules.iter().any(|r| {
            r.positive_dependencies().iter().any(|d| stratum_relations.contains(&d.to_string()))
        }) || stratum_relations.iter().any(|r| graph.is_recursive(r));
        if recursive {
            loop {
                let mut new_deltas: HashMap<String, Relation> = HashMap::new();
                for name in &stratum_relations {
                    let arity = db.get(name).map(|r| r.arity()).unwrap_or(0);
                    new_deltas.insert(name.clone(), Relation::new(arity));
                }
                let mut any_new = false;
                for rule in &fix_rules {
                    // Which body atoms reference relations of this stratum?
                    let recursive_positions: Vec<usize> = rule
                        .body
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| match b.as_positive_atom() {
                            Some(a) if stratum_relations.contains(&a.relation) => Some(i),
                            _ => None,
                        })
                        .collect();
                    if recursive_positions.is_empty() {
                        continue;
                    }
                    match self.strategy {
                        EvalStrategy::Naive => {
                            stats.rule_applications += 1;
                            let derived = self.apply_rule(program, rule, db, None)?;
                            stats.tuples_derived += derived.len();
                            any_new |= merge_derived(
                                program,
                                db,
                                &mut new_deltas,
                                &rule.head.relation,
                                derived,
                            )?;
                        }
                        EvalStrategy::SemiNaive => {
                            // One evaluation per recursive atom occurrence,
                            // reading the delta for that occurrence.
                            for &pos in &recursive_positions {
                                stats.rule_applications += 1;
                                let derived =
                                    self.apply_rule(program, rule, db, Some((pos, &deltas)))?;
                                stats.tuples_derived += derived.len();
                                any_new |= merge_derived(
                                    program,
                                    db,
                                    &mut new_deltas,
                                    &rule.head.relation,
                                    derived,
                                )?;
                            }
                        }
                    }
                }
                stats.iterations += 1;
                deltas = new_deltas;
                if !any_new {
                    break;
                }
            }
        }

        Ok(())
    }

    /// Evaluate one rule, returning the derived head tuples. When
    /// `delta_for` is given, the positive atom at that body position reads
    /// from the supplied delta relations instead of the full database.
    fn apply_rule(
        &self,
        program: &DlirProgram,
        rule: &Rule,
        db: &Database,
        delta_for: Option<(usize, &HashMap<String, Relation>)>,
    ) -> Result<Vec<Tuple>> {
        let bindings = self.join_body(rule, db, delta_for)?;
        match &rule.aggregation {
            None => {
                let mut out = Vec::with_capacity(bindings.len());
                for env in &bindings {
                    out.push(instantiate_head(&rule.head, env)?);
                }
                Ok(out)
            }
            Some(agg) => Ok(aggregate(program, rule, agg, &bindings)?),
        }
    }

    /// Join the positive atoms, apply constraints and negation, and return
    /// the variable bindings satisfying the body.
    fn join_body(
        &self,
        rule: &Rule,
        db: &Database,
        delta_for: Option<(usize, &HashMap<String, Relation>)>,
    ) -> Result<Vec<Env>> {
        let mut envs: Vec<Env> = vec![Env::new()];

        // Positive atoms first (in body order), then constraints interleaved
        // greedily once their variables are bound, then negations last.
        let mut pending_constraints: Vec<&BodyElem> = Vec::new();
        for (idx, elem) in rule.body.iter().enumerate() {
            match elem {
                BodyElem::Atom(atom) => {
                    let use_delta = matches!(delta_for, Some((pos, _)) if pos == idx);
                    let empty = Relation::new(atom.arity());
                    let relation: &Relation = if use_delta {
                        let (_, deltas) = delta_for.unwrap();
                        deltas.get(&atom.relation).unwrap_or(&empty)
                    } else {
                        db.get(&atom.relation).unwrap_or(&empty)
                    };
                    envs = extend_with_atom(envs, atom, relation)?;
                    // Apply any pending constraints that are now evaluable to
                    // prune early.
                    pending_constraints.retain(|c| {
                        if let BodyElem::Constraint { op, lhs, rhs } = c {
                            if envs.iter().all(|e| constraint_ready(e, lhs, rhs)) {
                                envs.retain(|e| eval_constraint(e, *op, lhs, rhs).unwrap_or(false));
                                return false;
                            }
                        }
                        true
                    });
                }
                BodyElem::Constraint { op, lhs, rhs } => {
                    // Equality with an unbound side acts as an assignment.
                    let mut next = Vec::with_capacity(envs.len());
                    let mut all_handled = true;
                    for env in &envs {
                        match apply_constraint(env, *op, lhs, rhs)? {
                            ConstraintOutcome::Keep(new_env) => next.push(new_env),
                            ConstraintOutcome::Drop => {}
                            ConstraintOutcome::NotReady => {
                                all_handled = false;
                                break;
                            }
                        }
                    }
                    if all_handled {
                        envs = next;
                    } else {
                        pending_constraints.push(elem);
                    }
                }
                BodyElem::Negated(_) => {
                    // Handled after all positive atoms below.
                }
            }
            if envs.is_empty() {
                return Ok(Vec::new());
            }
        }

        // Remaining constraints must now be evaluable.
        for elem in pending_constraints {
            let BodyElem::Constraint { op, lhs, rhs } = elem else { continue };
            let mut next = Vec::with_capacity(envs.len());
            for env in &envs {
                match apply_constraint(env, *op, lhs, rhs)? {
                    ConstraintOutcome::Keep(e) => next.push(e),
                    ConstraintOutcome::Drop => {}
                    ConstraintOutcome::NotReady => {
                        return Err(RaqletError::execution(format!(
                            "constraint `{elem}` in rule `{rule}` references unbound variables"
                        )))
                    }
                }
            }
            envs = next;
        }

        // Negation.
        for elem in &rule.body {
            let BodyElem::Negated(atom) = elem else { continue };
            let relation =
                db.get(&atom.relation).cloned().unwrap_or_else(|| Relation::new(atom.arity()));
            envs.retain(|env| !matches_negated(env, atom, &relation));
        }
        Ok(envs)
    }
}

/// A variable environment.
type Env = HashMap<String, Value>;

/// Extend each environment with every tuple of `relation` that matches
/// `atom` under the environment.
fn extend_with_atom(envs: Vec<Env>, atom: &Atom, relation: &Relation) -> Result<Vec<Env>> {
    if relation.arity() != atom.arity() && !relation.is_empty() {
        return Err(RaqletError::execution(format!(
            "atom `{atom}` has arity {} but relation `{}` has arity {}",
            atom.arity(),
            atom.relation,
            relation.arity()
        )));
    }
    // Columns whose value is known in every environment (all environments
    // processed so far bind the same variable set), plus constant columns.
    let bound_columns: Vec<usize> = match envs.first() {
        Some(first) => atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Var(v) => first.contains_key(v),
                Term::Const(_) => true,
                Term::Wildcard => false,
            })
            .map(|(i, _)| i)
            .collect(),
        None => Vec::new(),
    };

    // Build a transient hash index over the bound columns so each
    // environment probes instead of scanning the whole relation.
    let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    if !bound_columns.is_empty() {
        for tuple in relation.iter() {
            let key: Vec<Value> = bound_columns.iter().map(|&i| tuple[i].clone()).collect();
            index.entry(key).or_default().push(tuple);
        }
    }
    let all_tuples: Vec<&Tuple> =
        if bound_columns.is_empty() { relation.iter().collect() } else { Vec::new() };

    let mut out = Vec::new();
    for env in envs {
        let candidates: &[&Tuple] = if bound_columns.is_empty() {
            &all_tuples
        } else {
            let key: Vec<Value> = bound_columns
                .iter()
                .map(|&i| match &atom.terms[i] {
                    Term::Var(v) => env.get(v).cloned().unwrap_or(Value::Null),
                    Term::Const(c) => c.clone(),
                    Term::Wildcard => Value::Null,
                })
                .collect();
            index.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
        };
        'tuples: for tuple in candidates {
            let mut new_env = env.clone();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Wildcard => {}
                    Term::Const(c) => {
                        if &tuple[i] != c {
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match new_env.get(v) {
                        Some(existing) => {
                            if existing != &tuple[i] {
                                continue 'tuples;
                            }
                        }
                        None => {
                            new_env.insert(v.clone(), tuple[i].clone());
                        }
                    },
                }
            }
            out.push(new_env);
        }
    }
    Ok(out)
}

enum ConstraintOutcome {
    Keep(Env),
    Drop,
    NotReady,
}

fn constraint_ready(env: &Env, lhs: &DlExpr, rhs: &DlExpr) -> bool {
    eval_expr(env, lhs).is_some() && eval_expr(env, rhs).is_some()
}

fn apply_constraint(
    env: &Env,
    op: raqlet_dlir::CmpOp,
    lhs: &DlExpr,
    rhs: &DlExpr,
) -> Result<ConstraintOutcome> {
    let lv = eval_expr(env, lhs);
    let rv = eval_expr(env, rhs);
    match (lv, rv) {
        (Some(a), Some(b)) => {
            if op.eval(&a, &b) {
                Ok(ConstraintOutcome::Keep(env.clone()))
            } else {
                Ok(ConstraintOutcome::Drop)
            }
        }
        // Assignment forms: `x = <expr>` with exactly one side unbound.
        (None, Some(v)) if op == raqlet_dlir::CmpOp::Eq => {
            if let DlExpr::Var(name) = lhs {
                let mut e = env.clone();
                e.insert(name.clone(), v);
                Ok(ConstraintOutcome::Keep(e))
            } else {
                Ok(ConstraintOutcome::NotReady)
            }
        }
        (Some(v), None) if op == raqlet_dlir::CmpOp::Eq => {
            if let DlExpr::Var(name) = rhs {
                let mut e = env.clone();
                e.insert(name.clone(), v);
                Ok(ConstraintOutcome::Keep(e))
            } else {
                Ok(ConstraintOutcome::NotReady)
            }
        }
        _ => Ok(ConstraintOutcome::NotReady),
    }
}

fn eval_constraint(env: &Env, op: raqlet_dlir::CmpOp, lhs: &DlExpr, rhs: &DlExpr) -> Option<bool> {
    Some(op.eval(&eval_expr(env, lhs)?, &eval_expr(env, rhs)?))
}

fn eval_expr(env: &Env, expr: &DlExpr) -> Option<Value> {
    match expr {
        DlExpr::Var(v) => env.get(v).cloned(),
        DlExpr::Const(c) => Some(c.clone()),
        DlExpr::Arith { op, lhs, rhs } => op.eval(&eval_expr(env, lhs)?, &eval_expr(env, rhs)?),
    }
}

fn matches_negated(env: &Env, atom: &Atom, relation: &Relation) -> bool {
    relation.iter().any(|tuple| {
        atom.terms.iter().enumerate().all(|(i, term)| match term {
            Term::Wildcard => true,
            Term::Const(c) => &tuple[i] == c,
            Term::Var(v) => env.get(v).map(|val| val == &tuple[i]).unwrap_or(false),
        })
    })
}

fn instantiate_head(head: &Atom, env: &Env) -> Result<Tuple> {
    head.terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => env.get(v).cloned().ok_or_else(|| {
                RaqletError::execution(format!("head variable `{v}` is unbound at instantiation"))
            }),
            Term::Const(c) => Ok(c.clone()),
            Term::Wildcard => Err(RaqletError::execution("wildcard in rule head")),
        })
        .collect()
}

/// Evaluate a rule-level aggregation over the body bindings.
fn aggregate(
    _program: &DlirProgram,
    rule: &Rule,
    agg: &Aggregation,
    bindings: &[Env],
) -> Result<Vec<Tuple>> {
    // Deduplicate the (group key, input value) projection: Datalog set
    // semantics, matching the SQL backend's `AGG(DISTINCT input)` encoding.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<Value>, Vec<Value>> = BTreeMap::new();
    let mut seen: std::collections::HashSet<(Vec<Value>, Option<Value>)> =
        std::collections::HashSet::new();
    for env in bindings {
        let key: Vec<Value> =
            agg.group_by.iter().map(|v| env.get(v).cloned().unwrap_or(Value::Null)).collect();
        let input =
            match &agg.input_var {
                Some(v) => Some(env.get(v).cloned().ok_or_else(|| {
                    RaqletError::execution(format!("aggregate input `{v}` unbound"))
                })?),
                None => None,
            };
        if !seen.insert((key.clone(), input.clone())) {
            continue;
        }
        let entry = groups.entry(key).or_default();
        if let Some(v) = input {
            entry.push(v);
        } else {
            entry.push(Value::Int(1));
        }
    }

    let mut out = Vec::new();
    for (key, values) in groups {
        let agg_value = match agg.func {
            raqlet_dlir::AggFunc::Count => Value::Int(values.len() as i64),
            raqlet_dlir::AggFunc::Sum => {
                Value::Int(values.iter().filter_map(|v| v.as_int()).sum::<i64>())
            }
            raqlet_dlir::AggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Avg => {
                let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
                if ints.is_empty() {
                    Value::Null
                } else {
                    Value::Int(ints.iter().sum::<i64>() / ints.len() as i64)
                }
            }
        };
        // Build the head tuple: group-by variables in head order plus the
        // aggregate output.
        let mut env: Env = HashMap::new();
        for (v, val) in agg.group_by.iter().zip(key.iter()) {
            env.insert(v.clone(), val.clone());
        }
        env.insert(agg.output_var.clone(), agg_value);
        out.push(instantiate_head(&rule.head, &env)?);
    }
    Ok(out)
}

/// Merge freshly derived tuples into the database (respecting lattice
/// annotations) and record genuinely new tuples in `deltas`. Returns true if
/// anything new was added.
fn merge_derived(
    program: &DlirProgram,
    db: &mut Database,
    deltas: &mut HashMap<String, Relation>,
    relation: &str,
    derived: Vec<Tuple>,
) -> Result<bool> {
    if derived.is_empty() {
        return Ok(false);
    }
    let arity = derived[0].len();
    let lattice = program.lattice_for(relation);
    let mut any_new = false;
    for tuple in derived {
        let added = match lattice {
            LatticeMerge::Set => db.get_or_create(relation, arity).insert(tuple.clone())?,
            LatticeMerge::MinOnColumn(col) => {
                lattice_insert(db.get_or_create(relation, arity), tuple.clone(), col, true)?
            }
            LatticeMerge::MaxOnColumn(col) => {
                lattice_insert(db.get_or_create(relation, arity), tuple.clone(), col, false)?
            }
        };
        if added {
            any_new = true;
            deltas
                .entry(relation.to_string())
                .or_insert_with(|| Relation::new(arity))
                .insert(tuple)?;
        }
    }
    Ok(any_new)
}

/// Insert under min/max-lattice semantics: the tuple is added only if its
/// annotated column improves on the stored value for the same group (all
/// other columns); a dominated stored tuple is replaced.
fn lattice_insert(
    relation: &mut Relation,
    tuple: Tuple,
    col: usize,
    minimize: bool,
) -> Result<bool> {
    let group: Vec<Value> =
        tuple.iter().enumerate().filter(|(i, _)| *i != col).map(|(_, v)| v.clone()).collect();
    let mut dominated: Option<Tuple> = None;
    for existing in relation.iter() {
        let existing_group: Vec<Value> = existing
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != col)
            .map(|(_, v)| v.clone())
            .collect();
        if existing_group != group {
            continue;
        }
        let better = if minimize { tuple[col] < existing[col] } else { tuple[col] > existing[col] };
        if better {
            dominated = Some(existing.clone());
            break;
        } else {
            // An equal-or-better tuple already exists.
            return Ok(false);
        }
    }
    if let Some(old) = dominated {
        let remaining: Vec<Tuple> = relation.iter().filter(|t| **t != old).cloned().collect();
        *relation = Relation::from_tuples(relation.arity(), remaining)?;
    }
    relation.insert(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::CmpOp;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn chain_edges(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_fact("edge", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        db
    }

    fn tc_program() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        p
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(5)).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 pairs in its closure.
        assert_eq!(result.relation("tc").len(), 15);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let db = chain_edges(8);
        let semi = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        let naive = DatalogEngine::naive().evaluate(&tc_program(), &db).unwrap();
        assert_eq!(semi.relation("tc"), naive.relation("tc"));
        // Semi-naive derives strictly fewer (or equal) tuples in total.
        assert!(semi.stats.tuples_derived <= naive.stats.tuples_derived);
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        // Every node reaches every node (including itself) in a 3-cycle.
        assert_eq!(result.relation("tc").len(), 9);
    }

    #[test]
    fn constants_and_constraints_filter_tuples() {
        // q(y) :- edge(x, y), x = 1.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::var("x"), rhs: DlExpr::int(1) },
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(5)).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn assignment_constraints_bind_new_variables() {
        // q(x, l) :- edge(x, y), l = y + 10.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "l"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("y")),
                        rhs: Box::new(DlExpr::int(10)),
                    },
                ),
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(2)).unwrap();
        assert!(result.relation("q").contains(&[Value::Int(0), Value::Int(11)]));
    }

    #[test]
    fn stratified_negation() {
        // unreachable(y) :- node(y), !tc(0, y).
        let mut p = tc_program();
        p.add_rule(Rule::new(Atom::with_vars("node", &["x"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(Atom::with_vars("node", &["y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("unreachable", &["y"]),
            vec![
                atom("node", &["y"]),
                BodyElem::Negated(Atom::new("tc", vec![Term::int(0), Term::var("y")])),
            ],
        ));
        p.add_output("unreachable");
        // Graph: 0 -> 1 -> 2 plus an isolated edge 10 -> 11.
        let mut db = chain_edges(2);
        db.insert_fact("edge", vec![Value::Int(10), Value::Int(11)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let unreachable = result.relation("unreachable").sorted();
        assert_eq!(
            unreachable,
            vec![vec![Value::Int(0)], vec![Value::Int(10)], vec![Value::Int(11)]]
        );
    }

    #[test]
    fn aggregation_counts_distinct_inputs() {
        // deg(x, d) :- edge(x, y) group by x with d = count(y).
        let mut p = DlirProgram::default();
        let mut rule =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        rule.aggregation = Some(Aggregation {
            func: raqlet_dlir::AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        p.add_rule(rule);
        p.add_output("deg");
        let mut db = Database::new();
        for (a, b) in [(1, 2), (1, 3), (1, 3), (2, 3)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let deg = result.relation("deg").sorted();
        assert_eq!(
            deg,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)]]
        );
    }

    #[test]
    fn min_and_max_and_sum_aggregates() {
        let mut db = Database::new();
        for (a, b) in [(1, 5), (1, 9), (2, 4)] {
            db.insert_fact("m", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        for (func, expected_for_1) in [
            (raqlet_dlir::AggFunc::Min, 5),
            (raqlet_dlir::AggFunc::Max, 9),
            (raqlet_dlir::AggFunc::Sum, 14),
            (raqlet_dlir::AggFunc::Avg, 7),
        ] {
            let mut p = DlirProgram::default();
            let mut rule =
                Rule::new(Atom::with_vars("out", &["x", "v"]), vec![atom("m", &["x", "y"])]);
            rule.aggregation = Some(Aggregation {
                func,
                input_var: Some("y".into()),
                output_var: "v".into(),
                group_by: vec!["x".into()],
                distinct: false,
            });
            p.add_rule(rule);
            p.add_output("out");
            let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
            assert!(
                result.relation("out").contains(&[Value::Int(1), Value::Int(expected_for_1)]),
                "{func:?}"
            );
        }
    }

    #[test]
    fn lattice_min_recursion_terminates_on_cycles_and_finds_shortest_paths() {
        // dist(s, d, l): shortest hop count, on a cyclic graph.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![atom("edge", &["s", "d"]), BodyElem::eq(DlExpr::var("l"), DlExpr::int(1))],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![
                atom("dist", &["s", "m", "l0"]),
                atom("edge", &["m", "d"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("l0")),
                        rhs: Box::new(DlExpr::int(1)),
                    },
                ),
            ],
        ));
        p.set_lattice("dist", LatticeMerge::MinOnColumn(2));
        p.add_output("dist");

        // A 4-cycle: 0 -> 1 -> 2 -> 3 -> 0.
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let dist = result.relation("dist");
        // Shortest distance 0 -> 3 is 3 hops, 0 -> 0 is 4 hops (a full cycle).
        assert!(dist.contains(&[Value::Int(0), Value::Int(3), Value::Int(3)]));
        assert!(dist.contains(&[Value::Int(0), Value::Int(0), Value::Int(4)]));
        // Only one distance per pair survives.
        assert_eq!(dist.len(), 16);
    }

    #[test]
    fn mutual_recursion_even_odd() {
        // even(x) :- zero(x). even(x) :- odd(y), succ(y, x). odd(x) :- even(y), succ(y, x).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("even", &["x"]), vec![atom("zero", &["x"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("even", &["x"]),
            vec![atom("odd", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("odd", &["x"]),
            vec![atom("even", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_output("even");
        let mut db = Database::new();
        db.insert_fact("zero", vec![Value::Int(0)]).unwrap();
        for i in 0..10 {
            db.insert_fact("succ", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let even = result.relation("even");
        assert!(even.contains(&[Value::Int(0)]));
        assert!(even.contains(&[Value::Int(10)]));
        assert!(!even.contains(&[Value::Int(7)]));
        assert_eq!(even.len(), 6);
    }

    #[test]
    fn empty_edb_yields_empty_idbs_not_errors() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &Database::new()).unwrap();
        assert!(result.relation("tc").is_empty());
    }

    #[test]
    fn fact_rules_seed_relations() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::new("seed", vec![Term::int(7)]), vec![]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![atom("seed", &["x"]), atom("edge", &["x", "y"])],
        ));
        p.add_output("q");
        let mut db = chain_edges(9);
        db.insert_fact("seed_unused", vec![Value::Int(0)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn stats_are_populated() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(6)).unwrap();
        assert!(result.stats.iterations >= 2);
        assert!(result.stats.rule_applications > 0);
        assert!(result.stats.tuples_derived >= result.relation("tc").len());
        assert!(result.stats.strata >= 1);
    }

    #[test]
    fn unsafe_programs_are_rejected_before_execution() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x", "w"]), vec![atom("edge", &["x", "y"])]));
        p.add_output("q");
        assert!(DatalogEngine::new().evaluate(&p, &chain_edges(2)).is_err());
    }
}
