//! Bottom-up Datalog engine: the stand-in for Soufflé in the paper's
//! evaluation.
//!
//! The engine evaluates a stratified [`DlirProgram`] against an extensional
//! [`Database`]:
//!
//! * strata are computed with [`raqlet_dlir::stratify()`] and evaluated bottom
//!   up;
//! * inside a stratum, the rule dependency graph is **condensed into strongly
//!   connected components** ([`DepGraph::condense`]) and evaluated one SCC at
//!   a time in dependency order. Non-looping components (no self- or mutual
//!   recursion) evaluate in exactly **one round** with no delta machinery at
//!   all; looping components run a fixpoint using either naive or
//!   **semi-naive** evaluation (the default; naive is kept for the ablation
//!   benchmarks), with the frontier and working set restricted to the
//!   component's own relations;
//! * programs are *precompiled* into a `ProgramPlan`: validation,
//!   stratification and per-rule slot resolution happen once, constants are
//!   dictionary-encoded to packed [`Cell`]s, and every variable gets a fixed
//!   slot — a join environment is a flat `Vec<u64>` of packed cells (with an
//!   unbound sentinel) instead of a string-keyed map of boxed values.
//!   [`crate::PreparedDatabase`] memoizes plans per program fingerprint so
//!   warm executions recompile nothing;
//! * joins are index-driven and **delta-indexed**: each round scans only the
//!   delta of one recursive atom and probes *persistent* hash indexes on the
//!   stable (full) sets of the other atoms. Index keys and probes are packed
//!   cells — `u64` word compares, no string hashing, no refcount traffic.
//!   The exact column sets each relation needs are computed **at compile
//!   time**: every join schedule is planned statically when the `ProgramPlan`
//!   is built, its probe columns are collected into the plan's
//!   `required_indexes` declaration, and evaluation materializes precisely
//!   those (via [`raqlet_common::Relation::require_indexes`]) before the
//!   first rule fires. Indexes are extended in place as tuples are published
//!   (see [`raqlet_common::Relation`]), so no index is ever built — let alone
//!   rebuilt — during fixpoint iteration;
//! * derivations are *staged* inside the head relation and published at the
//!   end of each round ([`raqlet_common::Relation::advance`]), which makes
//!   the published tuples of a round exactly the next round's delta;
//! * negation reads fully-computed lower strata (also through persistent
//!   indexes when its variables are bound); aggregation groups the
//!   deduplicated bindings of its group-by and input variables, decoding to
//!   [`Value`]s only at the aggregation boundary;
//! * relations annotated with a `@min` lattice keep only the minimal value of
//!   the annotated column per group, which makes shortest-path recursion
//!   terminate on cyclic data;
//! * rule applications are **parallel**: the join order and every index it
//!   will probe are prepared up front on the calling thread, after which the
//!   join needs only `&Database` — so the driving scan (the delta of a
//!   recursive atom, or in round zero the full arena of the first
//!   unconstrained atom) is partitioned into packed-row chunks evaluated
//!   concurrently with [`std::thread::scope`]. Per-worker cell buffers are
//!   merged in chunk order and deduplicated through the head relation's
//!   staged set, making results identical to sequential evaluation
//!   regardless of thread count or partition boundaries (see
//!   [`DatalogConfig`]).

use std::collections::HashMap;

use raqlet_common::cell::{is_tombstone, Cell, ValueDict, NULL_CELL, UNBOUND_CELL};
use raqlet_common::error::panic_message;
use raqlet_common::guard::{CheckPoint, QueryGuard, JOIN_SCAN_PERIOD};
use raqlet_common::{Database, RaqletError, Relation, Result, Value};
use raqlet_dlir::{
    stratify, Aggregation, Atom, BodyElem, DepGraph, DlExpr, DlirProgram, LatticeMerge, Rule, Term,
};

/// Fixpoint evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-derive everything each iteration (kept for comparison benchmarks).
    Naive,
    /// Only join against the tuples derived in the previous iteration.
    #[default]
    SemiNaive,
}

/// Configuration for the Datalog engine: the evaluation strategy plus the
/// parallelism knobs of the delta-partitioned semi-naive evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogConfig {
    /// Fixpoint evaluation strategy.
    pub strategy: EvalStrategy,
    /// Worker-thread count for partitioned rule evaluation. `0` (the
    /// default) resolves at evaluation time to the `RAQLET_THREADS`
    /// environment variable if it holds a positive integer (CI pins this so
    /// timing is reproducible; results are identical at any count), else to
    /// [`std::thread::available_parallelism`]. `1` disables parallelism.
    pub threads: usize,
    /// Minimum number of driving-scan rows before one rule application is
    /// split across worker threads; below this, spawn overhead dominates and
    /// the rule is evaluated on the calling thread.
    pub parallel_threshold: usize,
}

impl Default for DatalogConfig {
    fn default() -> Self {
        DatalogConfig { strategy: EvalStrategy::SemiNaive, threads: 0, parallel_threshold: 256 }
    }
}

impl DatalogConfig {
    /// This configuration with an explicit worker count (`0` = auto, `1` =
    /// sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with the given parallel-split threshold.
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.parallel_threshold = rows;
        self
    }

    /// Resolve the effective worker count (see [`DatalogConfig::threads`]).
    ///
    /// The auto-detected value is computed once per process and cached:
    /// `available_parallelism` re-reads cgroup quota files on every call
    /// (~10µs — measurable against sub-50µs queries), and the `RAQLET_THREADS`
    /// override is set before the process starts anyway.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *AUTO.get_or_init(|| {
            if let Ok(v) = std::env::var("RAQLET_THREADS") {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

// `EvalStats` moved to `raqlet_common` so guard-trip errors can carry partial
// counters; re-exported here so existing `raqlet_engine::EvalStats` (and
// `datalog::EvalStats`) references keep working.
pub use raqlet_common::stats::EvalStats;

/// Check the heap budget at a round/SCC boundary. `Database::heap_bytes`
/// walks every relation (and the dictionary), so the measurement is only
/// taken when a memory budget is actually armed.
fn check_db_memory(guard: &QueryGuard, db: &Database) -> Result<()> {
    if guard.memory_budget().is_some() {
        guard.check_memory(db.heap_bytes())?;
    }
    Ok(())
}

/// The result of evaluating a program.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The database containing every derived IDB plus the extensional
    /// relations the program referenced (unreferenced EDB relations are not
    /// copied into the result).
    pub database: Database,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The relation derived for `name` (empty if nothing was derived).
    pub fn relation(&self, name: &str) -> Relation {
        self.database.get(name).cloned().unwrap_or_else(|| Relation::new(0))
    }
}

/// The Datalog engine.
///
/// ```
/// use raqlet_common::{Database, Value};
/// use raqlet_dlir::{Atom, BodyElem, DlirProgram, Rule};
/// use raqlet_engine::DatalogEngine;
///
/// // tc(x, y) :- edge(x, y).   tc(x, y) :- tc(x, z), edge(z, y).
/// let mut program = DlirProgram::default();
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![BodyElem::Atom(Atom::with_vars("edge", &["x", "y"]))],
/// ));
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![
///         BodyElem::Atom(Atom::with_vars("tc", &["x", "z"])),
///         BodyElem::Atom(Atom::with_vars("edge", &["z", "y"])),
///     ],
/// ));
/// program.add_output("tc");
///
/// let mut db = Database::new();
/// for (a, b) in [(1, 2), (2, 3)] {
///     db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
/// }
/// let tc = DatalogEngine::new().run_output(&program, &db, "tc").unwrap();
/// assert_eq!(tc.len(), 3); // (1,2), (2,3), (1,3)
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatalogEngine {
    /// Engine configuration: strategy plus parallelism knobs.
    pub config: DatalogConfig,
}

impl DatalogEngine {
    /// An engine using semi-naive evaluation (auto-detected thread count).
    pub fn new() -> Self {
        DatalogEngine { config: DatalogConfig::default() }
    }

    /// An engine using naive evaluation (for ablation benchmarks).
    pub fn naive() -> Self {
        DatalogEngine {
            config: DatalogConfig { strategy: EvalStrategy::Naive, ..Default::default() },
        }
    }

    /// An engine with the given configuration.
    pub fn with_config(config: DatalogConfig) -> Self {
        DatalogEngine { config }
    }

    /// A semi-naive engine with an explicit worker count (`1` = sequential).
    pub fn with_threads(threads: usize) -> Self {
        DatalogEngine { config: DatalogConfig::default().with_threads(threads) }
    }

    /// The evaluation strategy in use.
    pub fn strategy(&self) -> EvalStrategy {
        self.config.strategy
    }

    /// Evaluate `program` over the extensional database `edb`.
    pub fn evaluate(&self, program: &DlirProgram, edb: &Database) -> Result<EvalResult> {
        self.evaluate_guarded(program, edb, &QueryGuard::new())
    }

    /// Evaluate `program` over `edb` under an execution guard: the deadline,
    /// budgets and cancellation token of `guard` are checked at fixpoint
    /// rounds, SCC boundaries, parallel chunk starts and periodically inside
    /// join scans. A tripped guard returns [`RaqletError::Timeout`],
    /// [`RaqletError::BudgetExceeded`] or [`RaqletError::Cancelled`] carrying
    /// the partial [`EvalStats`] accumulated so far; `edb` is never modified
    /// either way.
    pub fn evaluate_guarded(
        &self,
        program: &DlirProgram,
        edb: &Database,
        guard: &QueryGuard,
    ) -> Result<EvalResult> {
        // Working database: only the extensional relations the program
        // actually references (in rule bodies or as outputs) are copied in.
        // It shares the extensional database's value dictionary, so the
        // cloned packed arenas are reused verbatim (no re-encoding). Indexes
        // built on them during evaluation live in this working set; the
        // caller's *relations* are never touched. The shared dictionary is
        // the one deliberate exception: program constants (and overflow
        // arithmetic results) are interned into it — append-only metadata
        // that leaves every stored relation and id valid, and that repeat
        // evaluations of the same program never grow again.
        let mut referenced: Vec<&str> = Vec::new();
        for rule in &program.rules {
            for elem in &rule.body {
                let name = match elem {
                    BodyElem::Atom(a) | BodyElem::Negated(a) => a.relation.as_str(),
                    BodyElem::Constraint { .. } => continue,
                };
                if !referenced.contains(&name) {
                    referenced.push(name);
                }
            }
        }
        for out in &program.outputs {
            if !referenced.contains(&out.as_str()) {
                referenced.push(out);
            }
        }
        let mut db = Database::with_dict(edb.dict().clone());
        for name in referenced {
            if let Some(rel) = edb.get(name) {
                db.set(name, rel.clone());
            }
        }

        let stats = self.evaluate_in_place(program, &mut db, guard)?;
        Ok(EvalResult { database: db, stats })
    }

    /// Evaluate `program` directly against `db`, deriving IDB relations in
    /// place. The caller owns the working set: extensional relations are
    /// *not* copied, and the persistent indexes built during evaluation stay
    /// in `db` afterwards — [`crate::PreparedDatabase`] relies on this to
    /// keep a warm working set across executions.
    pub(crate) fn evaluate_in_place(
        &self,
        program: &DlirProgram,
        db: &mut Database,
        guard: &QueryGuard,
    ) -> Result<EvalStats> {
        let plan = ProgramPlan::prepare(program, db.dict())?;
        self.evaluate_plan(&plan, db, guard)
    }

    /// Evaluate a precompiled [`ProgramPlan`] against `db` (the plan-cache
    /// fast path of [`crate::PreparedDatabase`]). The plan must have been
    /// prepared against `db`'s value dictionary.
    pub(crate) fn evaluate_plan(
        &self,
        plan: &ProgramPlan,
        db: &mut Database,
        guard: &QueryGuard,
    ) -> Result<EvalStats> {
        if !std::sync::Arc::ptr_eq(&plan.dict, db.dict()) {
            return Err(RaqletError::execution(
                "program plan was prepared against a different value dictionary",
            ));
        }
        let threads = self.config.effective_threads();
        let mut stats = EvalStats { strata: plan.strata.len(), ..Default::default() };

        // Ensure every IDB exists (possibly empty) so downstream negation and
        // outputs behave deterministically.
        for (name, arity) in &plan.idbs {
            db.get_or_create(name, *arity);
        }

        // Materialize exactly the index requirements the compiled join
        // schedules declared (plus lattice merge groups). Joins and
        // negations are read-only from here on: evaluation never builds an
        // undeclared index (`extend_with_atom` keeps a scan fallback as a
        // correctness safety net for relations absent at this point).
        for (name, column_sets) in &plan.required_indexes {
            if let Some(rel) = db.get_mut(name) {
                rel.require_indexes(column_sets);
            }
        }

        for stratum in &plan.strata {
            if stratum.agg_rules.is_empty() && stratum.sccs.is_empty() {
                continue;
            }
            if let Err(e) = self.evaluate_stratum(stratum, db, threads, &mut stats, guard) {
                // Deep checkpoints raise guard trips with empty counters (they
                // cannot see this run's stats); patch the partials in here so
                // callers learn how far evaluation got.
                return Err(e.with_partial_stats(&stats));
            }
        }
        Ok(stats)
    }

    /// Evaluate the output relation of a program directly.
    pub fn run_output(
        &self,
        program: &DlirProgram,
        edb: &Database,
        output: &str,
    ) -> Result<Relation> {
        Ok(self.evaluate(program, edb)?.relation(output))
    }

    fn evaluate_stratum(
        &self,
        stratum: &StratumPlan,
        db: &mut Database,
        threads: usize,
        stats: &mut EvalStats,
        guard: &QueryGuard,
    ) -> Result<()> {
        // Aggregating rules are never recursive, and stratification places
        // everything they read in a strictly lower stratum — so they are
        // evaluated once, *before* the fixpoint rules of this stratum (which
        // may consume their output). Their output is published immediately.
        for plan in &stratum.agg_rules {
            guard.checkpoint(CheckPoint::Scc)?;
            stats.rule_applications += 1;
            let derived = self.apply_rule(plan, db, None, threads, stats, guard)?;
            stats.tuples_derived += derived.rows;
            publish_derived(plan, db, derived)?;
        }

        // Components run in dependency order (the condensation of the rule
        // dependency graph is acyclic), so by the time a component runs,
        // everything it reads outside itself — lower strata and earlier
        // components of this stratum — is fully published.
        for scc in &stratum.sccs {
            guard.checkpoint(CheckPoint::Scc)?;
            check_db_memory(guard, db)?;
            stats.sccs += 1;
            if scc.looping {
                stats.looping_sccs += 1;
                self.evaluate_scc_fixpoint(scc, db, threads, stats, guard)?;
            } else {
                // Non-looping component: every rule reads only fully
                // computed relations, so one application per rule derives
                // the complete result — publish directly, no delta
                // machinery.
                for plan in &scc.rules {
                    stats.rule_applications += 1;
                    let derived = self.apply_rule(plan, db, None, threads, stats, guard)?;
                    stats.tuples_derived += derived.rows;
                    publish_derived(plan, db, derived)?;
                }
                stats.iterations += 1;
                // Lattice publication announces improvements in the next
                // delta; drop that bookkeeping — nothing iterates here.
                for name in &scc.relations {
                    if let Some(rel) = db.get_mut(name) {
                        rel.clear_rounds();
                    }
                }
            }
        }

        // Leave the relations in a clean full-set-only state so frontier
        // bookkeeping never leaks into later strata or into the results.
        for name in &stratum.relations {
            if let Some(rel) = db.get_mut(name) {
                rel.clear_rounds();
            }
        }

        Ok(())
    }

    /// Iterate one looping component to fixpoint. The frontier (delta)
    /// bookkeeping is confined to the component's own relations, and only
    /// the component's rules are re-applied per round.
    pub(crate) fn evaluate_scc_fixpoint(
        &self,
        scc: &SccPlan,
        db: &mut Database,
        threads: usize,
        stats: &mut EvalStats,
        guard: &QueryGuard,
    ) -> Result<()> {
        // Round zero: evaluate every rule of the component against the full
        // database, staging derivations inside the head relations. Advancing
        // publishes them and makes them the first delta.
        for plan in &scc.rules {
            stats.rule_applications += 1;
            let derived = self.apply_rule(plan, db, None, threads, stats, guard)?;
            stats.tuples_derived += derived.rows;
            stage_derived(plan, db, derived)?;
        }
        stats.iterations += 1;
        for name in &scc.relations {
            if let Some(rel) = db.get_mut(name) {
                rel.advance();
            }
        }

        self.scc_delta_rounds(scc, db, threads, stats, guard)?;

        for name in &scc.relations {
            if let Some(rel) = db.get_mut(name) {
                rel.clear_rounds();
            }
        }
        Ok(())
    }

    /// Run a looping component's delta rounds to fixpoint, starting from the
    /// deltas its relations currently expose (for normal evaluation, the
    /// result of the round-zero [`Relation::advance`]; for incremental
    /// maintenance, a frontier seeded from an external delta batch). The
    /// caller owns [`Relation::clear_rounds`].
    pub(crate) fn scc_delta_rounds(
        &self,
        scc: &SccPlan,
        db: &mut Database,
        threads: usize,
        stats: &mut EvalStats,
        guard: &QueryGuard,
    ) -> Result<()> {
        let mut any_new =
            scc.relations.iter().any(|name| db.get(name).is_some_and(|r| !r.delta_is_empty()));

        // Fixpoint rounds: each recursive atom occurrence drives one
        // delta-first join against the persistent indexes on the stable sets.
        while any_new {
            guard.checkpoint(CheckPoint::FixpointRound)?;
            check_db_memory(guard, db)?;
            for plan in &scc.rules {
                if plan.recursive_positions.is_empty() {
                    continue;
                }
                match self.config.strategy {
                    EvalStrategy::Naive => {
                        stats.rule_applications += 1;
                        let derived = self.apply_rule(plan, db, None, threads, stats, guard)?;
                        stats.tuples_derived += derived.rows;
                        stage_derived(plan, db, derived)?;
                    }
                    EvalStrategy::SemiNaive => {
                        // One evaluation per recursive atom occurrence,
                        // scanning the delta for that occurrence.
                        for &pos in &plan.recursive_positions {
                            let delta_empty = match &plan.body[pos] {
                                PlanElem::Atom(a) => {
                                    db.get(&a.relation).is_none_or(|r| r.delta_is_empty())
                                }
                                _ => true,
                            };
                            if delta_empty {
                                continue;
                            }
                            stats.rule_applications += 1;
                            let derived =
                                self.apply_rule(plan, db, Some(pos), threads, stats, guard)?;
                            stats.tuples_derived += derived.rows;
                            stage_derived(plan, db, derived)?;
                        }
                    }
                }
            }
            stats.iterations += 1;
            any_new = false;
            for name in &scc.relations {
                if let Some(rel) = db.get_mut(name) {
                    any_new |= rel.advance() > 0;
                }
            }
        }
        Ok(())
    }

    /// Evaluate one rule, returning the derived head rows (packed). When
    /// `delta_pos` is given, the positive atom at that body position scans
    /// the relation's delta (its previous-round frontier) instead of the
    /// full set, and drives the join from it. The driving scan — the delta,
    /// or in round zero the full arena of the first atom when it carries no
    /// bound columns — is partitioned across worker threads when it is large
    /// enough.
    pub(crate) fn apply_rule(
        &self,
        plan: &RulePlan,
        db: &Database,
        delta_pos: Option<usize>,
        threads: usize,
        stats: &mut EvalStats,
        guard: &QueryGuard,
    ) -> Result<Derived> {
        // The join order and probe-column schedule were computed once at
        // compile time ([`RulePlan::compile`]); every index they name was
        // materialized up front by [`DatalogEngine::evaluate_plan`]. The
        // join therefore needs only `&Database`, so scan chunks can be
        // evaluated concurrently on scoped worker threads.
        let schedule = plan.schedule_for(delta_pos);
        let order: &[usize] = &schedule.order;
        let prep: &JoinPrep = &schedule.prep;

        // The driving scan: the delta slice for delta-driven applications;
        // for round-zero (and aggregate/naive) applications, the full arena
        // of the first atom in the order — but only when that atom carries
        // no bound columns (otherwise the sequential path probes its index,
        // which a partitioned scan could not reproduce order-for-order).
        let scan: Option<Scan> = match delta_pos {
            Some(pos) => {
                let PlanElem::Atom(atom) = &plan.body[pos] else {
                    unreachable!("delta position always names a positive atom")
                };
                db.get(&atom.relation).map(|r| Scan {
                    pos,
                    rows: r.delta_cells(),
                    stride: r.stride(),
                })
            }
            None => order.first().and_then(|&pos| {
                let PlanElem::Atom(atom) = &plan.body[pos] else { return None };
                if !prep.atom_columns[pos].is_empty() {
                    return None;
                }
                db.get(&atom.relation).map(|r| Scan {
                    pos,
                    rows: r.full_cells(),
                    stride: r.stride(),
                })
            }),
        };

        if let Some(scan) = &scan {
            let nrows = scan.rows.len() / scan.stride;
            // Cap the worker count so every chunk carries at least
            // `parallel_threshold` scan rows: spawning a scoped thread for a
            // handful of rows costs more than joining them.
            let workers = threads.min(nrows / self.config.parallel_threshold.max(1)).max(1);
            if workers > 1 && plan.agg.is_none() {
                let chunk_rows = nrows.div_ceil(workers);
                let mut results: Vec<Result<Derived>> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = scan
                        .rows
                        .chunks(chunk_rows * scan.stride)
                        .map(|slice| {
                            let piece = Scan { pos: scan.pos, rows: slice, stride: scan.stride };
                            s.spawn(move || {
                                guard.checkpoint(CheckPoint::ParallelChunk)?;
                                derive_rows(plan, db, order, prep, Some(piece), guard)
                            })
                        })
                        .collect();
                    // A panicking worker must not unwind through the scope
                    // (which would re-raise on the calling thread and abandon
                    // its siblings' results): contain the panic here and
                    // surface it as a structured internal error. Every handle
                    // is joined either way, so no worker outlives the call.
                    results.extend(handles.into_iter().map(|h| {
                        h.join().unwrap_or_else(|payload| {
                            Err(RaqletError::internal(format!(
                                "evaluation worker panicked: {}",
                                panic_message(payload.as_ref())
                            )))
                        })
                    }));
                });
                stats.parallel_tasks += results.len();
                // Merge the per-worker buffers in chunk order so derivation
                // order — and therefore lattice-application and error order —
                // matches a sequential scan of the same rows. Deduplication
                // happens when the caller stages into the head relation.
                let mut out = Derived::new(plan.head_stride());
                let mut first_err: Option<RaqletError> = None;
                for worker in results {
                    match worker {
                        Ok(part) => {
                            out.rows += part.rows;
                            out.cells.extend(part.cells);
                        }
                        // Keep draining: errors must not discard sibling
                        // results silently mid-merge, and the first error in
                        // chunk order is the one a sequential scan would hit.
                        Err(e) => first_err = first_err.or(Some(e)),
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
                guard.add_tuples(out.rows);
                return Ok(out);
            }
        }
        let out = derive_rows(plan, db, order, prep, scan, guard)?;
        guard.add_tuples(out.rows);
        Ok(out)
    }
}

/// One contiguous slice of stride-wide packed rows driving a rule
/// application (a delta snapshot or a chunk of a relation's arena; arena
/// slices may contain tombstoned rows, which the join skips).
#[derive(Clone, Copy)]
struct Scan<'a> {
    pos: usize,
    rows: &'a [Cell],
    stride: usize,
}

/// Packed head rows derived by one rule application: `rows` stride-wide
/// rows, concatenated (stride = head arity, or 1 for nullary heads).
pub(crate) struct Derived {
    pub(crate) cells: Vec<Cell>,
    pub(crate) rows: usize,
    pub(crate) stride: usize,
}

impl Derived {
    pub(crate) fn new(stride: usize) -> Derived {
        Derived { cells: Vec::new(), rows: 0, stride }
    }
}

/// Evaluate one rule application on the current thread: join the body (the
/// driving atom, if any, scanning only the given slice of packed rows) and
/// instantiate or aggregate the head. Requires every index the join order
/// probes to exist already (see `plan_join`).
fn derive_rows(
    plan: &RulePlan,
    db: &Database,
    order: &[usize],
    prep: &JoinPrep,
    scan: Option<Scan>,
    guard: &QueryGuard,
) -> Result<Derived> {
    let bindings = join_body(plan, db, order, prep, scan, guard)?;
    match &plan.agg {
        None => {
            let mut out = Derived::new(plan.head_stride());
            out.cells.reserve(bindings.len() * out.stride);
            for env in &bindings {
                instantiate_head(plan, env, &mut out)?;
            }
            Ok(out)
        }
        Some(agg) => aggregate(plan, agg, &bindings, &plan.dict),
    }
}

/// Join the positive atoms in the prepared order, apply constraints and
/// negation, and return the slot environments satisfying the body. Read-only
/// over the database: every index this probes was built by `plan_join`, so
/// this is safe to run concurrently over disjoint scan slices.
fn join_body(
    plan: &RulePlan,
    db: &Database,
    order: &[usize],
    prep: &JoinPrep,
    scan: Option<Scan>,
    guard: &QueryGuard,
) -> Result<Vec<Env>> {
    let mut envs: Vec<Env> = vec![vec![UNBOUND_CELL; plan.nvars]];

    let mut pending_constraints: Vec<usize> = plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, PlanElem::Constraint { .. }))
        .map(|(i, _)| i)
        .collect();

    // Constraints evaluable before any atom (constant comparisons and
    // `x = <const expr>` assignments, e.g. magic-seed rules).
    apply_ready_constraints(&mut envs, plan, &mut pending_constraints);

    for &idx in order {
        let PlanElem::Atom(atom) = &plan.body[idx] else { continue };
        let scan_here = match &scan {
            Some(s) if s.pos == idx => Some(*s),
            _ => None,
        };
        envs = extend_with_atom(envs, atom, db, scan_here, &prep.atom_columns[idx], guard)?;
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        apply_ready_constraints(&mut envs, plan, &mut pending_constraints);
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Remaining constraints must now be evaluable.
    if let Some(first) = envs.first() {
        for &idx in &pending_constraints {
            let PlanElem::Constraint { lhs, rhs, src, .. } = &plan.body[idx] else { continue };
            if !expr_ready(first, lhs) || !expr_ready(first, rhs) {
                return Err(RaqletError::execution(format!(
                    "constraint `{src}` in rule `{}` references unbound variables",
                    plan.rule_src
                )));
            }
        }
    }

    // Negation.
    for (idx, elem) in plan.body.iter().enumerate() {
        let PlanElem::Negated(atom) = elem else { continue };
        apply_negation(&mut envs, atom, db, prep.negation_columns[idx].as_deref());
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(envs)
}

/// One pinned body position of an incremental-maintenance join: the positive
/// (or, for negation seeding, negated) atom at `pos` ranges over the given
/// packed rows instead of its stored relation.
#[derive(Clone, Copy)]
pub(crate) struct Pin<'a> {
    /// Body position of the pinned atom.
    pub(crate) pos: usize,
    /// The stride-wide packed rows the atom ranges over.
    pub(crate) rows: &'a [Cell],
    /// Row stride of `rows`.
    pub(crate) stride: usize,
}

/// Join a rule body with selected positive atom positions *pinned* to
/// explicit delta-row slices: each pinned atom ranges over its `Pin`'s rows
/// (cross-product across pins), while every remaining atom probes the
/// database's current state. This is the incremental-maintenance work-horse:
/// the signed multilinear delta expansion of counting maintenance, DRed
/// over-deletion and insert propagation all reduce to pinned joins.
///
/// `neg_seed` optionally seeds the environments from rows of the *negated*
/// atom at its position (deriving what a change to a negated relation gains
/// or loses). `skip_negations` suppresses the negation checks at the given
/// body indices — DRed over-deletion skips every negation over a changed
/// relation (the old state may have satisfied it), and insert seeding from a
/// freshly inserted negated row skips its own position (the check would veto
/// every binding it produced). `init` replaces the initial unbound
/// environment (DRed's backward re-derivation check seeds it from a
/// candidate head row); all initial environments must bind the same slots.
///
/// Environments are returned with multiplicity (one per derivation path),
/// which is exactly what derivation counting needs; set-semantics callers
/// deduplicate at staging time.
pub(crate) fn join_body_pinned(
    plan: &RulePlan,
    db: &Database,
    pins: &[Pin],
    neg_seed: Option<Pin>,
    skip_negations: &[usize],
    init: Option<Vec<Env>>,
    guard: &QueryGuard,
) -> Result<Vec<Env>> {
    let mut envs: Vec<Env> = init.unwrap_or_else(|| vec![vec![UNBOUND_CELL; plan.nvars]]);
    let mut pending_constraints: Vec<usize> = plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, PlanElem::Constraint { .. }))
        .map(|(i, _)| i)
        .collect();
    apply_ready_constraints(&mut envs, plan, &mut pending_constraints);

    // Bind the seed rows first (every pinned atom behaves like a driving
    // scan), so the remaining atoms join with at least the schedule's
    // assumed bindings in place.
    if let Some(seed) = neg_seed {
        let PlanElem::Negated(atom) = &plan.body[seed.pos] else {
            return Err(RaqletError::execution("negation seed must name a negated atom"));
        };
        let scan = Scan { pos: seed.pos, rows: seed.rows, stride: seed.stride };
        envs = extend_with_atom(envs, atom, db, Some(scan), &[], guard)?;
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        apply_ready_constraints(&mut envs, plan, &mut pending_constraints);
    }
    for pin in pins {
        let PlanElem::Atom(atom) = &plan.body[pin.pos] else {
            return Err(RaqletError::execution("pinned position must name a positive atom"));
        };
        let scan = Scan { pos: pin.pos, rows: pin.rows, stride: pin.stride };
        envs = extend_with_atom(envs, atom, db, Some(scan), &[], guard)?;
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        apply_ready_constraints(&mut envs, plan, &mut pending_constraints);
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Extend over the unpinned atoms in a compiled order. Driving from the
    // first pin's schedule keeps its probe columns valid: pre-binding extra
    // pins only grows the bound-variable set, and a probe column set is
    // sound under any superset of the bindings it was planned for.
    let schedule = match pins.first() {
        Some(pin) => plan.ivm_schedule_for(pin.pos),
        None => &plan.base_schedule,
    };
    for &idx in &schedule.order {
        if pins.iter().any(|p| p.pos == idx) {
            continue;
        }
        let PlanElem::Atom(atom) = &plan.body[idx] else { continue };
        envs = extend_with_atom(envs, atom, db, None, &schedule.prep.atom_columns[idx], guard)?;
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        apply_ready_constraints(&mut envs, plan, &mut pending_constraints);
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }

    if let Some(first) = envs.first() {
        for &idx in &pending_constraints {
            let PlanElem::Constraint { lhs, rhs, src, .. } = &plan.body[idx] else { continue };
            if !expr_ready(first, lhs) || !expr_ready(first, rhs) {
                return Err(RaqletError::execution(format!(
                    "constraint `{src}` in rule `{}` references unbound variables",
                    plan.rule_src
                )));
            }
        }
    }

    for (idx, elem) in plan.body.iter().enumerate() {
        let PlanElem::Negated(atom) = elem else { continue };
        if skip_negations.contains(&idx) {
            continue;
        }
        apply_negation(&mut envs, atom, db, schedule.prep.negation_columns[idx].as_deref());
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(envs)
}

/// Plan one rule application **at compile time**: compute the greedy
/// bound-first processing order of the rule's positive atoms (the delta
/// atom, if any, drives; then most-bound-columns-first, ties towards the
/// earliest body position) together with the probe-column schedule of every
/// atom and fully-bound negation. Bound-slot progression is simulated
/// statically, including the bindings contributed by `=` assignment
/// constraints as they become ready; this simulation agrees exactly with
/// the runtime binding behaviour of `apply_ready_constraints`, so the
/// returned [`JoinPrep`] column sets are precisely what the (read-only,
/// possibly multi-threaded) join probes. No index is built here — the
/// schedule *declares* the (relation, columns) index requirements, which
/// [`ProgramPlan::prepare`] aggregates and
/// [`DatalogEngine::evaluate_plan`] materializes once up front.
fn plan_join_static(body: &[PlanElem], nvars: usize, delta_pos: Option<usize>) -> JoinSchedule {
    let mut prep = JoinPrep {
        atom_columns: vec![Vec::new(); body.len()],
        negation_columns: vec![None; body.len()],
    };
    let mut bound = vec![false; nvars];
    let mut order: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(i, e)| matches!(e, PlanElem::Atom(_)) && delta_pos != Some(*i))
        .map(|(i, _)| i)
        .collect();

    propagate_assignments(body, &mut bound);
    if let Some(p) = delta_pos {
        order.push(p);
        if let PlanElem::Atom(atom) = &body[p] {
            mark_atom(atom, &mut bound);
        }
        propagate_assignments(body, &mut bound);
    }

    while !remaining.is_empty() {
        // Score: number of columns bound under the current variable set,
        // ties towards the earliest body position. `max_by_key` keeps the
        // *last* maximal element, so the position enters the key reversed:
        // among equal bound-column counts the smallest body index wins.
        // The loop guard proves `remaining` non-empty, so a maximum exists.
        #[allow(clippy::expect_used)]
        let (best_i, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &idx)| {
                let PlanElem::Atom(atom) = &body[idx] else { unreachable!() };
                let bound_cols = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        PlanTerm::Slot(s) => bound[*s],
                        PlanTerm::Const(_) => true,
                        PlanTerm::Wildcard => false,
                    })
                    .count();
                (i, (bound_cols, std::cmp::Reverse(idx)))
            })
            .max_by_key(|(_, score)| *score)
            .expect("remaining is non-empty");
        let idx = remaining.swap_remove(best_i);
        order.push(idx);
        if let PlanElem::Atom(atom) = &body[idx] {
            // The columns the join will probe this atom with are exactly the
            // ones bound right now.
            let columns: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    PlanTerm::Slot(s) => bound[*s],
                    PlanTerm::Const(_) => true,
                    PlanTerm::Wildcard => false,
                })
                .map(|(i, _)| i)
                .collect();
            prep.atom_columns[idx] = columns;
            mark_atom(atom, &mut bound);
        }
        propagate_assignments(body, &mut bound);
    }

    // Negations run after every atom; when fully bound by then, they probe
    // an index over their non-wildcard columns.
    for (idx, elem) in body.iter().enumerate() {
        let PlanElem::Negated(atom) = elem else { continue };
        let all_vars_bound =
            atom.terms.iter().all(|t| !matches!(t, PlanTerm::Slot(s) if !bound[*s]));
        if !all_vars_bound {
            continue;
        }
        let columns: Vec<usize> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t, PlanTerm::Wildcard))
            .map(|(i, _)| i)
            .collect();
        if !columns.is_empty() {
            prep.negation_columns[idx] = Some(columns);
        }
    }
    JoinSchedule { order, prep }
}

/// Mark every slot the atom binds.
fn mark_atom(atom: &PlanAtom, bound: &mut [bool]) {
    for t in &atom.terms {
        if let PlanTerm::Slot(s) = t {
            bound[*s] = true;
        }
    }
}

/// Propagate `slot = <ready expr>` assignment constraints into the bound
/// set, to fixpoint. Shared by the static bound-slot simulations of
/// `plan_join_static`, which must agree exactly with the runtime binding
/// behaviour of `apply_ready_constraints`.
fn propagate_assignments(body: &[PlanElem], bound: &mut [bool]) {
    loop {
        let mut changed = false;
        for elem in body {
            let PlanElem::Constraint { op, lhs, rhs, .. } = elem else { continue };
            if *op != raqlet_dlir::CmpOp::Eq {
                continue;
            }
            match (lhs, rhs) {
                (PlanExpr::Slot(s), e) | (e, PlanExpr::Slot(s))
                    if !bound[*s] && expr_slots_bound(e, bound) =>
                {
                    bound[*s] = true;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
}

/// The per-rule-application probe schedule: which columns each body element
/// probes with, computed once at compile time by `plan_join_static` and
/// reused by every application and every worker.
#[derive(Debug, Clone)]
pub(crate) struct JoinPrep {
    /// For each body index holding a positive atom: the columns bound when
    /// the atom is reached in the prepared order (empty = plain scan; the
    /// driving atom always scans its slice).
    atom_columns: Vec<Vec<usize>>,
    /// For each body index holding a negation: `Some(columns)` when every
    /// variable is bound by then (probe the index over those columns),
    /// `None` for the scan fallback.
    negation_columns: Vec<Option<Vec<usize>>>,
}

/// One compiled join schedule: the atom processing order plus the probe
/// columns of every body element. A rule carries one base schedule
/// (round-zero / naive / aggregate applications) and one per candidate
/// delta driver.
#[derive(Debug, Clone)]
pub(crate) struct JoinSchedule {
    order: Vec<usize>,
    prep: JoinPrep,
}

/// True if every slot of the expression is marked bound.
fn expr_slots_bound(expr: &PlanExpr, bound: &[bool]) -> bool {
    match expr {
        PlanExpr::Slot(s) => bound[*s],
        PlanExpr::Const(..) => true,
        PlanExpr::Arith { lhs, rhs, .. } => {
            expr_slots_bound(lhs, bound) && expr_slots_bound(rhs, bound)
        }
    }
}

/// Fire every pending constraint whose slots are bound: comparisons filter
/// the environments, `=` with exactly one unbound bare-slot side assigns it.
/// Repeats until no constraint fires (an assignment can ready another
/// constraint). All environments bind the same slot set by construction, so
/// readiness is checked once on the first.
fn apply_ready_constraints(envs: &mut Vec<Env>, plan: &RulePlan, pending: &mut Vec<usize>) {
    loop {
        let mut fired = false;
        pending.retain(|&idx| {
            let PlanElem::Constraint { op, lhs, rhs, .. } = &plan.body[idx] else { return false };
            let Some(first) = envs.first() else { return true };
            let l_ready = expr_ready(first, lhs);
            let r_ready = expr_ready(first, rhs);
            if l_ready && r_ready {
                envs.retain(|e| eval_constraint(e, *op, lhs, rhs, &plan.dict).unwrap_or(false));
                fired = true;
                return false;
            }
            // Assignment forms: `x = <expr>` with exactly one side unbound.
            if *op == raqlet_dlir::CmpOp::Eq {
                let assign: Option<(usize, &PlanExpr)> = match (lhs, rhs) {
                    (PlanExpr::Slot(s), e) if !l_ready && r_ready => Some((*s, e)),
                    (e, PlanExpr::Slot(s)) if !r_ready && l_ready => Some((*s, e)),
                    _ => None,
                };
                if let Some((slot, expr)) = assign {
                    // The expression is slot-ready, but evaluation can still
                    // fail on a value error (division by zero). Drop such
                    // environments — there is no derivation for them — so
                    // every surviving environment binds the slot and the
                    // all-envs-bind-the-same-slots invariant holds.
                    let dict = &plan.dict;
                    envs.retain_mut(|env| match eval_expr_cell(env, expr, dict) {
                        Some(cell) => {
                            env[slot] = cell;
                            true
                        }
                        None => false,
                    });
                    fired = true;
                    return false;
                }
            }
            true
        });
        if !fired {
            break;
        }
    }
}

/// A slot environment: one packed cell per rule variable, [`UNBOUND_CELL`]
/// while unbound.
pub(crate) type Env = Vec<Cell>;

/// A body/head term resolved against the rule's variable slot table, with
/// constants pre-encoded to packed cells.
#[derive(Debug, Clone)]
pub(crate) enum PlanTerm {
    /// A variable, identified by its slot.
    Slot(usize),
    /// A constant, encoded against the plan's dictionary.
    Const(Cell),
    /// An anonymous term matching anything.
    Wildcard,
}

/// An atom with slot-resolved terms.
#[derive(Debug, Clone)]
pub(crate) struct PlanAtom {
    pub(crate) relation: String,
    pub(crate) terms: Vec<PlanTerm>,
}

impl PlanAtom {
    fn arity(&self) -> usize {
        self.terms.len()
    }
}

/// A constraint expression with slot-resolved variables. Constants carry
/// both the value (for arithmetic/ordering) and its packed encoding (for
/// equality fast paths and assignment).
#[derive(Debug, Clone)]
pub(crate) enum PlanExpr {
    Slot(usize),
    Const(Value, Cell),
    Arith { op: raqlet_dlir::ArithOp, lhs: Box<PlanExpr>, rhs: Box<PlanExpr> },
}

/// One body element of a compiled rule, aligned with `Rule::body` indices.
#[derive(Debug, Clone)]
pub(crate) enum PlanElem {
    Atom(PlanAtom),
    Constraint { op: raqlet_dlir::CmpOp, lhs: PlanExpr, rhs: PlanExpr, src: String },
    Negated(PlanAtom),
}

/// Slot-resolved aggregation spec.
#[derive(Debug, Clone)]
pub(crate) struct PlanAgg {
    func: raqlet_dlir::AggFunc,
    input: Option<usize>,
    output: usize,
    group_by: Vec<usize>,
}

/// A rule precompiled against a variable slot table and a value dictionary:
/// every variable name is replaced by a dense slot index and every constant
/// by its packed cell, so environments are flat `u64` vectors.
#[derive(Debug, Clone)]
pub(crate) struct RulePlan {
    /// Head relation name.
    pub(crate) head_relation: String,
    /// Head arity.
    pub(crate) head_arity: usize,
    /// Merge semantics of the head relation.
    pub(crate) lattice: LatticeMerge,
    /// Body positions holding positive atoms over this rule's own strongly
    /// connected component (the candidate delta drivers). Empty for rules
    /// of non-looping components.
    pub(crate) recursive_positions: Vec<usize>,
    /// The compiled join schedule for full (round-zero / naive / aggregate)
    /// applications.
    base_schedule: JoinSchedule,
    /// One compiled schedule per recursive position, keyed by that body
    /// position (the delta driver).
    delta_schedules: Vec<(usize, JoinSchedule)>,
    /// One compiled schedule per *non-recursive* positive position, keyed by
    /// that body position. Normal evaluation never drives from these — they
    /// exist for incremental maintenance, where any positive atom may carry
    /// the external delta. Computed lazily on first use (cold
    /// [`DatalogEngine::evaluate`] compiles plans per call, and eagerly
    /// compiling a schedule per body position measurably slowed small cold
    /// queries), and their index requirements are kept out of
    /// [`ProgramPlan::required_indexes`] (folded into the separate
    /// [`ProgramPlan::ivm_required_indexes`] set) so plain evaluation
    /// neither plans nor materializes anything it will not probe.
    ivm_schedules: std::sync::Arc<std::sync::OnceLock<Vec<(usize, JoinSchedule)>>>,
    /// The rule's source text, for error messages.
    pub(crate) rule_src: String,
    pub(crate) nvars: usize,
    /// Slot → variable name, for error messages.
    var_names: Vec<String>,
    pub(crate) body: Vec<PlanElem>,
    pub(crate) head: Vec<PlanTerm>,
    pub(crate) agg: Option<PlanAgg>,
    /// The dictionary constants were encoded against.
    pub(crate) dict: std::sync::Arc<ValueDict>,
}

impl RulePlan {
    /// Stride of the packed head rows this plan derives.
    pub(crate) fn head_stride(&self) -> usize {
        self.head_arity.max(1)
    }

    /// The compiled join schedule for the given delta driver (`None` = the
    /// base schedule).
    // Plan compilation builds one delta schedule per recursive body position
    // before any evaluation runs; a miss is a plan-construction bug, not a
    // runtime condition.
    #[allow(clippy::expect_used)]
    fn schedule_for(&self, delta_pos: Option<usize>) -> &JoinSchedule {
        match delta_pos {
            None => &self.base_schedule,
            Some(pos) => {
                &self
                    .delta_schedules
                    .iter()
                    .find(|(p, _)| *p == pos)
                    .expect("delta position was compiled into the plan")
                    .1
            }
        }
    }

    /// The lazily compiled per-position maintenance schedules (see the
    /// `ivm_schedules` field).
    fn ivm_position_schedules(&self) -> &[(usize, JoinSchedule)] {
        self.ivm_schedules.get_or_init(|| {
            self.body
                .iter()
                .enumerate()
                .filter(|(pos, elem)| {
                    matches!(elem, PlanElem::Atom(_)) && !self.recursive_positions.contains(pos)
                })
                .map(|(pos, _)| (pos, plan_join_static(&self.body, self.nvars, Some(pos))))
                .collect()
        })
    }

    /// The compiled join schedule driving from the positive atom at `pos` —
    /// a recursive (delta) schedule or an incremental-maintenance one.
    // `collect_ivm_indexes` compiles a schedule for every positive body
    // position up front; a miss is a plan-construction bug.
    #[allow(clippy::expect_used)]
    pub(crate) fn ivm_schedule_for(&self, pos: usize) -> &JoinSchedule {
        self.delta_schedules
            .iter()
            .chain(self.ivm_position_schedules().iter())
            .find(|(p, _)| *p == pos)
            .map(|(_, s)| s)
            .expect("every positive body position carries a compiled schedule")
    }

    /// Record the *additional* (relation, probe columns) pairs the
    /// incremental-maintenance schedules need an index for, beyond what
    /// [`RulePlan::collect_required_indexes`] already declared.
    fn collect_ivm_indexes(
        &self,
        required: &mut std::collections::BTreeMap<String, std::collections::BTreeSet<Vec<usize>>>,
    ) {
        for (_, schedule) in self.ivm_position_schedules() {
            for (idx, elem) in self.body.iter().enumerate() {
                match elem {
                    PlanElem::Atom(atom) => {
                        let columns = &schedule.prep.atom_columns[idx];
                        if !columns.is_empty() {
                            required
                                .entry(atom.relation.clone())
                                .or_default()
                                .insert(columns.clone());
                        }
                    }
                    PlanElem::Negated(atom) => {
                        if let Some(columns) = &schedule.prep.negation_columns[idx] {
                            required
                                .entry(atom.relation.clone())
                                .or_default()
                                .insert(columns.clone());
                        }
                    }
                    PlanElem::Constraint { .. } => {}
                }
            }
        }
    }

    /// Record every (relation, probe columns) pair this rule's schedules —
    /// and its head's lattice merge — need an index for.
    fn collect_required_indexes(
        &self,
        required: &mut std::collections::BTreeMap<String, std::collections::BTreeSet<Vec<usize>>>,
    ) {
        let mut from_schedule = |schedule: &JoinSchedule| {
            for (idx, elem) in self.body.iter().enumerate() {
                match elem {
                    PlanElem::Atom(atom) => {
                        let columns = &schedule.prep.atom_columns[idx];
                        if !columns.is_empty() {
                            required
                                .entry(atom.relation.clone())
                                .or_default()
                                .insert(columns.clone());
                        }
                    }
                    PlanElem::Negated(atom) => {
                        if let Some(columns) = &schedule.prep.negation_columns[idx] {
                            required
                                .entry(atom.relation.clone())
                                .or_default()
                                .insert(columns.clone());
                        }
                    }
                    PlanElem::Constraint { .. } => {}
                }
            }
        };
        from_schedule(&self.base_schedule);
        for (_, schedule) in &self.delta_schedules {
            from_schedule(schedule);
        }
        // Lattice heads group on every column except the merge column when
        // tuples are staged/published (see `Relation::lattice_insert_cells`).
        if let LatticeMerge::MinOnColumn(col) | LatticeMerge::MaxOnColumn(col) = self.lattice {
            let group_cols: Vec<usize> = (0..self.head_arity).filter(|&i| i != col).collect();
            required.entry(self.head_relation.clone()).or_default().insert(group_cols);
        }
    }
}

/// The variable slot table built up while compiling a rule.
#[derive(Default)]
struct SlotTable {
    slots: HashMap<String, usize>,
    var_names: Vec<String>,
}

impl SlotTable {
    fn slot_of(&mut self, name: &str) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.var_names.len();
        self.slots.insert(name.to_string(), s);
        self.var_names.push(name.to_string());
        s
    }

    fn compile_term(&mut self, t: &Term, dict: &ValueDict) -> PlanTerm {
        match t {
            Term::Var(v) => PlanTerm::Slot(self.slot_of(v)),
            Term::Const(c) => PlanTerm::Const(dict.encode_value(c)),
            Term::Wildcard => PlanTerm::Wildcard,
        }
    }

    fn compile_atom(&mut self, a: &Atom, dict: &ValueDict) -> PlanAtom {
        PlanAtom {
            relation: a.relation.clone(),
            terms: a.terms.iter().map(|t| self.compile_term(t, dict)).collect(),
        }
    }

    fn compile_expr(&mut self, expr: &DlExpr, dict: &ValueDict) -> PlanExpr {
        match expr {
            DlExpr::Var(v) => PlanExpr::Slot(self.slot_of(v)),
            DlExpr::Const(c) => PlanExpr::Const(c.clone(), dict.encode_value(c)),
            DlExpr::Arith { op, lhs, rhs } => PlanExpr::Arith {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs, dict)),
                rhs: Box::new(self.compile_expr(rhs, dict)),
            },
        }
    }
}

impl RulePlan {
    fn compile(
        rule: &Rule,
        dict: &std::sync::Arc<ValueDict>,
        scc_relations: &[String],
        lattice: LatticeMerge,
    ) -> RulePlan {
        let mut table = SlotTable::default();

        let mut body = Vec::with_capacity(rule.body.len());
        for elem in &rule.body {
            body.push(match elem {
                BodyElem::Atom(a) => PlanElem::Atom(table.compile_atom(a, dict)),
                BodyElem::Negated(a) => PlanElem::Negated(table.compile_atom(a, dict)),
                BodyElem::Constraint { op, lhs, rhs } => PlanElem::Constraint {
                    op: *op,
                    lhs: table.compile_expr(lhs, dict),
                    rhs: table.compile_expr(rhs, dict),
                    src: elem.to_string(),
                },
            });
        }

        let head: Vec<PlanTerm> =
            rule.head.terms.iter().map(|t| table.compile_term(t, dict)).collect();

        let agg = rule.aggregation.as_ref().map(|a: &Aggregation| PlanAgg {
            func: a.func,
            input: a.input_var.as_ref().map(|v| table.slot_of(v)),
            output: table.slot_of(&a.output_var),
            group_by: a.group_by.iter().map(|v| table.slot_of(v)).collect(),
        });

        let recursive_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(p, b)| match b.as_positive_atom() {
                Some(a) if scc_relations.contains(&a.relation) => Some(p),
                _ => None,
            })
            .collect();

        let nvars = table.var_names.len();
        let base_schedule = plan_join_static(&body, nvars, None);
        let delta_schedules: Vec<(usize, JoinSchedule)> = recursive_positions
            .iter()
            .map(|&pos| (pos, plan_join_static(&body, nvars, Some(pos))))
            .collect();
        RulePlan {
            head_relation: rule.head.relation.clone(),
            head_arity: rule.head.arity(),
            lattice,
            recursive_positions,
            base_schedule,
            delta_schedules,
            ivm_schedules: std::sync::Arc::new(std::sync::OnceLock::new()),
            rule_src: rule.to_string(),
            nvars,
            var_names: table.var_names,
            body,
            head,
            agg,
            dict: dict.clone(),
        }
    }
}

/// One strongly connected component of a stratum's rule dependency graph:
/// the unit of fixpoint evaluation.
#[derive(Debug)]
pub(crate) struct SccPlan {
    /// Relations derived in this component (whose deltas matter while the
    /// component iterates).
    pub(crate) relations: Vec<String>,
    /// True when the component needs fixpoint rounds beyond round zero
    /// (self- or mutual recursion); non-looping components evaluate in
    /// exactly one round with no delta machinery.
    pub(crate) looping: bool,
    /// The component's fixpoint rules, in program order.
    pub(crate) rules: Vec<RulePlan>,
}

/// One stratum of a precompiled program: aggregating rules, then the
/// condensation of the stratum's rule dependency graph in dependency order.
#[derive(Debug)]
pub(crate) struct StratumPlan {
    /// Relations derived in this stratum.
    pub(crate) relations: Vec<String>,
    /// Aggregating rules (evaluated once, published immediately).
    pub(crate) agg_rules: Vec<RulePlan>,
    /// The stratum's strongly connected components, dependencies first.
    pub(crate) sccs: Vec<SccPlan>,
}

/// A whole program, validated, stratified and compiled to slot/cell form —
/// everything [`DatalogEngine::evaluate`] needs that does not depend on the
/// data. [`crate::PreparedDatabase`] memoizes these per program fingerprint
/// so warm executions skip validation, stratification and rule compilation
/// entirely.
#[derive(Debug)]
pub(crate) struct ProgramPlan {
    /// Every IDB with its arity (created as empty relations up front).
    pub(crate) idbs: Vec<(String, usize)>,
    pub(crate) strata: Vec<StratumPlan>,
    /// Every persistent index evaluation will probe, per relation: the
    /// union of the probe columns of every compiled join schedule plus the
    /// merge-group columns of lattice heads. [`DatalogEngine::evaluate_plan`]
    /// materializes these once, up front; nothing else builds indexes.
    required_indexes: Vec<(String, Vec<Vec<usize>>)>,
    /// The dictionary constants were encoded against; evaluation must run
    /// against a database sharing it.
    dict: std::sync::Arc<ValueDict>,
}

impl ProgramPlan {
    /// Validate, stratify and compile `program`, encoding constants against
    /// `dict`. Within each stratum the rule dependency graph is condensed
    /// into strongly connected components (dependencies first), each rule is
    /// compiled against its own component's member set, and the
    /// per-relation index requirements of every join schedule are collected.
    pub(crate) fn prepare(
        program: &DlirProgram,
        dict: &std::sync::Arc<ValueDict>,
    ) -> Result<ProgramPlan> {
        raqlet_dlir::validate(program)?;
        let stratification = stratify(program)?;
        let graph = DepGraph::build(program);

        let idbs: Vec<(String, usize)> = program
            .idb_names()
            .into_iter()
            .map(|idb| {
                let arity = program.rules_for(&idb).first().map(|r| r.head.arity()).unwrap_or(0);
                (idb, arity)
            })
            .collect();

        let mut required: std::collections::BTreeMap<
            String,
            std::collections::BTreeSet<Vec<usize>>,
        > = std::collections::BTreeMap::new();
        let mut strata = Vec::with_capacity(stratification.len());
        for stratum in &stratification.strata {
            let rules: Vec<&Rule> =
                program.rules.iter().filter(|r| stratum.contains(&r.head.relation)).collect();
            let mut relations: Vec<String> = Vec::new();
            for rule in &rules {
                if !relations.contains(&rule.head.relation) {
                    relations.push(rule.head.relation.clone());
                }
            }
            let mut agg_rules = Vec::new();
            let mut sccs = Vec::new();
            for group in graph.condense(&relations) {
                let mut scc_rules = Vec::new();
                for rule in &rules {
                    if !group.relations.contains(&rule.head.relation) {
                        continue;
                    }
                    let plan = RulePlan::compile(
                        rule,
                        dict,
                        &group.relations,
                        program.lattice_for(&rule.head.relation),
                    );
                    plan.collect_required_indexes(&mut required);
                    if plan.agg.is_some() {
                        agg_rules.push(plan);
                    } else {
                        scc_rules.push(plan);
                    }
                }
                if !scc_rules.is_empty() {
                    sccs.push(SccPlan {
                        relations: group.relations,
                        looping: group.looping,
                        rules: scc_rules,
                    });
                }
            }
            strata.push(StratumPlan { relations, agg_rules, sccs });
        }
        let required_indexes: Vec<(String, Vec<Vec<usize>>)> =
            required.into_iter().map(|(name, sets)| (name, sets.into_iter().collect())).collect();
        Ok(ProgramPlan { idbs, strata, required_indexes, dict: dict.clone() })
    }

    /// The index requirements of the compiled join schedules, per relation.
    pub(crate) fn required_indexes(&self) -> &[(String, Vec<Vec<usize>>)] {
        &self.required_indexes
    }

    /// The index requirements of incremental maintenance: the union of
    /// [`ProgramPlan::required_indexes`] and the probe columns of every
    /// per-position maintenance schedule. Computed on demand — the
    /// per-position schedules are lazy, and only
    /// [`crate::PreparedDatabase::install_view`] (a once-per-view call)
    /// needs this superset.
    pub(crate) fn ivm_required_indexes(&self) -> Vec<(String, Vec<Vec<usize>>)> {
        let mut required: std::collections::BTreeMap<
            String,
            std::collections::BTreeSet<Vec<usize>>,
        > = std::collections::BTreeMap::new();
        for (name, sets) in &self.required_indexes {
            required.entry(name.clone()).or_default().extend(sets.iter().cloned());
        }
        for stratum in &self.strata {
            for plan in stratum.agg_rules.iter().chain(stratum.sccs.iter().flat_map(|s| &s.rules)) {
                plan.collect_ivm_indexes(&mut required);
            }
        }
        required.into_iter().map(|(name, sets)| (name, sets.into_iter().collect())).collect()
    }

    /// True when `name` is derived by this program (an IDB head).
    pub(crate) fn is_idb(&self, name: &str) -> bool {
        self.idbs.iter().any(|(idb, _)| idb == name)
    }
}

/// Extend each environment with every tuple of the atom's relation that
/// matches `atom` under the environment. With a `scan`, the candidate rows
/// come from the given packed slice (the relation's previous-round frontier,
/// or an arena chunk in parallel round zero — tombstoned rows are skipped);
/// otherwise `bound_columns` (the schedule `plan_join` computed, equal to
/// the columns bound in every environment at this point) probe the
/// persistent hash index built there, falling back to a scan if absent.
/// Read-only, so worker threads can share the database.
fn extend_with_atom(
    envs: Vec<Env>,
    atom: &PlanAtom,
    db: &Database,
    scan: Option<Scan>,
    bound_columns: &[usize],
    guard: &QueryGuard,
) -> Result<Vec<Env>> {
    {
        let arity = db.get(&atom.relation).map(|r| r.arity()).unwrap_or(atom.arity());
        let empty = db.get(&atom.relation).is_none_or(|r| r.is_empty());
        if arity != atom.arity() && !empty {
            return Err(RaqletError::execution(format!(
                "atom over `{}` has arity {} but the relation has arity {}",
                atom.relation,
                atom.arity(),
                arity
            )));
        }
    }

    let Some(relation) = db.get(&atom.relation) else { return Ok(Vec::new()) };

    // Deadline/cancellation latency must be bounded even when one rule
    // application joins millions of candidate rows in a single round: tick
    // a local counter per candidate and consult the guard every
    // `JOIN_SCAN_PERIOD` candidates (one untaken branch per row when the
    // guard is unarmed).
    let mut ticker: u64 = 0;
    let mut tick = move || -> Result<()> {
        ticker += 1;
        if ticker.is_multiple_of(JOIN_SCAN_PERIOD) {
            guard.checkpoint(CheckPoint::JoinScan)?;
        }
        Ok(())
    };

    let mut out = Vec::new();
    if let Some(scan) = scan {
        let arity = atom.arity().min(scan.stride);
        for env in envs {
            for row in scan.rows.chunks_exact(scan.stride) {
                tick()?;
                if is_tombstone(row[0]) {
                    continue;
                }
                if let Some(new_env) = match_row(&env, atom, &row[..arity]) {
                    out.push(new_env);
                }
            }
        }
    } else if !bound_columns.is_empty() && relation.has_index(bound_columns) {
        let mut key: Vec<Cell> = Vec::with_capacity(bound_columns.len());
        for env in envs {
            key.clear();
            key.extend(bound_columns.iter().map(|&i| match &atom.terms[i] {
                PlanTerm::Slot(s) => env[*s],
                PlanTerm::Const(c) => *c,
                PlanTerm::Wildcard => NULL_CELL,
            }));
            if let Some(candidates) = relation.probe_index_cells(bound_columns, &key) {
                for row in candidates {
                    tick()?;
                    if let Some(new_env) = match_row(&env, atom, row) {
                        out.push(new_env);
                    }
                }
            }
        }
    } else {
        // No bound columns (or no index): every environment scans every
        // row; `match_row` filters.
        for env in envs {
            for row in relation.iter_rows() {
                tick()?;
                if let Some(new_env) = match_row(&env, atom, row) {
                    out.push(new_env);
                }
            }
        }
    }
    Ok(out)
}

/// Match one candidate packed row against an atom under an environment,
/// returning the extended environment on success. Pure cell compares.
#[inline]
fn match_row(env: &Env, atom: &PlanAtom, row: &[Cell]) -> Option<Env> {
    // Verify before cloning: rejected candidates must not pay for an
    // environment copy.
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            PlanTerm::Wildcard => {}
            PlanTerm::Const(c) => {
                if row[i] != *c {
                    return None;
                }
            }
            PlanTerm::Slot(s) => {
                let bound = env[*s];
                if bound != UNBOUND_CELL && bound != row[i] {
                    return None;
                }
            }
        }
    }
    let mut new_env = env.clone();
    for (i, term) in atom.terms.iter().enumerate() {
        if let PlanTerm::Slot(s) = term {
            if new_env[*s] == UNBOUND_CELL {
                new_env[*s] = row[i];
            } else if new_env[*s] != row[i] {
                // A repeated variable bound earlier in this same atom.
                return None;
            }
        }
    }
    Some(new_env)
}

/// Filter out environments for which the negated atom matches. When every
/// variable of the atom is bound (the common, safe case — `plan_join`
/// passes the probe columns it built an index over), the check is an index
/// probe; otherwise it falls back to a scan with the original
/// unbound-variable semantics (an unbound variable never matches).
/// Read-only, so worker threads can share the database.
fn apply_negation(envs: &mut Vec<Env>, atom: &PlanAtom, db: &Database, probe: Option<&[usize]>) {
    if envs.is_empty() {
        return;
    }
    let Some(relation) = db.get(&atom.relation) else { return };
    match probe {
        Some(bound_columns) if relation.has_index(bound_columns) => {
            let mut key: Vec<Cell> = Vec::with_capacity(bound_columns.len());
            envs.retain(|env| {
                key.clear();
                key.extend(bound_columns.iter().map(|&i| match &atom.terms[i] {
                    PlanTerm::Slot(s) => env[*s],
                    PlanTerm::Const(c) => *c,
                    PlanTerm::Wildcard => NULL_CELL,
                }));
                relation
                    .probe_index_cells(bound_columns, &key)
                    .map(|mut hits| hits.next().is_none())
                    .unwrap_or(true)
            });
        }
        _ => envs.retain(|env| !matches_negated(env, atom, relation)),
    }
}

/// True if the expression can be evaluated under the environment (all its
/// slots are bound).
fn expr_ready(env: &Env, expr: &PlanExpr) -> bool {
    match expr {
        PlanExpr::Slot(s) => env[*s] != UNBOUND_CELL,
        PlanExpr::Const(..) => true,
        PlanExpr::Arith { lhs, rhs, .. } => expr_ready(env, lhs) && expr_ready(env, rhs),
    }
}

fn eval_constraint(
    env: &Env,
    op: raqlet_dlir::CmpOp,
    lhs: &PlanExpr,
    rhs: &PlanExpr,
    dict: &ValueDict,
) -> Option<bool> {
    // Equality and inequality on non-arithmetic operands are cell compares
    // (canonical encoding makes cell equality value equality).
    if matches!(op, raqlet_dlir::CmpOp::Eq | raqlet_dlir::CmpOp::Neq) {
        let l = simple_cell(env, lhs);
        let r = simple_cell(env, rhs);
        if let (Some(l), Some(r)) = (l, r) {
            return Some(if op == raqlet_dlir::CmpOp::Eq { l == r } else { l != r });
        }
    }
    Some(op.eval(&eval_expr(env, lhs, dict)?, &eval_expr(env, rhs, dict)?))
}

/// The packed cell of a slot/const expression (None for arithmetic, which
/// must be evaluated at the value level).
#[inline]
fn simple_cell(env: &Env, expr: &PlanExpr) -> Option<Cell> {
    match expr {
        PlanExpr::Slot(s) => Some(env[*s]),
        PlanExpr::Const(_, c) => Some(*c),
        PlanExpr::Arith { .. } => None,
    }
}

/// Evaluate an expression to a `Value`, decoding slot cells on demand.
fn eval_expr(env: &Env, expr: &PlanExpr, dict: &ValueDict) -> Option<Value> {
    match expr {
        PlanExpr::Slot(s) => {
            let cell = env[*s];
            if cell == UNBOUND_CELL {
                None
            } else {
                Some(dict.decode(cell))
            }
        }
        PlanExpr::Const(v, _) => Some(v.clone()),
        PlanExpr::Arith { op, lhs, rhs } => {
            op.eval(&eval_expr(env, lhs, dict)?, &eval_expr(env, rhs, dict)?)
        }
    }
}

/// Evaluate an expression straight to a packed cell (slot/const expressions
/// skip the decode/encode round trip; arithmetic encodes its result).
fn eval_expr_cell(env: &Env, expr: &PlanExpr, dict: &ValueDict) -> Option<Cell> {
    match expr {
        PlanExpr::Slot(s) => {
            let cell = env[*s];
            if cell == UNBOUND_CELL {
                None
            } else {
                Some(cell)
            }
        }
        PlanExpr::Const(_, c) => Some(*c),
        PlanExpr::Arith { op, lhs, rhs } => {
            let v = op.eval(&eval_expr(env, lhs, dict)?, &eval_expr(env, rhs, dict)?)?;
            Some(dict.encode_value(&v))
        }
    }
}

fn matches_negated(env: &Env, atom: &PlanAtom, relation: &Relation) -> bool {
    relation.iter_rows().any(|row| {
        atom.terms.iter().enumerate().all(|(i, term)| match term {
            PlanTerm::Wildcard => true,
            PlanTerm::Const(c) => row[i] == *c,
            PlanTerm::Slot(s) => env[*s] != UNBOUND_CELL && env[*s] == row[i],
        })
    })
}

/// Instantiate the head for one environment, appending the packed row (plus
/// the nullary pad, if any) to `out`.
pub(crate) fn instantiate_head(plan: &RulePlan, env: &Env, out: &mut Derived) -> Result<()> {
    for t in &plan.head {
        match t {
            PlanTerm::Slot(s) => {
                let cell = env[*s];
                if cell == UNBOUND_CELL {
                    return Err(RaqletError::execution(format!(
                        "head variable `{}` is unbound at instantiation",
                        plan.var_names[*s]
                    )));
                }
                out.cells.push(cell);
            }
            PlanTerm::Const(c) => out.cells.push(*c),
            PlanTerm::Wildcard => {
                return Err(RaqletError::execution("wildcard in rule head"));
            }
        }
    }
    if plan.head_arity == 0 {
        out.cells.push(NULL_CELL);
    }
    out.rows += 1;
    Ok(())
}

/// Evaluate a rule-level aggregation over the body bindings.
fn aggregate(
    plan: &RulePlan,
    agg: &PlanAgg,
    bindings: &[Env],
    dict: &ValueDict,
) -> Result<Derived> {
    // Deduplicate the (group key, input value) projection at the cell level:
    // Datalog set semantics, matching the SQL backend's `AGG(DISTINCT
    // input)` encoding. Groups are ordered by decoded value for
    // deterministic output.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<Value>, (Vec<Cell>, Vec<Value>)> = BTreeMap::new();
    let mut seen: raqlet_common::hash::FxHashSet<(Vec<Cell>, Cell)> =
        raqlet_common::hash::FxHashSet::default();
    for env in bindings {
        let key_cells: Vec<Cell> = agg
            .group_by
            .iter()
            .map(|&s| if env[s] == UNBOUND_CELL { NULL_CELL } else { env[s] })
            .collect();
        let input_cell = match agg.input {
            Some(s) => {
                if env[s] == UNBOUND_CELL {
                    return Err(RaqletError::execution(format!(
                        "aggregate input `{}` unbound",
                        plan.var_names[s]
                    )));
                }
                env[s]
            }
            // COUNT(*) has no input; a constant stands in so dedup counts
            // each group key once per distinct binding.
            None => dict.encode_int(1),
        };
        if !seen.insert((key_cells.clone(), input_cell)) {
            continue;
        }
        let decoded_key: Vec<Value> = key_cells.iter().map(|&c| dict.decode(c)).collect();
        let entry = groups.entry(decoded_key).or_insert_with(|| (key_cells, Vec::new()));
        entry.1.push(dict.decode(input_cell));
    }

    let mut out = Derived::new(plan.head_stride());
    for (_, (key_cells, values)) in groups {
        let agg_value = match agg.func {
            raqlet_dlir::AggFunc::Count => Value::Int(values.len() as i64),
            raqlet_dlir::AggFunc::Sum => {
                Value::Int(values.iter().filter_map(|v| v.as_int()).sum::<i64>())
            }
            raqlet_dlir::AggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Avg => {
                let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
                if ints.is_empty() {
                    Value::Null
                } else {
                    Value::Int(ints.iter().sum::<i64>() / ints.len() as i64)
                }
            }
        };
        // Build the head row: group-by slots in head order plus the
        // aggregate output.
        let mut env: Env = vec![UNBOUND_CELL; plan.nvars];
        for (&s, &cell) in agg.group_by.iter().zip(key_cells.iter()) {
            env[s] = cell;
        }
        env[agg.output] = dict.encode_value(&agg_value);
        instantiate_head(plan, &env, &mut out)?;
    }
    Ok(out)
}

/// The head's arity conflicts with an existing same-name relation — a
/// runtime check (not just a debug assert) because schema-less programs can
/// mix an EDB relation with rules of a different arity, and packed staging
/// would otherwise misalign the arena.
fn head_arity_mismatch(plan: &RulePlan, existing: usize) -> RaqletError {
    RaqletError::execution(format!(
        "arity mismatch: rule `{}` derives `{}` with arity {}, but the relation has arity {existing}",
        plan.rule_src, plan.head_relation, plan.head_arity
    ))
}

/// Stage freshly derived rows inside their head relation (respecting
/// lattice annotations). Set-semantics tuples become visible at the next
/// [`Relation::advance`]; lattice tuples are published immediately (the
/// improvement must be observable within the round) but are announced in the
/// next delta all the same.
pub(crate) fn stage_derived(plan: &RulePlan, db: &mut Database, derived: Derived) -> Result<()> {
    if derived.rows == 0 {
        return Ok(());
    }
    let arity = plan.head_arity;
    let rel = db.get_or_create(&plan.head_relation, arity);
    if rel.arity() != arity {
        return Err(head_arity_mismatch(plan, rel.arity()));
    }
    for row in derived.cells.chunks_exact(derived.stride) {
        match plan.lattice {
            LatticeMerge::Set => {
                rel.stage_cells(&row[..arity]);
            }
            LatticeMerge::MinOnColumn(col) => {
                rel.lattice_insert_cells(&row[..arity], col, true);
            }
            LatticeMerge::MaxOnColumn(col) => {
                rel.lattice_insert_cells(&row[..arity], col, false);
            }
        }
    }
    Ok(())
}

/// Publish derived rows immediately (used for the once-evaluated
/// aggregation rules, whose output the same stratum's fixpoint rules read).
pub(crate) fn publish_derived(plan: &RulePlan, db: &mut Database, derived: Derived) -> Result<()> {
    if derived.rows == 0 {
        return Ok(());
    }
    let arity = plan.head_arity;
    let rel = db.get_or_create(&plan.head_relation, arity);
    if rel.arity() != arity {
        return Err(head_arity_mismatch(plan, rel.arity()));
    }
    for row in derived.cells.chunks_exact(derived.stride) {
        match plan.lattice {
            LatticeMerge::Set => {
                rel.insert_cells(&row[..arity]);
            }
            LatticeMerge::MinOnColumn(col) => {
                rel.lattice_insert_cells(&row[..arity], col, true);
            }
            LatticeMerge::MaxOnColumn(col) => {
                rel.lattice_insert_cells(&row[..arity], col, false);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::CmpOp;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn chain_edges(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_fact("edge", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        db
    }

    fn tc_program() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        p
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(5)).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 pairs in its closure.
        assert_eq!(result.relation("tc").len(), 15);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let db = chain_edges(8);
        let semi = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        let naive = DatalogEngine::naive().evaluate(&tc_program(), &db).unwrap();
        assert_eq!(semi.relation("tc"), naive.relation("tc"));
        // Semi-naive derives strictly fewer (or equal) tuples in total.
        assert!(semi.stats.tuples_derived <= naive.stats.tuples_derived);
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        // Every node reaches every node (including itself) in a 3-cycle.
        assert_eq!(result.relation("tc").len(), 9);
    }

    #[test]
    fn constants_and_constraints_filter_tuples() {
        // q(y) :- edge(x, y), x = 1.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::var("x"), rhs: DlExpr::int(1) },
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(5)).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn assignment_constraints_bind_new_variables() {
        // q(x, l) :- edge(x, y), l = y + 10.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "l"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("y")),
                        rhs: Box::new(DlExpr::int(10)),
                    },
                ),
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(2)).unwrap();
        assert!(result.relation("q").contains(&[Value::Int(0), Value::Int(11)]));
    }

    #[test]
    fn failed_arithmetic_assignments_drop_only_their_bindings() {
        // h(x) :- r(x, y), z = 10 / y, z > 1. Division by zero must drop the
        // (1, 0) binding — and only it — independent of insertion order.
        let program = || {
            let mut p = DlirProgram::default();
            p.add_rule(Rule::new(
                Atom::with_vars("h", &["x"]),
                vec![
                    atom("r", &["x", "y"]),
                    BodyElem::eq(
                        DlExpr::var("z"),
                        DlExpr::Arith {
                            op: raqlet_dlir::ArithOp::Div,
                            lhs: Box::new(DlExpr::int(10)),
                            rhs: Box::new(DlExpr::var("y")),
                        },
                    ),
                    BodyElem::Constraint {
                        op: CmpOp::Gt,
                        lhs: DlExpr::var("z"),
                        rhs: DlExpr::int(1),
                    },
                ],
            ));
            p.add_output("h");
            p
        };
        for facts in [[(1, 0), (2, 5)], [(2, 5), (1, 0)]] {
            let mut db = Database::new();
            for (a, b) in facts {
                db.insert_fact("r", vec![Value::Int(a), Value::Int(b)]).unwrap();
            }
            let result = DatalogEngine::new().evaluate(&program(), &db).unwrap();
            assert_eq!(result.relation("h").sorted(), vec![vec![Value::Int(2)]], "{facts:?}");
        }
    }

    #[test]
    fn stratified_negation() {
        // unreachable(y) :- node(y), !tc(0, y).
        let mut p = tc_program();
        p.add_rule(Rule::new(Atom::with_vars("node", &["x"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(Atom::with_vars("node", &["y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("unreachable", &["y"]),
            vec![
                atom("node", &["y"]),
                BodyElem::Negated(Atom::new("tc", vec![Term::int(0), Term::var("y")])),
            ],
        ));
        p.add_output("unreachable");
        // Graph: 0 -> 1 -> 2 plus an isolated edge 10 -> 11.
        let mut db = chain_edges(2);
        db.insert_fact("edge", vec![Value::Int(10), Value::Int(11)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let unreachable = result.relation("unreachable").sorted();
        assert_eq!(
            unreachable,
            vec![vec![Value::Int(0)], vec![Value::Int(10)], vec![Value::Int(11)]]
        );
    }

    #[test]
    fn aggregation_counts_distinct_inputs() {
        // deg(x, d) :- edge(x, y) group by x with d = count(y).
        let mut p = DlirProgram::default();
        let mut rule =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        rule.aggregation = Some(Aggregation {
            func: raqlet_dlir::AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        p.add_rule(rule);
        p.add_output("deg");
        let mut db = Database::new();
        for (a, b) in [(1, 2), (1, 3), (1, 3), (2, 3)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let deg = result.relation("deg").sorted();
        assert_eq!(
            deg,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)]]
        );
    }

    #[test]
    fn min_and_max_and_sum_aggregates() {
        let mut db = Database::new();
        for (a, b) in [(1, 5), (1, 9), (2, 4)] {
            db.insert_fact("m", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        for (func, expected_for_1) in [
            (raqlet_dlir::AggFunc::Min, 5),
            (raqlet_dlir::AggFunc::Max, 9),
            (raqlet_dlir::AggFunc::Sum, 14),
            (raqlet_dlir::AggFunc::Avg, 7),
        ] {
            let mut p = DlirProgram::default();
            let mut rule =
                Rule::new(Atom::with_vars("out", &["x", "v"]), vec![atom("m", &["x", "y"])]);
            rule.aggregation = Some(Aggregation {
                func,
                input_var: Some("y".into()),
                output_var: "v".into(),
                group_by: vec!["x".into()],
                distinct: false,
            });
            p.add_rule(rule);
            p.add_output("out");
            let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
            assert!(
                result.relation("out").contains(&[Value::Int(1), Value::Int(expected_for_1)]),
                "{func:?}"
            );
        }
    }

    #[test]
    fn lattice_min_recursion_terminates_on_cycles_and_finds_shortest_paths() {
        // dist(s, d, l): shortest hop count, on a cyclic graph.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![atom("edge", &["s", "d"]), BodyElem::eq(DlExpr::var("l"), DlExpr::int(1))],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![
                atom("dist", &["s", "m", "l0"]),
                atom("edge", &["m", "d"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("l0")),
                        rhs: Box::new(DlExpr::int(1)),
                    },
                ),
            ],
        ));
        p.set_lattice("dist", LatticeMerge::MinOnColumn(2));
        p.add_output("dist");

        // A 4-cycle: 0 -> 1 -> 2 -> 3 -> 0.
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let dist = result.relation("dist");
        // Shortest distance 0 -> 3 is 3 hops, 0 -> 0 is 4 hops (a full cycle).
        assert!(dist.contains(&[Value::Int(0), Value::Int(3), Value::Int(3)]));
        assert!(dist.contains(&[Value::Int(0), Value::Int(0), Value::Int(4)]));
        // Only one distance per pair survives.
        assert_eq!(dist.len(), 16);
    }

    #[test]
    fn mutual_recursion_even_odd() {
        // even(x) :- zero(x). even(x) :- odd(y), succ(y, x). odd(x) :- even(y), succ(y, x).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("even", &["x"]), vec![atom("zero", &["x"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("even", &["x"]),
            vec![atom("odd", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("odd", &["x"]),
            vec![atom("even", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_output("even");
        let mut db = Database::new();
        db.insert_fact("zero", vec![Value::Int(0)]).unwrap();
        for i in 0..10 {
            db.insert_fact("succ", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let even = result.relation("even");
        assert!(even.contains(&[Value::Int(0)]));
        assert!(even.contains(&[Value::Int(10)]));
        assert!(!even.contains(&[Value::Int(7)]));
        assert_eq!(even.len(), 6);
    }

    #[test]
    fn empty_edb_yields_empty_idbs_not_errors() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &Database::new()).unwrap();
        assert!(result.relation("tc").is_empty());
    }

    #[test]
    fn fact_rules_seed_relations() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::new("seed", vec![Term::int(7)]), vec![]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![atom("seed", &["x"]), atom("edge", &["x", "y"])],
        ));
        p.add_output("q");
        let mut db = chain_edges(9);
        db.insert_fact("seed_unused", vec![Value::Int(0)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn string_constants_and_extreme_ints_survive_the_packed_path() {
        // q(y) :- person(x, y), x = "Ada". Plus an i64::MAX key that must go
        // through the overflow table.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![
                atom("person", &["x", "y"]),
                BodyElem::Constraint {
                    op: CmpOp::Eq,
                    lhs: DlExpr::var("x"),
                    rhs: DlExpr::Const(Value::str("Ada")),
                },
            ],
        ));
        p.add_output("q");
        let mut db = Database::new();
        db.insert_fact("person", vec![Value::str("Ada"), Value::Int(i64::MAX)]).unwrap();
        db.insert_fact("person", vec![Value::str("Bob"), Value::Int(2)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(i64::MAX)]]);
    }

    #[test]
    fn stats_are_populated() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(6)).unwrap();
        assert!(result.stats.iterations >= 2);
        assert!(result.stats.rule_applications > 0);
        assert!(result.stats.tuples_derived >= result.relation("tc").len());
        assert!(result.stats.strata >= 1);
    }

    #[test]
    fn non_looping_sccs_evaluate_in_exactly_one_round() {
        // hop2 and hop4 are non-recursive but hop4 reads hop2, so both land
        // in one stratum as two non-looping components in dependency order.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("hop2", &["x", "z"]),
            vec![atom("edge", &["x", "y"]), atom("edge", &["y", "z"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("hop4", &["x", "z"]),
            vec![atom("hop2", &["x", "y"]), atom("hop2", &["y", "z"])],
        ));
        p.add_output("hop4");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(8)).unwrap();
        assert_eq!(result.stats.sccs, 2, "{:?}", result.stats);
        assert_eq!(result.stats.looping_sccs, 0, "{:?}", result.stats);
        assert_eq!(
            result.stats.iterations, 2,
            "each non-looping component must evaluate in exactly one round: {:?}",
            result.stats
        );
        assert_eq!(result.relation("hop2").len(), 7);
        assert_eq!(result.relation("hop4").len(), 5);
    }

    #[test]
    fn looping_sccs_are_detected_and_iterated() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(6)).unwrap();
        assert_eq!(result.stats.sccs, 1);
        assert_eq!(result.stats.looping_sccs, 1);
        assert!(result.stats.iterations >= 2);
    }

    #[test]
    fn evaluation_builds_only_plan_declared_indexes() {
        // For transitive closure the compiled schedules probe `edge` on its
        // first column and nothing else: `tc` is always the driving scan.
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(6)).unwrap();
        let edge = result.database.get("edge").unwrap();
        assert!(edge.has_index(&[0]), "the declared probe index must exist");
        assert_eq!(edge.index_count(), 1, "no undeclared index may be built");
        assert_eq!(edge.index_build_count(), 1);
        let tc = result.database.get("tc").unwrap();
        assert_eq!(tc.index_count(), 0, "tc is never probed, so it needs no index");
    }

    #[test]
    fn round_zero_parallelism_engages_on_unconstrained_scans() {
        // A non-recursive join whose driving atom scans the whole relation:
        // with threshold 1 and several workers, round zero must split.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("hop2", &["x", "z"]),
            vec![atom("edge", &["x", "y"]), atom("edge", &["y", "z"])],
        ));
        p.add_output("hop2");
        let db = chain_edges(64);
        let parallel = DatalogEngine::with_config(
            DatalogConfig::default().with_threads(4).with_parallel_threshold(1),
        );
        let result = parallel.evaluate(&p, &db).unwrap();
        assert!(result.stats.parallel_tasks > 0, "round zero must partition: {:?}", result.stats);
        let sequential = DatalogEngine::with_threads(1).evaluate(&p, &db).unwrap();
        assert_eq!(result.relation("hop2").sorted(), sequential.relation("hop2").sorted());
    }

    #[test]
    fn head_arity_conflicting_with_existing_relation_is_an_error_not_corruption() {
        // Schema-less program: the EDB holds q at arity 2, the rule derives
        // q at arity 1. Packed staging must refuse (a misaligned arena would
        // otherwise silently corrupt rows).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("edge", &["x", "y"])]));
        p.add_output("q");
        let mut db = chain_edges(2);
        db.insert_fact("q", vec![Value::Int(7), Value::Int(8)]).unwrap();
        let err = DatalogEngine::new().evaluate(&p, &db).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
    }

    #[test]
    fn unsafe_programs_are_rejected_before_execution() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x", "w"]), vec![atom("edge", &["x", "y"])]));
        p.add_output("q");
        assert!(DatalogEngine::new().evaluate(&p, &chain_edges(2)).is_err());
    }
}
