//! Bottom-up Datalog engine: the stand-in for Soufflé in the paper's
//! evaluation.
//!
//! The engine evaluates a stratified [`DlirProgram`] against an extensional
//! [`Database`]:
//!
//! * strata are computed with [`raqlet_dlir::stratify()`] and evaluated bottom
//!   up;
//! * inside a stratum, rules are iterated to a fixpoint using either naive or
//!   **semi-naive** evaluation (the default; naive is kept for the ablation
//!   benchmarks);
//! * rules are *precompiled* into slot-based plans: every variable gets a
//!   fixed slot, so a join environment is a flat `Vec<Option<Value>>` instead
//!   of a string-keyed map;
//! * joins are index-driven and **delta-indexed**: each round scans only the
//!   delta of one recursive atom and probes *persistent* hash indexes on the
//!   stable (full) sets of the other atoms. Indexes are built lazily, once
//!   per (relation, bound-columns) pair, and are extended in place as tuples
//!   are published (see [`raqlet_common::Relation`]), so no index is ever
//!   rebuilt between fixpoint iterations;
//! * derivations are *staged* inside the head relation and published at the
//!   end of each round ([`raqlet_common::Relation::advance`]), which makes
//!   the published tuples of a round exactly the next round's delta;
//! * negation reads fully-computed lower strata (also through persistent
//!   indexes when its variables are bound); aggregation groups the
//!   deduplicated bindings of its group-by and input variables;
//! * relations annotated with a `@min` lattice keep only the minimal value of
//!   the annotated column per group, which makes shortest-path recursion
//!   terminate on cyclic data;
//! * delta-driven rule applications are **parallel**: the join order and
//!   every index it will probe are prepared up front on the calling thread,
//!   after which the join needs only `&Database` — so the driving delta is
//!   partitioned into chunks evaluated concurrently with
//!   [`std::thread::scope`]. Per-worker tuple buffers are merged in chunk
//!   order and deduplicated through the head relation's staged set, making
//!   results identical to sequential evaluation regardless of thread count
//!   or partition boundaries (see [`DatalogConfig`]).

use std::collections::HashMap;

use raqlet_common::{Database, RaqletError, Relation, Result, Tuple, Value};
use raqlet_dlir::{
    stratify, Aggregation, Atom, BodyElem, DepGraph, DlExpr, DlirProgram, LatticeMerge, Rule, Term,
};

/// Fixpoint evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-derive everything each iteration (kept for comparison benchmarks).
    Naive,
    /// Only join against the tuples derived in the previous iteration.
    #[default]
    SemiNaive,
}

/// Configuration for the Datalog engine: the evaluation strategy plus the
/// parallelism knobs of the delta-partitioned semi-naive evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogConfig {
    /// Fixpoint evaluation strategy.
    pub strategy: EvalStrategy,
    /// Worker-thread count for delta-partitioned rule evaluation. `0` (the
    /// default) resolves at evaluation time to the `RAQLET_THREADS`
    /// environment variable if it holds a positive integer (CI pins this so
    /// timing is reproducible; results are identical at any count), else to
    /// [`std::thread::available_parallelism`]. `1` disables parallelism.
    pub threads: usize,
    /// Minimum number of driving-delta rows before one rule application is
    /// split across worker threads; below this, spawn overhead dominates and
    /// the rule is evaluated on the calling thread.
    pub parallel_threshold: usize,
}

impl Default for DatalogConfig {
    fn default() -> Self {
        DatalogConfig { strategy: EvalStrategy::SemiNaive, threads: 0, parallel_threshold: 256 }
    }
}

impl DatalogConfig {
    /// This configuration with an explicit worker count (`0` = auto, `1` =
    /// sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with the given parallel-split threshold.
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.parallel_threshold = rows;
        self
    }

    /// Resolve the effective worker count (see [`DatalogConfig::threads`]).
    ///
    /// The auto-detected value is computed once per process and cached:
    /// `available_parallelism` re-reads cgroup quota files on every call
    /// (~10µs — measurable against sub-50µs queries), and the `RAQLET_THREADS`
    /// override is set before the process starts anyway.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *AUTO.get_or_init(|| {
            if let Ok(v) = std::env::var("RAQLET_THREADS") {
                if let Ok(n) = v.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of strata evaluated.
    pub strata: usize,
    /// Total fixpoint iterations across all strata.
    pub iterations: usize,
    /// Total number of rule applications (rule × iteration).
    pub rule_applications: usize,
    /// Total tuples derived (including duplicates discarded by set
    /// semantics).
    pub tuples_derived: usize,
    /// Worker tasks spawned for delta-partitioned rule applications (0 when
    /// every rule ran on the calling thread).
    pub parallel_tasks: usize,
}

/// The result of evaluating a program.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The database containing every derived IDB plus the extensional
    /// relations the program referenced (unreferenced EDB relations are not
    /// copied into the result).
    pub database: Database,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The relation derived for `name` (empty if nothing was derived).
    pub fn relation(&self, name: &str) -> Relation {
        self.database.get(name).cloned().unwrap_or_else(|| Relation::new(0))
    }
}

/// The Datalog engine.
///
/// ```
/// use raqlet_common::{Database, Value};
/// use raqlet_dlir::{Atom, BodyElem, DlirProgram, Rule};
/// use raqlet_engine::DatalogEngine;
///
/// // tc(x, y) :- edge(x, y).   tc(x, y) :- tc(x, z), edge(z, y).
/// let mut program = DlirProgram::default();
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![BodyElem::Atom(Atom::with_vars("edge", &["x", "y"]))],
/// ));
/// program.add_rule(Rule::new(
///     Atom::with_vars("tc", &["x", "y"]),
///     vec![
///         BodyElem::Atom(Atom::with_vars("tc", &["x", "z"])),
///         BodyElem::Atom(Atom::with_vars("edge", &["z", "y"])),
///     ],
/// ));
/// program.add_output("tc");
///
/// let mut db = Database::new();
/// for (a, b) in [(1, 2), (2, 3)] {
///     db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
/// }
/// let tc = DatalogEngine::new().run_output(&program, &db, "tc").unwrap();
/// assert_eq!(tc.len(), 3); // (1,2), (2,3), (1,3)
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatalogEngine {
    /// Engine configuration: strategy plus parallelism knobs.
    pub config: DatalogConfig,
}

impl DatalogEngine {
    /// An engine using semi-naive evaluation (auto-detected thread count).
    pub fn new() -> Self {
        DatalogEngine { config: DatalogConfig::default() }
    }

    /// An engine using naive evaluation (for ablation benchmarks).
    pub fn naive() -> Self {
        DatalogEngine {
            config: DatalogConfig { strategy: EvalStrategy::Naive, ..Default::default() },
        }
    }

    /// An engine with the given configuration.
    pub fn with_config(config: DatalogConfig) -> Self {
        DatalogEngine { config }
    }

    /// A semi-naive engine with an explicit worker count (`1` = sequential).
    pub fn with_threads(threads: usize) -> Self {
        DatalogEngine { config: DatalogConfig::default().with_threads(threads) }
    }

    /// The evaluation strategy in use.
    pub fn strategy(&self) -> EvalStrategy {
        self.config.strategy
    }

    /// Evaluate `program` over the extensional database `edb`.
    pub fn evaluate(&self, program: &DlirProgram, edb: &Database) -> Result<EvalResult> {
        // Working database: only the extensional relations the program
        // actually references (in rule bodies or as outputs) are copied in.
        // Indexes built on them during evaluation live in this working set;
        // the caller's database is never touched.
        let mut referenced: Vec<&str> = Vec::new();
        for rule in &program.rules {
            for elem in &rule.body {
                let name = match elem {
                    BodyElem::Atom(a) | BodyElem::Negated(a) => a.relation.as_str(),
                    BodyElem::Constraint { .. } => continue,
                };
                if !referenced.contains(&name) {
                    referenced.push(name);
                }
            }
        }
        for out in &program.outputs {
            if !referenced.contains(&out.as_str()) {
                referenced.push(out);
            }
        }
        let mut db = Database::new();
        for name in referenced {
            if let Some(rel) = edb.get(name) {
                db.set(name, rel.clone());
            }
        }

        let stats = self.evaluate_in_place(program, &mut db)?;
        Ok(EvalResult { database: db, stats })
    }

    /// Evaluate `program` directly against `db`, deriving IDB relations in
    /// place. The caller owns the working set: extensional relations are
    /// *not* copied, and the persistent indexes built during evaluation stay
    /// in `db` afterwards — [`crate::PreparedDatabase`] relies on this to
    /// keep a warm working set across executions.
    pub(crate) fn evaluate_in_place(
        &self,
        program: &DlirProgram,
        db: &mut Database,
    ) -> Result<EvalStats> {
        raqlet_dlir::validate(program)?;
        let stratification = stratify(program)?;
        let graph = DepGraph::build(program);
        let threads = self.config.effective_threads();

        let mut stats = EvalStats { strata: stratification.len(), ..Default::default() };

        // Ensure every IDB exists (possibly empty) so downstream negation and
        // outputs behave deterministically.
        for idb in program.idb_names() {
            let arity = program.rules_for(&idb).first().map(|r| r.head.arity()).unwrap_or(0);
            db.get_or_create(&idb, arity);
        }

        for stratum in &stratification.strata {
            let rules: Vec<&Rule> =
                program.rules.iter().filter(|r| stratum.contains(&r.head.relation)).collect();
            if rules.is_empty() {
                continue;
            }
            self.evaluate_stratum(program, &graph, &rules, db, threads, &mut stats)?;
        }
        Ok(stats)
    }

    /// Evaluate the output relation of a program directly.
    pub fn run_output(
        &self,
        program: &DlirProgram,
        edb: &Database,
        output: &str,
    ) -> Result<Relation> {
        Ok(self.evaluate(program, edb)?.relation(output))
    }

    fn evaluate_stratum(
        &self,
        program: &DlirProgram,
        graph: &DepGraph,
        rules: &[&Rule],
        db: &mut Database,
        threads: usize,
        stats: &mut EvalStats,
    ) -> Result<()> {
        // Relations derived in this stratum (the ones whose deltas matter).
        let mut stratum_relations: Vec<String> = Vec::new();
        for rule in rules {
            if !stratum_relations.contains(&rule.head.relation) {
                stratum_relations.push(rule.head.relation.clone());
            }
        }

        // Precompile every rule into a slot-based plan, once per stratum.
        let plans: Vec<RulePlan> = rules.iter().map(|r| RulePlan::compile(r)).collect();

        // Aggregating rules are never recursive, and stratification places
        // everything they read in a strictly lower stratum — so they are
        // evaluated once, *before* the fixpoint rules of this stratum (which
        // may consume their output). Their output is published immediately.
        let (agg_idx, fix_idx): (Vec<usize>, Vec<usize>) =
            (0..rules.len()).partition(|&i| rules[i].aggregation.is_some());
        for &i in &agg_idx {
            stats.rule_applications += 1;
            let derived = self.apply_rule(rules[i], &plans[i], db, None, threads, stats)?;
            stats.tuples_derived += derived.len();
            publish_derived(program, db, &rules[i].head.relation, derived)?;
        }

        // Round zero: evaluate every fixpoint rule against the full database,
        // staging derivations inside the head relations. Advancing publishes
        // them and makes them the first delta.
        for &i in &fix_idx {
            stats.rule_applications += 1;
            let derived = self.apply_rule(rules[i], &plans[i], db, None, threads, stats)?;
            stats.tuples_derived += derived.len();
            stage_derived(program, db, &rules[i].head.relation, derived)?;
        }
        stats.iterations += 1;
        let mut any_new = false;
        for name in &stratum_relations {
            if let Some(rel) = db.get_mut(name) {
                any_new |= rel.advance() > 0;
            }
        }

        // Fixpoint rounds: each recursive atom occurrence drives one
        // delta-first join against the persistent indexes on the stable sets.
        let recursive = fix_idx.iter().any(|&i| {
            rules[i]
                .positive_dependencies()
                .iter()
                .any(|d| stratum_relations.contains(&d.to_string()))
        }) || stratum_relations.iter().any(|r| graph.is_recursive(r));
        if recursive {
            while any_new {
                for &i in &fix_idx {
                    let rule = rules[i];
                    // Which body atoms reference relations of this stratum?
                    let recursive_positions: Vec<usize> = rule
                        .body
                        .iter()
                        .enumerate()
                        .filter_map(|(p, b)| match b.as_positive_atom() {
                            Some(a) if stratum_relations.contains(&a.relation) => Some(p),
                            _ => None,
                        })
                        .collect();
                    if recursive_positions.is_empty() {
                        continue;
                    }
                    match self.config.strategy {
                        EvalStrategy::Naive => {
                            stats.rule_applications += 1;
                            let derived =
                                self.apply_rule(rule, &plans[i], db, None, threads, stats)?;
                            stats.tuples_derived += derived.len();
                            stage_derived(program, db, &rule.head.relation, derived)?;
                        }
                        EvalStrategy::SemiNaive => {
                            // One evaluation per recursive atom occurrence,
                            // scanning the delta for that occurrence.
                            for &pos in &recursive_positions {
                                let delta_empty = rule.body[pos]
                                    .as_positive_atom()
                                    .and_then(|a| db.get(&a.relation))
                                    .is_none_or(|r| r.delta_is_empty());
                                if delta_empty {
                                    continue;
                                }
                                stats.rule_applications += 1;
                                let derived = self.apply_rule(
                                    rule,
                                    &plans[i],
                                    db,
                                    Some(pos),
                                    threads,
                                    stats,
                                )?;
                                stats.tuples_derived += derived.len();
                                stage_derived(program, db, &rule.head.relation, derived)?;
                            }
                        }
                    }
                }
                stats.iterations += 1;
                any_new = false;
                for name in &stratum_relations {
                    if let Some(rel) = db.get_mut(name) {
                        any_new |= rel.advance() > 0;
                    }
                }
            }
        }

        // Leave the relations in a clean full-set-only state so frontier
        // bookkeeping never leaks into later strata or into the results.
        for name in &stratum_relations {
            if let Some(rel) = db.get_mut(name) {
                rel.clear_rounds();
            }
        }

        Ok(())
    }

    /// Evaluate one rule, returning the derived head tuples. When
    /// `delta_pos` is given, the positive atom at that body position scans
    /// the relation's delta (its previous-round frontier) instead of the
    /// full set, and drives the join from it — partitioned across worker
    /// threads when the delta is large enough.
    fn apply_rule(
        &self,
        rule: &Rule,
        plan: &RulePlan,
        db: &mut Database,
        delta_pos: Option<usize>,
        threads: usize,
        stats: &mut EvalStats,
    ) -> Result<Vec<Tuple>> {
        // The join order and every persistent index it (and the negations)
        // will probe are decided up front on the calling thread; after this
        // the join needs only `&Database`, so delta chunks can be evaluated
        // concurrently on scoped worker threads.
        let (order, prep) = plan_join(plan, db, delta_pos);
        let db: &Database = db;

        let delta: Option<(usize, &[Tuple])> = delta_pos.map(|pos| {
            let PlanElem::Atom(atom) = &plan.body[pos] else {
                unreachable!("delta position always names a positive atom")
            };
            (pos, db.get(&atom.relation).map(|r| r.delta_rows()).unwrap_or(&[]))
        });

        if let Some((pos, rows)) = delta {
            // Cap the worker count so every chunk carries at least
            // `parallel_threshold` delta rows: spawning a scoped thread for
            // a handful of rows costs more than joining them.
            let workers = threads.min(rows.len() / self.config.parallel_threshold.max(1)).max(1);
            if workers > 1 && plan.agg.is_none() {
                let chunk = rows.len().div_ceil(workers);
                let order = &order;
                let prep = &prep;
                let mut results: Vec<Result<Vec<Tuple>>> = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = rows
                        .chunks(chunk)
                        .map(|slice| {
                            s.spawn(move || {
                                derive_tuples(rule, plan, db, order, prep, Some((pos, slice)))
                            })
                        })
                        .collect();
                    results.extend(
                        handles.into_iter().map(|h| h.join().expect("evaluation worker panicked")),
                    );
                });
                stats.parallel_tasks += results.len();
                // Merge the per-worker buffers in chunk order so derivation
                // order — and therefore lattice-application and error order —
                // matches a sequential scan of the same delta. Deduplication
                // happens when the caller stages into the head relation.
                let mut out = Vec::new();
                for worker in results {
                    out.extend(worker?);
                }
                return Ok(out);
            }
        }
        derive_tuples(rule, plan, db, &order, &prep, delta)
    }
}

/// Evaluate one rule application on the current thread: join the body (the
/// delta atom, if any, scanning only the given slice of frontier rows) and
/// instantiate or aggregate the head. Requires every index the join order
/// probes to exist already (see `plan_join`).
fn derive_tuples(
    rule: &Rule,
    plan: &RulePlan,
    db: &Database,
    order: &[usize],
    prep: &JoinPrep,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Tuple>> {
    let bindings = join_body(rule, plan, db, order, prep, delta)?;
    match &plan.agg {
        None => {
            let mut out = Vec::with_capacity(bindings.len());
            for env in &bindings {
                out.push(instantiate_head(plan, env)?);
            }
            Ok(out)
        }
        Some(agg) => aggregate(plan, agg, &bindings),
    }
}

/// Join the positive atoms in the prepared order, apply constraints and
/// negation, and return the slot environments satisfying the body. Read-only
/// over the database: every index this probes was built by
/// `plan_join`, so this is safe to run concurrently over disjoint
/// delta slices.
fn join_body(
    rule: &Rule,
    plan: &RulePlan,
    db: &Database,
    order: &[usize],
    prep: &JoinPrep,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Env>> {
    let mut envs: Vec<Env> = vec![vec![None; plan.nvars]];

    let mut pending_constraints: Vec<usize> = plan
        .body
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, PlanElem::Constraint { .. }))
        .map(|(i, _)| i)
        .collect();

    // Constraints evaluable before any atom (constant comparisons and
    // `x = <const expr>` assignments, e.g. magic-seed rules).
    apply_ready_constraints(&mut envs, plan, &mut pending_constraints);

    for &idx in order {
        let PlanElem::Atom(atom) = &plan.body[idx] else { continue };
        let delta_rows = match delta {
            Some((pos, rows)) if pos == idx => Some(rows),
            _ => None,
        };
        envs = extend_with_atom(envs, atom, db, delta_rows, &prep.atom_columns[idx])?;
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        apply_ready_constraints(&mut envs, plan, &mut pending_constraints);
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Remaining constraints must now be evaluable.
    if let Some(first) = envs.first() {
        for &idx in &pending_constraints {
            let PlanElem::Constraint { lhs, rhs, .. } = &plan.body[idx] else { continue };
            if !expr_ready(first, lhs) || !expr_ready(first, rhs) {
                return Err(RaqletError::execution(format!(
                    "constraint `{}` in rule `{rule}` references unbound variables",
                    rule.body[idx]
                )));
            }
        }
    }

    // Negation.
    for (idx, elem) in plan.body.iter().enumerate() {
        let PlanElem::Negated(atom) = elem else { continue };
        apply_negation(&mut envs, atom, db, prep.negation_columns[idx].as_deref());
        if envs.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(envs)
}

/// Plan one rule application: compute the greedy bound-first processing
/// order of the rule's positive atoms (the delta atom, if any, drives; then
/// most-bound-columns-first, ties towards smaller relations) while building
/// every persistent index the join — and any fully-bound negation — will
/// probe. Bound-slot progression is simulated statically, including the
/// bindings contributed by `=` assignment constraints as they become ready;
/// this simulation agrees exactly with the runtime binding behaviour of
/// `apply_ready_constraints`, so the returned [`JoinPrep`] column sets are
/// precisely what the (read-only, possibly multi-threaded) join probes.
fn plan_join(
    plan: &RulePlan,
    db: &mut Database,
    delta_pos: Option<usize>,
) -> (Vec<usize>, JoinPrep) {
    let mut prep = JoinPrep {
        atom_columns: vec![Vec::new(); plan.body.len()],
        negation_columns: vec![None; plan.body.len()],
    };
    let mut bound = vec![false; plan.nvars];
    let mut order: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = plan
        .body
        .iter()
        .enumerate()
        .filter(|(i, e)| matches!(e, PlanElem::Atom(_)) && delta_pos != Some(*i))
        .map(|(i, _)| i)
        .collect();

    propagate_assignments(plan, &mut bound);
    if let Some(p) = delta_pos {
        order.push(p);
        if let PlanElem::Atom(atom) = &plan.body[p] {
            mark_atom(atom, &mut bound);
        }
        propagate_assignments(plan, &mut bound);
    }

    while !remaining.is_empty() {
        // Score: number of columns bound under the current variable set,
        // then smaller relations first.
        let (best_i, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &idx)| {
                let PlanElem::Atom(atom) = &plan.body[idx] else { unreachable!() };
                let bound_cols = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        PlanTerm::Slot(s) => bound[*s],
                        PlanTerm::Const(_) => true,
                        PlanTerm::Wildcard => false,
                    })
                    .count();
                let size = db.get(&atom.relation).map(|r| r.len()).unwrap_or(0);
                (i, (bound_cols as i64, -(size as i64)))
            })
            .max_by_key(|(_, score)| *score)
            .expect("remaining is non-empty");
        let idx = remaining.swap_remove(best_i);
        order.push(idx);
        if let PlanElem::Atom(atom) = &plan.body[idx] {
            // The columns the join will probe this atom with are exactly the
            // ones bound right now; build the index before the (read-only,
            // possibly multi-threaded) join runs.
            let columns: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| match t {
                    PlanTerm::Slot(s) => bound[*s],
                    PlanTerm::Const(_) => true,
                    PlanTerm::Wildcard => false,
                })
                .map(|(i, _)| i)
                .collect();
            if !columns.is_empty() {
                if let Some(rel) = db.get_mut(&atom.relation) {
                    rel.ensure_index(&columns);
                }
            }
            prep.atom_columns[idx] = columns;
            mark_atom(atom, &mut bound);
        }
        propagate_assignments(plan, &mut bound);
    }

    // Negations run after every atom; when fully bound by then, they probe
    // an index over their non-wildcard columns.
    for (idx, elem) in plan.body.iter().enumerate() {
        let PlanElem::Negated(atom) = elem else { continue };
        let all_vars_bound =
            atom.terms.iter().all(|t| !matches!(t, PlanTerm::Slot(s) if !bound[*s]));
        if !all_vars_bound {
            continue;
        }
        let columns: Vec<usize> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t, PlanTerm::Wildcard))
            .map(|(i, _)| i)
            .collect();
        if !columns.is_empty() {
            if let Some(rel) = db.get_mut(&atom.relation) {
                rel.ensure_index(&columns);
            }
            prep.negation_columns[idx] = Some(columns);
        }
    }
    (order, prep)
}

/// Mark every slot the atom binds.
fn mark_atom(atom: &PlanAtom, bound: &mut [bool]) {
    for t in &atom.terms {
        if let PlanTerm::Slot(s) = t {
            bound[*s] = true;
        }
    }
}

/// Propagate `slot = <ready expr>` assignment constraints into the bound
/// set, to fixpoint. Shared by the static bound-slot simulations of
/// `plan_join`, which must agree exactly with the
/// runtime binding behaviour of `apply_ready_constraints`.
fn propagate_assignments(plan: &RulePlan, bound: &mut [bool]) {
    loop {
        let mut changed = false;
        for elem in &plan.body {
            let PlanElem::Constraint { op, lhs, rhs } = elem else { continue };
            if *op != raqlet_dlir::CmpOp::Eq {
                continue;
            }
            match (lhs, rhs) {
                (PlanExpr::Slot(s), e) | (e, PlanExpr::Slot(s))
                    if !bound[*s] && expr_slots_bound(e, bound) =>
                {
                    bound[*s] = true;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
}

/// The per-rule-application probe schedule: which columns each body element
/// probes with, computed once by `plan_join` and reused by every
/// worker (instead of being re-derived from the environments per atom, as
/// the sequential evaluator used to).
struct JoinPrep {
    /// For each body index holding a positive atom: the columns bound when
    /// the atom is reached in the prepared order (empty = plain scan; the
    /// delta atom always scans its slice).
    atom_columns: Vec<Vec<usize>>,
    /// For each body index holding a negation: `Some(columns)` when every
    /// variable is bound by then (probe the index over those columns),
    /// `None` for the scan fallback.
    negation_columns: Vec<Option<Vec<usize>>>,
}

/// True if every slot of the expression is marked bound.
fn expr_slots_bound(expr: &PlanExpr, bound: &[bool]) -> bool {
    match expr {
        PlanExpr::Slot(s) => bound[*s],
        PlanExpr::Const(_) => true,
        PlanExpr::Arith { lhs, rhs, .. } => {
            expr_slots_bound(lhs, bound) && expr_slots_bound(rhs, bound)
        }
    }
}

/// Fire every pending constraint whose slots are bound: comparisons filter
/// the environments, `=` with exactly one unbound bare-slot side assigns it.
/// Repeats until no constraint fires (an assignment can ready another
/// constraint). All environments bind the same slot set by construction, so
/// readiness is checked once on the first.
fn apply_ready_constraints(envs: &mut Vec<Env>, plan: &RulePlan, pending: &mut Vec<usize>) {
    loop {
        let mut fired = false;
        pending.retain(|&idx| {
            let PlanElem::Constraint { op, lhs, rhs } = &plan.body[idx] else { return false };
            let Some(first) = envs.first() else { return true };
            let l_ready = expr_ready(first, lhs);
            let r_ready = expr_ready(first, rhs);
            if l_ready && r_ready {
                envs.retain(|e| eval_constraint(e, *op, lhs, rhs).unwrap_or(false));
                fired = true;
                return false;
            }
            // Assignment forms: `x = <expr>` with exactly one side unbound.
            if *op == raqlet_dlir::CmpOp::Eq {
                let assign: Option<(usize, &PlanExpr)> = match (lhs, rhs) {
                    (PlanExpr::Slot(s), e) if !l_ready && r_ready => Some((*s, e)),
                    (e, PlanExpr::Slot(s)) if !r_ready && l_ready => Some((*s, e)),
                    _ => None,
                };
                if let Some((slot, expr)) = assign {
                    // The expression is slot-ready, but evaluation can still
                    // fail on a value error (division by zero). Drop such
                    // environments — there is no derivation for them — so
                    // every surviving environment binds the slot and the
                    // all-envs-bind-the-same-slots invariant holds.
                    envs.retain_mut(|env| match eval_expr(env, expr) {
                        Some(value) => {
                            env[slot] = Some(value);
                            true
                        }
                        None => false,
                    });
                    fired = true;
                    return false;
                }
            }
            true
        });
        if !fired {
            break;
        }
    }
}

/// A slot environment: one entry per rule variable, `None` while unbound.
type Env = Vec<Option<Value>>;

/// A body/head term resolved against the rule's variable slot table.
#[derive(Debug, Clone)]
enum PlanTerm {
    /// A variable, identified by its slot.
    Slot(usize),
    /// A constant.
    Const(Value),
    /// An anonymous term matching anything.
    Wildcard,
}

/// An atom with slot-resolved terms.
#[derive(Debug, Clone)]
struct PlanAtom {
    relation: String,
    terms: Vec<PlanTerm>,
}

impl PlanAtom {
    fn arity(&self) -> usize {
        self.terms.len()
    }
}

/// A constraint expression with slot-resolved variables.
#[derive(Debug, Clone)]
enum PlanExpr {
    Slot(usize),
    Const(Value),
    Arith { op: raqlet_dlir::ArithOp, lhs: Box<PlanExpr>, rhs: Box<PlanExpr> },
}

/// One body element of a compiled rule, aligned with `Rule::body` indices.
#[derive(Debug, Clone)]
enum PlanElem {
    Atom(PlanAtom),
    Constraint { op: raqlet_dlir::CmpOp, lhs: PlanExpr, rhs: PlanExpr },
    Negated(PlanAtom),
}

/// Slot-resolved aggregation spec.
#[derive(Debug, Clone)]
struct PlanAgg {
    func: raqlet_dlir::AggFunc,
    input: Option<usize>,
    output: usize,
    group_by: Vec<usize>,
}

/// A rule precompiled against a variable slot table: every variable name is
/// replaced by a dense index, so environments are flat vectors instead of
/// string-keyed maps.
#[derive(Debug, Clone)]
struct RulePlan {
    nvars: usize,
    /// Slot → variable name, for error messages.
    var_names: Vec<String>,
    body: Vec<PlanElem>,
    head: Vec<PlanTerm>,
    agg: Option<PlanAgg>,
}

/// The variable slot table built up while compiling a rule.
#[derive(Default)]
struct SlotTable {
    slots: HashMap<String, usize>,
    var_names: Vec<String>,
}

impl SlotTable {
    fn slot_of(&mut self, name: &str) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.var_names.len();
        self.slots.insert(name.to_string(), s);
        self.var_names.push(name.to_string());
        s
    }

    fn compile_term(&mut self, t: &Term) -> PlanTerm {
        match t {
            Term::Var(v) => PlanTerm::Slot(self.slot_of(v)),
            Term::Const(c) => PlanTerm::Const(c.clone()),
            Term::Wildcard => PlanTerm::Wildcard,
        }
    }

    fn compile_atom(&mut self, a: &Atom) -> PlanAtom {
        PlanAtom {
            relation: a.relation.clone(),
            terms: a.terms.iter().map(|t| self.compile_term(t)).collect(),
        }
    }

    fn compile_expr(&mut self, expr: &DlExpr) -> PlanExpr {
        match expr {
            DlExpr::Var(v) => PlanExpr::Slot(self.slot_of(v)),
            DlExpr::Const(c) => PlanExpr::Const(c.clone()),
            DlExpr::Arith { op, lhs, rhs } => PlanExpr::Arith {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs)),
                rhs: Box::new(self.compile_expr(rhs)),
            },
        }
    }
}

impl RulePlan {
    fn compile(rule: &Rule) -> RulePlan {
        let mut table = SlotTable::default();

        let mut body = Vec::with_capacity(rule.body.len());
        for elem in &rule.body {
            body.push(match elem {
                BodyElem::Atom(a) => PlanElem::Atom(table.compile_atom(a)),
                BodyElem::Negated(a) => PlanElem::Negated(table.compile_atom(a)),
                BodyElem::Constraint { op, lhs, rhs } => PlanElem::Constraint {
                    op: *op,
                    lhs: table.compile_expr(lhs),
                    rhs: table.compile_expr(rhs),
                },
            });
        }

        let head: Vec<PlanTerm> = rule.head.terms.iter().map(|t| table.compile_term(t)).collect();

        let agg = rule.aggregation.as_ref().map(|a: &Aggregation| PlanAgg {
            func: a.func,
            input: a.input_var.as_ref().map(|v| table.slot_of(v)),
            output: table.slot_of(&a.output_var),
            group_by: a.group_by.iter().map(|v| table.slot_of(v)).collect(),
        });

        RulePlan { nvars: table.var_names.len(), var_names: table.var_names, body, head, agg }
    }
}

/// Extend each environment with every tuple of the atom's relation that
/// matches `atom` under the environment. With `delta_rows` the candidate
/// tuples come from the given slice of the relation's previous-round
/// frontier (scanned — the delta atom is always processed first, so there is
/// a single environment; parallel evaluation passes one chunk per worker);
/// otherwise `bound_columns` (the schedule `plan_join` computed, equal
/// to the columns bound in every environment at this point) probe the
/// persistent hash index built there, falling back to a scan if absent.
/// Read-only, so worker threads can share the database.
fn extend_with_atom(
    envs: Vec<Env>,
    atom: &PlanAtom,
    db: &Database,
    delta_rows: Option<&[Tuple]>,
    bound_columns: &[usize],
) -> Result<Vec<Env>> {
    {
        let arity = db.get(&atom.relation).map(|r| r.arity()).unwrap_or(atom.arity());
        let empty = db.get(&atom.relation).is_none_or(|r| r.is_empty());
        if arity != atom.arity() && !empty {
            return Err(RaqletError::execution(format!(
                "atom over `{}` has arity {} but the relation has arity {}",
                atom.relation,
                atom.arity(),
                arity
            )));
        }
    }

    let Some(relation) = db.get(&atom.relation) else { return Ok(Vec::new()) };

    let mut out = Vec::new();
    if let Some(delta) = delta_rows {
        for env in envs {
            for tuple in delta {
                if let Some(new_env) = match_tuple(&env, atom, tuple) {
                    out.push(new_env);
                }
            }
        }
    } else if !bound_columns.is_empty() && relation.has_index(bound_columns) {
        let mut key: Vec<Value> = Vec::with_capacity(bound_columns.len());
        for env in envs {
            key.clear();
            key.extend(bound_columns.iter().map(|&i| match &atom.terms[i] {
                PlanTerm::Slot(s) => env[*s].clone().unwrap_or(Value::Null),
                PlanTerm::Const(c) => c.clone(),
                PlanTerm::Wildcard => Value::Null,
            }));
            if let Some(candidates) = relation.probe_index(bound_columns, &key) {
                for tuple in candidates {
                    if let Some(new_env) = match_tuple(&env, atom, tuple) {
                        out.push(new_env);
                    }
                }
            }
        }
    } else {
        // No bound columns (or no index): every environment scans every
        // tuple; `match_tuple` filters.
        for env in envs {
            for tuple in relation.iter() {
                if let Some(new_env) = match_tuple(&env, atom, tuple) {
                    out.push(new_env);
                }
            }
        }
    }
    Ok(out)
}

/// Match one candidate tuple against an atom under an environment, returning
/// the extended environment on success.
fn match_tuple(env: &Env, atom: &PlanAtom, tuple: &Tuple) -> Option<Env> {
    // Verify before cloning: rejected candidates must not pay for an
    // environment copy.
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            PlanTerm::Wildcard => {}
            PlanTerm::Const(c) => {
                if &tuple[i] != c {
                    return None;
                }
            }
            PlanTerm::Slot(s) => {
                if let Some(existing) = &env[*s] {
                    if existing != &tuple[i] {
                        return None;
                    }
                }
            }
        }
    }
    let mut new_env = env.clone();
    for (i, term) in atom.terms.iter().enumerate() {
        if let PlanTerm::Slot(s) = term {
            if new_env[*s].is_none() {
                new_env[*s] = Some(tuple[i].clone());
            } else if new_env[*s].as_ref() != Some(&tuple[i]) {
                // A repeated variable bound earlier in this same atom.
                return None;
            }
        }
    }
    Some(new_env)
}

/// Filter out environments for which the negated atom matches. When every
/// variable of the atom is bound (the common, safe case — `plan_join`
/// passes the probe columns it built an index over), the check is an index
/// probe; otherwise it falls back to a scan with the original
/// unbound-variable semantics (an unbound variable never matches).
/// Read-only, so worker threads can share the database.
fn apply_negation(envs: &mut Vec<Env>, atom: &PlanAtom, db: &Database, probe: Option<&[usize]>) {
    if envs.is_empty() {
        return;
    }
    let Some(relation) = db.get(&atom.relation) else { return };
    match probe {
        Some(bound_columns) if relation.has_index(bound_columns) => {
            let mut key: Vec<Value> = Vec::with_capacity(bound_columns.len());
            envs.retain(|env| {
                key.clear();
                key.extend(bound_columns.iter().map(|&i| match &atom.terms[i] {
                    PlanTerm::Slot(s) => env[*s].clone().unwrap_or(Value::Null),
                    PlanTerm::Const(c) => c.clone(),
                    PlanTerm::Wildcard => Value::Null,
                }));
                relation
                    .probe_index(bound_columns, &key)
                    .map(|mut hits| hits.next().is_none())
                    .unwrap_or(true)
            });
        }
        _ => envs.retain(|env| !matches_negated(env, atom, relation)),
    }
}

/// True if the expression can be evaluated under the environment (all its
/// slots are bound).
fn expr_ready(env: &Env, expr: &PlanExpr) -> bool {
    match expr {
        PlanExpr::Slot(s) => env[*s].is_some(),
        PlanExpr::Const(_) => true,
        PlanExpr::Arith { lhs, rhs, .. } => expr_ready(env, lhs) && expr_ready(env, rhs),
    }
}

fn eval_constraint(
    env: &Env,
    op: raqlet_dlir::CmpOp,
    lhs: &PlanExpr,
    rhs: &PlanExpr,
) -> Option<bool> {
    Some(op.eval(&eval_expr(env, lhs)?, &eval_expr(env, rhs)?))
}

fn eval_expr(env: &Env, expr: &PlanExpr) -> Option<Value> {
    match expr {
        PlanExpr::Slot(s) => env[*s].clone(),
        PlanExpr::Const(c) => Some(c.clone()),
        PlanExpr::Arith { op, lhs, rhs } => op.eval(&eval_expr(env, lhs)?, &eval_expr(env, rhs)?),
    }
}

fn matches_negated(env: &Env, atom: &PlanAtom, relation: &Relation) -> bool {
    relation.iter().any(|tuple| {
        atom.terms.iter().enumerate().all(|(i, term)| match term {
            PlanTerm::Wildcard => true,
            PlanTerm::Const(c) => &tuple[i] == c,
            PlanTerm::Slot(s) => env[*s].as_ref().map(|val| val == &tuple[i]).unwrap_or(false),
        })
    })
}

fn instantiate_head(plan: &RulePlan, env: &Env) -> Result<Tuple> {
    plan.head
        .iter()
        .map(|t| match t {
            PlanTerm::Slot(s) => env[*s].clone().ok_or_else(|| {
                RaqletError::execution(format!(
                    "head variable `{}` is unbound at instantiation",
                    plan.var_names[*s]
                ))
            }),
            PlanTerm::Const(c) => Ok(c.clone()),
            PlanTerm::Wildcard => Err(RaqletError::execution("wildcard in rule head")),
        })
        .collect()
}

/// Evaluate a rule-level aggregation over the body bindings.
fn aggregate(plan: &RulePlan, agg: &PlanAgg, bindings: &[Env]) -> Result<Vec<Tuple>> {
    // Deduplicate the (group key, input value) projection: Datalog set
    // semantics, matching the SQL backend's `AGG(DISTINCT input)` encoding.
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<Value>, Vec<Value>> = BTreeMap::new();
    let mut seen: std::collections::HashSet<(Vec<Value>, Option<Value>)> =
        std::collections::HashSet::new();
    for env in bindings {
        let key: Vec<Value> =
            agg.group_by.iter().map(|&s| env[s].clone().unwrap_or(Value::Null)).collect();
        let input = match agg.input {
            Some(s) => Some(env[s].clone().ok_or_else(|| {
                RaqletError::execution(format!("aggregate input `{}` unbound", plan.var_names[s]))
            })?),
            None => None,
        };
        if !seen.insert((key.clone(), input.clone())) {
            continue;
        }
        let entry = groups.entry(key).or_default();
        if let Some(v) = input {
            entry.push(v);
        } else {
            entry.push(Value::Int(1));
        }
    }

    let mut out = Vec::new();
    for (key, values) in groups {
        let agg_value = match agg.func {
            raqlet_dlir::AggFunc::Count => Value::Int(values.len() as i64),
            raqlet_dlir::AggFunc::Sum => {
                Value::Int(values.iter().filter_map(|v| v.as_int()).sum::<i64>())
            }
            raqlet_dlir::AggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Null),
            raqlet_dlir::AggFunc::Avg => {
                let ints: Vec<i64> = values.iter().filter_map(|v| v.as_int()).collect();
                if ints.is_empty() {
                    Value::Null
                } else {
                    Value::Int(ints.iter().sum::<i64>() / ints.len() as i64)
                }
            }
        };
        // Build the head tuple: group-by slots in head order plus the
        // aggregate output.
        let mut env: Env = vec![None; plan.nvars];
        for (&s, val) in agg.group_by.iter().zip(key.iter()) {
            env[s] = Some(val.clone());
        }
        env[agg.output] = Some(agg_value);
        out.push(instantiate_head(plan, &env)?);
    }
    Ok(out)
}

/// Stage freshly derived tuples inside their head relation (respecting
/// lattice annotations). Set-semantics tuples become visible at the next
/// [`Relation::advance`]; lattice tuples are published immediately (the
/// improvement must be observable within the round) but are announced in the
/// next delta all the same.
fn stage_derived(
    program: &DlirProgram,
    db: &mut Database,
    relation: &str,
    derived: Vec<Tuple>,
) -> Result<()> {
    if derived.is_empty() {
        return Ok(());
    }
    let arity = derived[0].len();
    let lattice = program.lattice_for(relation);
    let rel = db.get_or_create(relation, arity);
    for tuple in derived {
        match lattice {
            LatticeMerge::Set => {
                rel.stage(tuple)?;
            }
            LatticeMerge::MinOnColumn(col) => {
                rel.lattice_insert(tuple, col, true);
            }
            LatticeMerge::MaxOnColumn(col) => {
                rel.lattice_insert(tuple, col, false);
            }
        }
    }
    Ok(())
}

/// Publish derived tuples immediately (used for the once-evaluated
/// aggregation rules, whose output the same stratum's fixpoint rules read).
fn publish_derived(
    program: &DlirProgram,
    db: &mut Database,
    relation: &str,
    derived: Vec<Tuple>,
) -> Result<()> {
    if derived.is_empty() {
        return Ok(());
    }
    let arity = derived[0].len();
    let lattice = program.lattice_for(relation);
    let rel = db.get_or_create(relation, arity);
    for tuple in derived {
        match lattice {
            LatticeMerge::Set => {
                rel.insert(tuple)?;
            }
            LatticeMerge::MinOnColumn(col) => {
                rel.lattice_insert(tuple, col, true);
            }
            LatticeMerge::MaxOnColumn(col) => {
                rel.lattice_insert(tuple, col, false);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::CmpOp;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn chain_edges(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_fact("edge", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        db
    }

    fn tc_program() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        p
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(5)).unwrap();
        // A chain of 5 edges has 5+4+3+2+1 = 15 pairs in its closure.
        assert_eq!(result.relation("tc").len(), 15);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let db = chain_edges(8);
        let semi = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        let naive = DatalogEngine::naive().evaluate(&tc_program(), &db).unwrap();
        assert_eq!(semi.relation("tc"), naive.relation("tc"));
        // Semi-naive derives strictly fewer (or equal) tuples in total.
        assert!(semi.stats.tuples_derived <= naive.stats.tuples_derived);
    }

    #[test]
    fn cyclic_graphs_terminate() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&tc_program(), &db).unwrap();
        // Every node reaches every node (including itself) in a 3-cycle.
        assert_eq!(result.relation("tc").len(), 9);
    }

    #[test]
    fn constants_and_constraints_filter_tuples() {
        // q(y) :- edge(x, y), x = 1.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::var("x"), rhs: DlExpr::int(1) },
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(5)).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn assignment_constraints_bind_new_variables() {
        // q(x, l) :- edge(x, y), l = y + 10.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "l"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("y")),
                        rhs: Box::new(DlExpr::int(10)),
                    },
                ),
            ],
        ));
        p.add_output("q");
        let result = DatalogEngine::new().evaluate(&p, &chain_edges(2)).unwrap();
        assert!(result.relation("q").contains(&[Value::Int(0), Value::Int(11)]));
    }

    #[test]
    fn failed_arithmetic_assignments_drop_only_their_bindings() {
        // h(x) :- r(x, y), z = 10 / y, z > 1. Division by zero must drop the
        // (1, 0) binding — and only it — independent of insertion order.
        let program = || {
            let mut p = DlirProgram::default();
            p.add_rule(Rule::new(
                Atom::with_vars("h", &["x"]),
                vec![
                    atom("r", &["x", "y"]),
                    BodyElem::eq(
                        DlExpr::var("z"),
                        DlExpr::Arith {
                            op: raqlet_dlir::ArithOp::Div,
                            lhs: Box::new(DlExpr::int(10)),
                            rhs: Box::new(DlExpr::var("y")),
                        },
                    ),
                    BodyElem::Constraint {
                        op: CmpOp::Gt,
                        lhs: DlExpr::var("z"),
                        rhs: DlExpr::int(1),
                    },
                ],
            ));
            p.add_output("h");
            p
        };
        for facts in [[(1, 0), (2, 5)], [(2, 5), (1, 0)]] {
            let mut db = Database::new();
            for (a, b) in facts {
                db.insert_fact("r", vec![Value::Int(a), Value::Int(b)]).unwrap();
            }
            let result = DatalogEngine::new().evaluate(&program(), &db).unwrap();
            assert_eq!(result.relation("h").sorted(), vec![vec![Value::Int(2)]], "{facts:?}");
        }
    }

    #[test]
    fn stratified_negation() {
        // unreachable(y) :- node(y), !tc(0, y).
        let mut p = tc_program();
        p.add_rule(Rule::new(Atom::with_vars("node", &["x"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(Atom::with_vars("node", &["y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("unreachable", &["y"]),
            vec![
                atom("node", &["y"]),
                BodyElem::Negated(Atom::new("tc", vec![Term::int(0), Term::var("y")])),
            ],
        ));
        p.add_output("unreachable");
        // Graph: 0 -> 1 -> 2 plus an isolated edge 10 -> 11.
        let mut db = chain_edges(2);
        db.insert_fact("edge", vec![Value::Int(10), Value::Int(11)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let unreachable = result.relation("unreachable").sorted();
        assert_eq!(
            unreachable,
            vec![vec![Value::Int(0)], vec![Value::Int(10)], vec![Value::Int(11)]]
        );
    }

    #[test]
    fn aggregation_counts_distinct_inputs() {
        // deg(x, d) :- edge(x, y) group by x with d = count(y).
        let mut p = DlirProgram::default();
        let mut rule =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        rule.aggregation = Some(Aggregation {
            func: raqlet_dlir::AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        p.add_rule(rule);
        p.add_output("deg");
        let mut db = Database::new();
        for (a, b) in [(1, 2), (1, 3), (1, 3), (2, 3)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let deg = result.relation("deg").sorted();
        assert_eq!(
            deg,
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Int(1)]]
        );
    }

    #[test]
    fn min_and_max_and_sum_aggregates() {
        let mut db = Database::new();
        for (a, b) in [(1, 5), (1, 9), (2, 4)] {
            db.insert_fact("m", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        for (func, expected_for_1) in [
            (raqlet_dlir::AggFunc::Min, 5),
            (raqlet_dlir::AggFunc::Max, 9),
            (raqlet_dlir::AggFunc::Sum, 14),
            (raqlet_dlir::AggFunc::Avg, 7),
        ] {
            let mut p = DlirProgram::default();
            let mut rule =
                Rule::new(Atom::with_vars("out", &["x", "v"]), vec![atom("m", &["x", "y"])]);
            rule.aggregation = Some(Aggregation {
                func,
                input_var: Some("y".into()),
                output_var: "v".into(),
                group_by: vec!["x".into()],
                distinct: false,
            });
            p.add_rule(rule);
            p.add_output("out");
            let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
            assert!(
                result.relation("out").contains(&[Value::Int(1), Value::Int(expected_for_1)]),
                "{func:?}"
            );
        }
    }

    #[test]
    fn lattice_min_recursion_terminates_on_cycles_and_finds_shortest_paths() {
        // dist(s, d, l): shortest hop count, on a cyclic graph.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![atom("edge", &["s", "d"]), BodyElem::eq(DlExpr::var("l"), DlExpr::int(1))],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("dist", &["s", "d", "l"]),
            vec![
                atom("dist", &["s", "m", "l0"]),
                atom("edge", &["m", "d"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: raqlet_dlir::ArithOp::Add,
                        lhs: Box::new(DlExpr::var("l0")),
                        rhs: Box::new(DlExpr::int(1)),
                    },
                ),
            ],
        ));
        p.set_lattice("dist", LatticeMerge::MinOnColumn(2));
        p.add_output("dist");

        // A 4-cycle: 0 -> 1 -> 2 -> 3 -> 0.
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            db.insert_fact("edge", vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let dist = result.relation("dist");
        // Shortest distance 0 -> 3 is 3 hops, 0 -> 0 is 4 hops (a full cycle).
        assert!(dist.contains(&[Value::Int(0), Value::Int(3), Value::Int(3)]));
        assert!(dist.contains(&[Value::Int(0), Value::Int(0), Value::Int(4)]));
        // Only one distance per pair survives.
        assert_eq!(dist.len(), 16);
    }

    #[test]
    fn mutual_recursion_even_odd() {
        // even(x) :- zero(x). even(x) :- odd(y), succ(y, x). odd(x) :- even(y), succ(y, x).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("even", &["x"]), vec![atom("zero", &["x"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("even", &["x"]),
            vec![atom("odd", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("odd", &["x"]),
            vec![atom("even", &["y"]), atom("succ", &["y", "x"])],
        ));
        p.add_output("even");
        let mut db = Database::new();
        db.insert_fact("zero", vec![Value::Int(0)]).unwrap();
        for i in 0..10 {
            db.insert_fact("succ", vec![Value::Int(i), Value::Int(i + 1)]).unwrap();
        }
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        let even = result.relation("even");
        assert!(even.contains(&[Value::Int(0)]));
        assert!(even.contains(&[Value::Int(10)]));
        assert!(!even.contains(&[Value::Int(7)]));
        assert_eq!(even.len(), 6);
    }

    #[test]
    fn empty_edb_yields_empty_idbs_not_errors() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &Database::new()).unwrap();
        assert!(result.relation("tc").is_empty());
    }

    #[test]
    fn fact_rules_seed_relations() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::new("seed", vec![Term::int(7)]), vec![]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![atom("seed", &["x"]), atom("edge", &["x", "y"])],
        ));
        p.add_output("q");
        let mut db = chain_edges(9);
        db.insert_fact("seed_unused", vec![Value::Int(0)]).unwrap();
        let result = DatalogEngine::new().evaluate(&p, &db).unwrap();
        assert_eq!(result.relation("q").sorted(), vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn stats_are_populated() {
        let result = DatalogEngine::new().evaluate(&tc_program(), &chain_edges(6)).unwrap();
        assert!(result.stats.iterations >= 2);
        assert!(result.stats.rule_applications > 0);
        assert!(result.stats.tuples_derived >= result.relation("tc").len());
        assert!(result.stats.strata >= 1);
    }

    #[test]
    fn unsafe_programs_are_rejected_before_execution() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x", "w"]), vec![atom("edge", &["x", "y"])]));
        p.add_output("q");
        assert!(DatalogEngine::new().evaluate(&p, &chain_edges(2)).is_err());
    }
}
