//! Cypher unparser: PGIR → Cypher text.
//!
//! Figure 1 of the paper lists Cypher both as a frontend and as a (planned)
//! backend. Raqlet supports the backend direction for the PGIR fragment the
//! frontend produces, which is enough to round-trip queries and to hand the
//! original query to a graph engine.

use std::fmt::Write as _;

use raqlet_pgir::{
    MatchConstruct, OutputItem, PathSemantics, PatternElem, PgirClause, PgirExpr, PgirQuery,
};

/// Render a PGIR query as Cypher text.
pub fn to_cypher(query: &PgirQuery) -> String {
    let mut out = String::new();
    for clause in &query.clauses {
        match clause {
            PgirClause::Match(m) => {
                let _ = writeln!(out, "{}", match_to_cypher(m));
            }
            PgirClause::Where(w) => {
                let _ = writeln!(out, "WHERE {}", expr_to_cypher(&w.predicate));
            }
            PgirClause::With(w) => {
                let distinct = if w.distinct { "DISTINCT " } else { "" };
                let _ = writeln!(out, "WITH {}{}", distinct, items_to_cypher(&w.items));
                if let Some(h) = &w.having {
                    let _ = writeln!(out, "WHERE {}", expr_to_cypher(h));
                }
            }
            PgirClause::Return(r) => {
                let distinct = if r.distinct { "DISTINCT " } else { "" };
                let _ = writeln!(out, "RETURN {}{}", distinct, items_to_cypher(&r.items));
            }
            PgirClause::Unwind(u) => {
                let items = u
                    .values
                    .iter()
                    .map(|v| PgirExpr::Const(v.clone()).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "UNWIND [{items}] AS {}", u.alias);
            }
        }
    }
    out.trim_end().to_string()
}

/// Render a label-alternative list (`:A|B`); empty for unconstrained.
fn labels_to_cypher(labels: &[String]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!(":{}", labels.join("|"))
    }
}

fn match_to_cypher(m: &MatchConstruct) -> String {
    let kw = if m.optional { "OPTIONAL MATCH" } else { "MATCH" };
    let patterns: Vec<String> = m
        .patterns
        .iter()
        .map(|p| match p {
            PatternElem::Node(n) => node_to_cypher(&n.var, n.label.as_deref()),
            PatternElem::Edge(e) => {
                let rel = format!("[{}{}]", e.var, labels_to_cypher(&e.labels));
                let arrow = if e.directed { ">" } else { "" };
                format!(
                    "{}-{}-{}{}",
                    node_to_cypher(&e.src.var, e.src.label.as_deref()),
                    rel,
                    arrow,
                    node_to_cypher(&e.dst.var, e.dst.label.as_deref()),
                )
            }
            PatternElem::Path(p) => {
                let label = labels_to_cypher(&p.labels);
                let bounds = match (p.min_hops, p.max_hops) {
                    (1, None) => "*".to_string(),
                    (min, None) => format!("*{min}.."),
                    (min, Some(max)) => format!("*{min}..{max}"),
                };
                let arrow = if p.directed { ">" } else { "" };
                let body = format!(
                    "{}-[{label}{bounds}]-{}{}",
                    node_to_cypher(&p.src.var, p.src.label.as_deref()),
                    arrow,
                    node_to_cypher(&p.dst.var, p.dst.label.as_deref()),
                );
                match p.semantics {
                    PathSemantics::Reachability => body,
                    PathSemantics::Shortest => format!("{} = shortestPath({})", p.var, body),
                    PathSemantics::AllShortest => format!("{} = allShortestPaths({})", p.var, body),
                }
            }
            PatternElem::Chain(c) => {
                let mut body = node_to_cypher(&c.src.var, c.src.label.as_deref());
                for step in &c.steps {
                    let label = labels_to_cypher(&step.labels);
                    // A `1..1` step is a plain relationship; everything else
                    // keeps explicit bounds.
                    let bounds = match (step.min_hops, step.max_hops) {
                        (1, Some(1)) => String::new(),
                        (1, None) => "*".to_string(),
                        (min, None) => format!("*{min}.."),
                        (min, Some(max)) => format!("*{min}..{max}"),
                    };
                    let (left, right) = match (step.directed, step.forward) {
                        (true, true) => ("-", "->"),
                        (true, false) => ("<-", "-"),
                        (false, _) => ("-", "-"),
                    };
                    let _ = write!(
                        body,
                        "{left}[{label}{bounds}]{right}{}",
                        node_to_cypher(&step.node.var, step.node.label.as_deref()),
                    );
                }
                match c.semantics {
                    PathSemantics::AllShortest => {
                        format!("{} = allShortestPaths({})", c.var, body)
                    }
                    _ => format!("{} = shortestPath({})", c.var, body),
                }
            }
        })
        .collect();
    format!("{kw} {}", patterns.join(", "))
}

fn node_to_cypher(var: &str, label: Option<&str>) -> String {
    match label {
        Some(l) => format!("({var}:{l})"),
        None => format!("({var})"),
    }
}

fn items_to_cypher(items: &[OutputItem]) -> String {
    items
        .iter()
        .map(|i| format!("{} AS {}", expr_to_cypher(&i.expr), i.alias))
        .collect::<Vec<_>>()
        .join(", ")
}

fn expr_to_cypher(expr: &PgirExpr) -> String {
    match expr {
        PgirExpr::Cmp { op, lhs, rhs } => {
            let sym = match op {
                raqlet_pgir::CmpOp::Neq => "<>",
                other => other.symbol(),
            };
            format!("{} {} {}", expr_to_cypher(lhs), sym, expr_to_cypher(rhs))
        }
        PgirExpr::And(a, b) => format!("({} AND {})", expr_to_cypher(a), expr_to_cypher(b)),
        PgirExpr::Or(a, b) => format!("({} OR {})", expr_to_cypher(a), expr_to_cypher(b)),
        PgirExpr::Not(e) => format!("NOT ({})", expr_to_cypher(e)),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_pgir::{cypher_to_pgir, LowerOptions};

    fn round_trip(src: &str) -> String {
        let pgir = cypher_to_pgir(src, &LowerOptions::new()).unwrap();
        to_cypher(&pgir)
    }

    #[test]
    fn running_example_round_trips_through_pgir() {
        let text = round_trip(
            "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City) \
             RETURN DISTINCT n.firstName AS firstName, p.id AS cityId",
        );
        assert!(text.contains("MATCH (n:Person)-[x1:IS_LOCATED_IN]->(p:City)"), "{text}");
        assert!(text.contains("WHERE n.id = 42"), "{text}");
        assert!(
            text.contains("RETURN DISTINCT n.firstName AS firstName, p.id AS cityId"),
            "{text}"
        );
    }

    #[test]
    fn reparsing_the_unparsed_query_yields_equivalent_pgir() {
        let src = "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City) \
                   RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";
        let first = cypher_to_pgir(src, &LowerOptions::new()).unwrap();
        let text = to_cypher(&first);
        let second = cypher_to_pgir(&text, &LowerOptions::new()).unwrap();
        // The round trip is stable: unparse(parse(unparse(q))) == unparse(q).
        assert_eq!(to_cypher(&second), text);
    }

    #[test]
    fn variable_length_and_shortest_path_are_preserved() {
        let text =
            round_trip("MATCH (a:Person {id: 1})-[:KNOWS*1..2]->(b:Person) RETURN b.id AS id");
        assert!(text.contains("[:KNOWS*1..2]->"), "{text}");

        let sp = round_trip(
            "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) RETURN b.id AS id",
        );
        assert!(sp.contains("shortestPath("), "{sp}");
        assert!(sp.contains("[:KNOWS*]"), "{sp}");
    }

    #[test]
    fn unwind_and_alternative_types_round_trip() {
        let text = round_trip(
            "UNWIND [1, 2] AS pid MATCH (n:Person)-[:KNOWS|LIKES]->(m:Person) \
             RETURN n.id AS id",
        );
        assert!(text.contains("UNWIND [1, 2] AS pid"), "{text}");
        assert!(text.contains(":KNOWS|LIKES]->"), "{text}");
        // The rendering is a fixed point under re-parsing.
        let reparsed = cypher_to_pgir(&text, &LowerOptions::new()).unwrap();
        assert_eq!(to_cypher(&reparsed), text);
    }

    #[test]
    fn multi_hop_shortest_path_chains_round_trip() {
        let src =
            "MATCH p = shortestPath((a:Person)-[:KNOWS*]-(b:Person)<-[:HAS_CREATOR]-(m:Message)) \
                   RETURN m.id AS id";
        let text = round_trip(src);
        assert!(
            text.contains(
                "p = shortestPath((a:Person)-[:KNOWS*]-(b:Person)<-[:HAS_CREATOR]-(m:Message))"
            ),
            "{text}"
        );
        let reparsed = cypher_to_pgir(&text, &LowerOptions::new()).unwrap();
        assert_eq!(to_cypher(&reparsed), text);
    }

    #[test]
    fn with_aggregation_is_preserved() {
        let text = round_trip(
            "MATCH (p:Person)-[:KNOWS]->(f:Person) WITH f, count(p) AS cnt \
             RETURN f.id AS id, cnt AS cnt",
        );
        assert!(text.contains("WITH f AS f, count(p) AS cnt"), "{text}");
    }
}
