//! SQL unparser: SQIR → SQL text in several dialects.
//!
//! The output mirrors Figure 3e of the paper: a `WITH` (or `WITH RECURSIVE`)
//! chain of CTEs followed by a final `SELECT DISTINCT`. Dialects only differ
//! in small ways that matter for the targeted engines:
//!
//! * **Generic / DuckDB / HyPer** — `WITH RECURSIVE`, `UNION` between CTE
//!   branches;
//! * **Postgres** — identical to generic, kept as a named dialect so callers
//!   can be explicit about their target.

use std::fmt::Write as _;

use raqlet_sqir::{Cte, SelectStmt, SqirQuery};

/// The SQL dialect to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqlDialect {
    /// Portable SQL:1999-style recursive CTEs.
    #[default]
    Generic,
    /// DuckDB.
    DuckDb,
    /// Tableau HyPer.
    Hyper,
    /// PostgreSQL.
    Postgres,
}

impl SqlDialect {
    /// Human-readable name (used in reports and benchmarks).
    pub fn name(&self) -> &'static str {
        match self {
            SqlDialect::Generic => "generic",
            SqlDialect::DuckDb => "duckdb",
            SqlDialect::Hyper => "hyper",
            SqlDialect::Postgres => "postgres",
        }
    }
}

/// Render a SQIR query as SQL text in the given dialect.
pub fn to_sql(query: &SqirQuery, dialect: SqlDialect) -> String {
    let mut out = String::new();
    if !query.ctes.is_empty() {
        let with_kw = if query.needs_recursive { "WITH RECURSIVE" } else { "WITH" };
        let _ = write!(out, "{with_kw} ");
        for (i, cte) in query.ctes.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{}", cte_to_sql(cte, dialect));
        }
        out.push('\n');
    }
    out.push_str(&select_to_sql(&query.final_select, dialect, 0));
    out
}

fn cte_to_sql(cte: &Cte, dialect: SqlDialect) -> String {
    let cols = cte.columns.join(", ");
    let branches: Vec<String> = cte.branches.iter().map(|b| select_to_sql(b, dialect, 1)).collect();
    // UNION (distinct) keeps set semantics between branches and is what makes
    // the recursive fixpoint terminate.
    let body = branches.join("\n  UNION\n");
    format!("{} ({}) AS (\n{}\n)", cte.name, cols, body)
}

fn select_to_sql(stmt: &SelectStmt, _dialect: SqlDialect, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let mut out = String::new();
    let distinct = if stmt.distinct { "DISTINCT " } else { "" };
    let items = stmt
        .items
        .iter()
        .map(|i| format!("{} AS {}", i.expr, i.alias))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(out, "{pad}SELECT {distinct}{items}");
    if !stmt.from.is_empty() {
        let from = stmt
            .from
            .iter()
            .map(|f| format!("{} AS {}", f.table, f.alias))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(out, "\n{pad}FROM {from}");
    }
    if !stmt.where_conjuncts.is_empty() {
        let conds =
            stmt.where_conjuncts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(" AND ");
        let _ = write!(out, "\n{pad}WHERE {conds}");
    }
    if !stmt.group_by.is_empty() {
        let groups = stmt.group_by.iter().map(|g| g.to_string()).collect::<Vec<_>>().join(", ");
        let _ = write!(out, "\n{pad}GROUP BY {groups}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::schema::{Column, DlSchema, RelationDecl, RelationKind};
    use raqlet_common::ValueType;
    use raqlet_dlir::{Atom, BodyElem, DlirProgram, Rule};
    use raqlet_sqir::{lower_to_sqir, SqlLowerOptions};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn edge_schema() -> DlSchema {
        let mut s = DlSchema::new();
        s.add(RelationDecl::new(
            "edge",
            vec![Column::new("src", ValueType::Int), Column::new("dst", ValueType::Int)],
            RelationKind::BaseTable,
        ))
        .unwrap();
        s
    }

    fn tc_sql() -> String {
        let mut p = DlirProgram::new(edge_schema());
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let q = lower_to_sqir(&p, "tc", &SqlLowerOptions::default()).unwrap();
        to_sql(&q, SqlDialect::Generic)
    }

    #[test]
    fn recursive_cte_uses_with_recursive_and_union() {
        let sql = tc_sql();
        assert!(sql.starts_with("WITH RECURSIVE tc (x, y) AS ("), "{sql}");
        assert!(sql.contains("UNION"), "{sql}");
        assert!(sql.contains("SELECT DISTINCT OUT.x AS x, OUT.y AS y"), "{sql}");
        assert!(sql.contains("FROM tc AS OUT"), "{sql}");
    }

    #[test]
    fn non_recursive_chain_uses_plain_with() {
        let mut p = DlirProgram::new(edge_schema());
        p.add_rule(Rule::new(Atom::with_vars("V1", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(Atom::with_vars("Return", &["x"]), vec![atom("V1", &["x", "y"])]));
        p.add_output("Return");
        let q = lower_to_sqir(&p, "Return", &SqlLowerOptions::default()).unwrap();
        let sql = to_sql(&q, SqlDialect::DuckDb);
        assert!(sql.starts_with("WITH V1 (x, y) AS ("), "{sql}");
        assert!(!sql.contains("RECURSIVE"));
        assert!(sql.contains(", Return (x) AS ("), "{sql}");
    }

    #[test]
    fn where_clause_joins_conjuncts_with_and() {
        let mut p = DlirProgram::new(edge_schema());
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["a", "c"]),
            vec![atom("edge", &["a", "b"]), atom("edge", &["b", "c"])],
        ));
        p.add_output("q");
        let q = lower_to_sqir(&p, "q", &SqlLowerOptions::default()).unwrap();
        let sql = to_sql(&q, SqlDialect::Generic);
        assert!(sql.contains("FROM edge AS R1, edge AS R2"), "{sql}");
        assert!(sql.contains("WHERE (R1.dst = R2.src)"), "{sql}");
    }

    #[test]
    fn dialects_share_the_core_shape() {
        let generic = tc_sql();
        for dialect in [SqlDialect::DuckDb, SqlDialect::Hyper, SqlDialect::Postgres] {
            let mut p = DlirProgram::new(edge_schema());
            p.add_rule(Rule::new(
                Atom::with_vars("tc", &["x", "y"]),
                vec![atom("edge", &["x", "y"])],
            ));
            p.add_rule(Rule::new(
                Atom::with_vars("tc", &["x", "y"]),
                vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
            ));
            p.add_output("tc");
            let q = lower_to_sqir(&p, "tc", &SqlLowerOptions::default()).unwrap();
            assert_eq!(to_sql(&q, dialect), generic);
        }
    }

    #[test]
    fn dialect_names() {
        assert_eq!(SqlDialect::DuckDb.name(), "duckdb");
        assert_eq!(SqlDialect::Hyper.name(), "hyper");
        assert_eq!(SqlDialect::default().name(), "generic");
    }
}
