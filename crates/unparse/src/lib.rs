//! # raqlet-unparse
//!
//! Backend unparsers: the final stage of Raqlet's pipeline, turning IRs back
//! into executable query text (Figure 1's "Unparsers" box).
//!
//! * [`souffle`] — DLIR → Soufflé Datalog text (Figure 3d);
//! * [`sql`] — SQIR → SQL text in the DuckDB / HyPer / Postgres / generic
//!   dialects (Figure 3e);
//! * [`cypher`] — PGIR → Cypher text (the backend direction of the frontend
//!   language, used for round-tripping and for graph-engine execution).
//!
//! The IRs themselves also implement `Display` with compact debugging
//! renderings; the functions here produce *executable* programs.

pub mod cypher;
pub mod souffle;
pub mod sql;

pub use cypher::to_cypher;
pub use souffle::{rule_to_souffle, to_souffle, SouffleOptions};
pub use sql::{to_sql, SqlDialect};
