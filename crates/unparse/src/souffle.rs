//! Soufflé Datalog unparser.
//!
//! Produces a complete Soufflé program from a DLIR program: `.decl` lines for
//! every relation, `.input` directives for the EDBs, the rules, and `.output`
//! directives — the format shown in Figure 3d of the paper.

use std::fmt::Write as _;

use raqlet_common::schema::RelationKind;
use raqlet_common::Value;
use raqlet_dlir::{Aggregation, Atom, BodyElem, DlExpr, DlirProgram, Rule, Term};

/// Options for the Soufflé unparser.
#[derive(Debug, Clone, Default)]
pub struct SouffleOptions {
    /// Emit `.input` directives for extensional relations (facts loaded from
    /// TSV files), as a standalone Soufflé program would need.
    pub emit_input_directives: bool,
}

/// Render a DLIR program as Soufflé Datalog text.
pub fn to_souffle(program: &DlirProgram, options: &SouffleOptions) -> String {
    let mut out = String::new();

    // Declarations: EDBs first (schema order), then IDBs that have rules but
    // no declaration are synthesised from their first rule.
    for decl in program.schema.iter() {
        let cols = decl
            .columns
            .iter()
            .map(|c| format!("{}: {}", sanitize_identifier(&c.name), c.ty.souffle_name()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, ".decl {}({})", sanitize_identifier(&decl.name), cols);
        if options.emit_input_directives && decl.kind != RelationKind::Idb {
            let _ = writeln!(out, ".input {}", sanitize_identifier(&decl.name));
        }
    }
    for idb in program.idb_names() {
        if program.schema.get(&idb).is_none() {
            if let Some(rule) = program.rules_for(&idb).first() {
                let cols = (0..rule.head.arity())
                    .map(|i| match &rule.head.terms[i] {
                        Term::Var(v) => format!("{}: number", sanitize_identifier(v)),
                        _ => format!("c{i}: number"),
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, ".decl {}({})", sanitize_identifier(&idb), cols);
            }
        }
    }
    out.push('\n');

    for rule in &program.rules {
        let _ = writeln!(out, "{}", rule_to_souffle(rule));
    }
    out.push('\n');
    for output in &program.outputs {
        let _ = writeln!(out, ".output {}", sanitize_identifier(output));
    }
    out
}

/// Render one rule in Soufflé syntax.
pub fn rule_to_souffle(rule: &Rule) -> String {
    if rule.body.is_empty() && rule.aggregation.is_none() {
        return format!("{}.", atom_to_souffle(&rule.head));
    }
    let body: Vec<String> = rule.body.iter().map(body_elem_to_souffle).collect();
    match &rule.aggregation {
        None => format!("{} :- {}.", atom_to_souffle(&rule.head), body.join(", ")),
        Some(agg) => {
            // Soufflé's aggregate syntax: `c = count : { body }`,
            // `s = sum v : { body }`, etc. Group-by variables are implicitly
            // the other head variables, which must be bound by the outer
            // body; we re-state the body inside the aggregate.
            format!(
                "{} :- {}, {}.",
                atom_to_souffle(&rule.head),
                body.join(", "),
                aggregation_to_souffle(agg, &body)
            )
        }
    }
}

fn aggregation_to_souffle(agg: &Aggregation, body: &[String]) -> String {
    let func = match agg.func {
        raqlet_dlir::AggFunc::Count => "count",
        raqlet_dlir::AggFunc::Sum => "sum",
        raqlet_dlir::AggFunc::Min => "min",
        raqlet_dlir::AggFunc::Max => "max",
        raqlet_dlir::AggFunc::Avg => "mean",
    };
    let inner = body.join(", ");
    match (&agg.input_var, agg.func) {
        (None, _) => format!("{} = count : {{ {} }}", sanitize_identifier(&agg.output_var), inner),
        (Some(v), raqlet_dlir::AggFunc::Count) => format!(
            "{} = count : {{ {} }}",
            sanitize_identifier(&agg.output_var),
            // Counting a specific variable's bindings: Soufflé counts the
            // tuples of the inner body, which our set semantics already
            // deduplicates per (group, input).
            inner.replace("__input__", &sanitize_identifier(v))
        ),
        (Some(v), _) => format!(
            "{} = {} {} : {{ {} }}",
            sanitize_identifier(&agg.output_var),
            func,
            sanitize_identifier(v),
            inner
        ),
    }
}

/// Render an atom.
pub fn atom_to_souffle(atom: &Atom) -> String {
    let args = atom.terms.iter().map(term_to_souffle).collect::<Vec<_>>().join(", ");
    format!("{}({})", sanitize_identifier(&atom.relation), args)
}

fn body_elem_to_souffle(elem: &BodyElem) -> String {
    match elem {
        BodyElem::Atom(a) => atom_to_souffle(a),
        BodyElem::Negated(a) => format!("!{}", atom_to_souffle(a)),
        BodyElem::Constraint { op, lhs, rhs } => {
            format!("{} {} {}", expr_to_souffle(lhs), op.symbol(), expr_to_souffle(rhs))
        }
    }
}

fn term_to_souffle(term: &Term) -> String {
    match term {
        Term::Var(v) => sanitize_identifier(v),
        Term::Const(Value::Str(s)) => format!("\"{}\"", s.replace('"', "\\\"")),
        Term::Const(Value::Bool(b)) => if *b { "1" } else { "0" }.to_string(),
        Term::Const(Value::Null) => "nil".to_string(),
        Term::Const(v) => v.to_string(),
        Term::Wildcard => "_".to_string(),
    }
}

fn expr_to_souffle(expr: &DlExpr) -> String {
    match expr {
        DlExpr::Var(v) => sanitize_identifier(v),
        DlExpr::Const(Value::Str(s)) => format!("\"{}\"", s.replace('"', "\\\"")),
        DlExpr::Const(v) => v.to_string(),
        DlExpr::Arith { op, lhs, rhs } => {
            format!("({} {} {})", expr_to_souffle(lhs), op.symbol(), expr_to_souffle(rhs))
        }
    }
}

/// Soufflé identifiers must match `[a-zA-Z?][a-zA-Z0-9_?]*`; anything else is
/// replaced by underscores.
fn sanitize_identifier(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '_' || c == '?' { c } else { '_' })
        .collect();
    if s.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        s.insert(0, 'r');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::schema::{Column, DlSchema, RelationDecl, RelationKind};
    use raqlet_common::ValueType;
    use raqlet_dlir::CmpOp;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    #[test]
    fn declarations_match_figure_2b() {
        let mut schema = DlSchema::new();
        schema
            .add(RelationDecl::new(
                "Person",
                vec![
                    Column::new("id", ValueType::Int),
                    Column::new("firstName", ValueType::Text),
                    Column::new("locationIP", ValueType::Text),
                ],
                RelationKind::NodeEdb,
            ))
            .unwrap();
        let program = DlirProgram::new(schema);
        let text = to_souffle(&program, &SouffleOptions::default());
        assert!(text.contains(".decl Person(id: number, firstName: symbol, locationIP: symbol)"));
    }

    #[test]
    fn rules_and_outputs_are_rendered() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_output("tc");
        let text = to_souffle(&p, &SouffleOptions::default());
        assert!(text.contains("tc(x, y) :- edge(x, y)."));
        assert!(text.contains("tc(x, y) :- tc(x, z), edge(z, y)."));
        assert!(text.contains(".output tc"));
        // Undeclared IDBs get a synthesised .decl.
        assert!(text.contains(".decl tc("));
    }

    #[test]
    fn input_directives_are_optional() {
        let mut schema = DlSchema::new();
        schema
            .add(RelationDecl::new(
                "edge",
                vec![Column::new("src", ValueType::Int), Column::new("dst", ValueType::Int)],
                RelationKind::BaseTable,
            ))
            .unwrap();
        let p = DlirProgram::new(schema);
        let without = to_souffle(&p, &SouffleOptions::default());
        assert!(!without.contains(".input"));
        let with = to_souffle(&p, &SouffleOptions { emit_input_directives: true });
        assert!(with.contains(".input edge"));
    }

    #[test]
    fn constraints_and_negation_are_rendered() {
        let rule = Rule::new(
            Atom::with_vars("q", &["x"]),
            vec![
                atom("node", &["x"]),
                BodyElem::Negated(Atom::with_vars("blocked", &["x"])),
                BodyElem::Constraint { op: CmpOp::Neq, lhs: DlExpr::var("x"), rhs: DlExpr::int(0) },
            ],
        );
        assert_eq!(rule_to_souffle(&rule), "q(x) :- node(x), !blocked(x), x != 0.");
    }

    #[test]
    fn string_constants_are_quoted_and_escaped() {
        let rule = Rule::new(Atom::new("q", vec![Term::Const(Value::str("say \"hi\""))]), vec![]);
        assert_eq!(rule_to_souffle(&rule), "q(\"say \\\"hi\\\"\").");
    }

    #[test]
    fn aggregation_uses_souffle_aggregate_syntax() {
        use raqlet_dlir::{AggFunc, Aggregation};
        let mut rule =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        rule.aggregation = Some(Aggregation {
            func: AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        let text = rule_to_souffle(&rule);
        assert!(text.contains("d = count : {"), "{text}");
    }

    #[test]
    fn identifiers_are_sanitised() {
        assert_eq!(sanitize_identifier("Person_KNOWS_Person"), "Person_KNOWS_Person");
        assert_eq!(sanitize_identifier("weird name"), "weird_name");
        assert_eq!(sanitize_identifier("1abc"), "r1abc");
    }
}
