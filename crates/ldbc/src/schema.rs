//! The LDBC SNB-like property-graph schema used throughout the examples,
//! tests and benchmarks (a simplified version of the schema in Figure 2 of
//! the paper, extended with the entities the interactive read queries touch).

/// PG-Schema (`CREATE GRAPH`) declaration of the social network.
///
/// Node keys are always the first property (`id`), matching the paper's
/// convention that the node id occupies the first position of the generated
/// EDB.
pub const SNB_PG_SCHEMA: &str = r#"
CREATE GRAPH {
  (personType  : Person  { id INT, firstName STRING, lastName STRING, gender STRING,
                           birthday INT, creationDate INT, locationIP STRING, browserUsed STRING }),
  (cityType    : City    { id INT, name STRING }),
  (countryType : Country { id INT, name STRING }),
  (messageType : Message { id INT, creationDate INT, content STRING, length INT }),
  (tagType     : Tag     { id INT, name STRING }),

  (:personType)-[knowsType     : knows       { id INT, creationDate INT }]->(:personType),
  (:personType)-[followsType   : follows     { id INT, creationDate INT }]->(:personType),
  (:personType)-[locationType  : isLocatedIn { id INT }]->(:cityType),
  (:cityType)-[partOfType      : isPartOf    { id INT }]->(:countryType),
  (:messageType)-[creatorType  : hasCreator  { id INT }]->(:personType),
  (:messageType)-[replyType    : replyOf     { id INT }]->(:messageType),
  (:personType)-[likesType     : likes       { id INT, creationDate INT }]->(:messageType),
  (:messageType)-[hasTagType   : hasTag      { id INT }]->(:tagType)
}
"#;

/// Names of the edge EDBs the schema generates, in declaration order. Useful
/// for loaders and tests.
pub const EDGE_EDB_NAMES: &[&str] = &[
    "Person_KNOWS_Person",
    "Person_FOLLOWS_Person",
    "Person_IS_LOCATED_IN_City",
    "City_IS_PART_OF_Country",
    "Message_HAS_CREATOR_Person",
    "Message_REPLY_OF_Message",
    "Person_LIKES_Message",
    "Message_HAS_TAG_Tag",
];

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::ValueType;

    #[test]
    fn schema_parses_and_generates_expected_edbs() {
        let pg = raqlet_cypher::parse_pg_schema(SNB_PG_SCHEMA).unwrap();
        assert_eq!(pg.nodes.len(), 5);
        assert_eq!(pg.edges.len(), 8);
        let dl = raqlet_dlir::generate_dl_schema(&pg).unwrap();
        for name in EDGE_EDB_NAMES {
            assert!(dl.contains(name), "missing EDB {name}");
        }
        let person = dl.get("Person").unwrap();
        assert_eq!(person.arity(), 8);
        assert_eq!(person.columns[0].name, "id");
        assert_eq!(person.columns[0].ty, ValueType::Int);
    }

    #[test]
    fn person_knows_person_has_edge_properties() {
        let pg = raqlet_cypher::parse_pg_schema(SNB_PG_SCHEMA).unwrap();
        let dl = raqlet_dlir::generate_dl_schema(&pg).unwrap();
        let knows = dl.get("Person_KNOWS_Person").unwrap();
        // id1, id2, id, creationDate
        assert_eq!(knows.arity(), 4);
        assert_eq!(knows.columns[0].name, "id1");
        assert_eq!(knows.columns[3].name, "creationDate");
    }
}
