//! Loaders: turn a generated [`SocialNetwork`]
//! into the representations each execution substrate consumes:
//!
//! * a relational / deductive [`Database`] whose relation names follow the
//!   DL-Schema generated from [`crate::schema::SNB_PG_SCHEMA`]
//!   (`Person`, `Person_KNOWS_Person`, ...), shared by the Datalog and SQL
//!   engines;
//! * a [`PropertyGraph`] for the graph engine.
//!
//! The relational loader is a **bulk-load fast path**: each row is encoded
//! straight into the relation's packed arena through the database's shared
//! value dictionary — integers pack inline, strings intern once — with a
//! single reused cell buffer, so loading allocates no per-row `Vec<Value>`
//! and copies no repeated string (genders, browsers, tag names intern to
//! dictionary ids on first sight).

use raqlet_common::cell::ValueDict;
use raqlet_common::{Cell, Database, Value};
use raqlet_engine::PropertyGraph;

use crate::generator::SocialNetwork;

/// A reusable packed-row builder for bulk loading: encodes primitive values
/// into a cell buffer against the database's dictionary.
struct RowBuf {
    dict: std::sync::Arc<ValueDict>,
    cells: Vec<Cell>,
}

impl RowBuf {
    fn new(db: &Database) -> RowBuf {
        RowBuf { dict: db.dict().clone(), cells: Vec::with_capacity(8) }
    }

    fn start(&mut self) -> &mut Self {
        self.cells.clear();
        self
    }

    fn int(&mut self, v: i64) -> &mut Self {
        self.cells.push(self.dict.encode_int(v));
        self
    }

    fn str(&mut self, s: &str) -> &mut Self {
        self.cells.push(self.dict.encode_str(s));
        self
    }
}

/// Load the network into a relational/deductive database following the
/// generated DL-Schema's relation and column layout.
pub fn to_database(network: &SocialNetwork) -> Database {
    let mut db = Database::new();
    let mut row = RowBuf::new(&db);
    // Node EDBs: the first column is the key, remaining columns follow the
    // PG-Schema property order.
    {
        let rel = db.get_or_create("Person", 8);
        for p in &network.persons {
            row.start()
                .int(p.id)
                .str(&p.first_name)
                .str(&p.last_name)
                .str(&p.gender)
                .int(p.birthday)
                .int(p.creation_date)
                .str(&p.location_ip)
                .str(&p.browser_used);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("City", 2);
        for (id, name) in &network.cities {
            row.start().int(*id).str(name);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Country", 2);
        for (id, name) in &network.countries {
            row.start().int(*id).str(name);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Tag", 2);
        for (id, name) in &network.tags {
            row.start().int(*id).str(name);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Message", 4);
        for m in &network.messages {
            row.start().int(m.id).int(m.creation_date).str(&m.content).int(m.length);
            rel.insert_cells(&row.cells);
        }
    }

    // Edge EDBs: id1, id2, then the edge's own properties (synthetic edge ids).
    let mut edge_id = 1i64;
    let mut next_edge_id = || {
        let id = edge_id;
        edge_id += 1;
        id
    };
    {
        let rel = db.get_or_create("Person_KNOWS_Person", 4);
        for (a, b, date) in &network.knows {
            row.start().int(*a).int(*b).int(next_edge_id()).int(*date);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Person_FOLLOWS_Person", 4);
        for (a, b, date) in &network.follows {
            row.start().int(*a).int(*b).int(next_edge_id()).int(*date);
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Person_IS_LOCATED_IN_City", 3);
        for p in &network.persons {
            row.start().int(p.id).int(p.city).int(next_edge_id());
            rel.insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("City_IS_PART_OF_Country", 3);
        for (city, country) in &network.city_in_country {
            row.start().int(*city).int(*country).int(next_edge_id());
            rel.insert_cells(&row.cells);
        }
    }
    for m in &network.messages {
        row.start().int(m.id).int(m.creator).int(next_edge_id());
        db.get_or_create("Message_HAS_CREATOR_Person", 3).insert_cells(&row.cells);
        if let Some(parent) = m.reply_of {
            row.start().int(m.id).int(parent).int(next_edge_id());
            db.get_or_create("Message_REPLY_OF_Message", 3).insert_cells(&row.cells);
        }
        for tag in &m.tags {
            row.start().int(m.id).int(*tag).int(next_edge_id());
            db.get_or_create("Message_HAS_TAG_Tag", 3).insert_cells(&row.cells);
        }
    }
    {
        let rel = db.get_or_create("Person_LIKES_Message", 4);
        for (person, message, date) in &network.likes {
            row.start().int(*person).int(*message).int(next_edge_id()).int(*date);
            rel.insert_cells(&row.cells);
        }
    }
    db
}

/// Load the network into a property graph for the graph engine.
pub fn to_property_graph(network: &SocialNetwork) -> PropertyGraph {
    let mut graph = PropertyGraph::new();
    let mut person_idx = std::collections::HashMap::new();
    let mut city_idx = std::collections::HashMap::new();
    let mut country_idx = std::collections::HashMap::new();
    let mut message_idx = std::collections::HashMap::new();
    let mut tag_idx = std::collections::HashMap::new();

    for p in &network.persons {
        let idx = graph
            .add_node(
                "Person",
                vec![
                    ("id", Value::Int(p.id)),
                    ("firstName", Value::str(&p.first_name)),
                    ("lastName", Value::str(&p.last_name)),
                    ("gender", Value::str(&p.gender)),
                    ("birthday", Value::Int(p.birthday)),
                    ("creationDate", Value::Int(p.creation_date)),
                    ("locationIP", Value::str(&p.location_ip)),
                    ("browserUsed", Value::str(&p.browser_used)),
                ],
            )
            .unwrap();
        person_idx.insert(p.id, idx);
    }
    for (id, name) in &network.cities {
        let idx = graph
            .add_node("City", vec![("id", Value::Int(*id)), ("name", Value::str(name))])
            .unwrap();
        city_idx.insert(*id, idx);
    }
    for (id, name) in &network.countries {
        let idx = graph
            .add_node("Country", vec![("id", Value::Int(*id)), ("name", Value::str(name))])
            .unwrap();
        country_idx.insert(*id, idx);
    }
    for (id, name) in &network.tags {
        let idx = graph
            .add_node("Tag", vec![("id", Value::Int(*id)), ("name", Value::str(name))])
            .unwrap();
        tag_idx.insert(*id, idx);
    }
    for m in &network.messages {
        let idx = graph
            .add_node(
                "Message",
                vec![
                    ("id", Value::Int(m.id)),
                    ("creationDate", Value::Int(m.creation_date)),
                    ("content", Value::str(&m.content)),
                    ("length", Value::Int(m.length)),
                ],
            )
            .unwrap();
        message_idx.insert(m.id, idx);
    }

    let mut edge_id = 1i64;
    let mut next = || {
        let id = edge_id;
        edge_id += 1;
        id
    };
    for (a, b, date) in &network.knows {
        graph
            .add_edge(
                "KNOWS",
                person_idx[a],
                person_idx[b],
                vec![("id", Value::Int(next())), ("creationDate", Value::Int(*date))],
            )
            .unwrap();
    }
    for (a, b, date) in &network.follows {
        graph
            .add_edge(
                "FOLLOWS",
                person_idx[a],
                person_idx[b],
                vec![("id", Value::Int(next())), ("creationDate", Value::Int(*date))],
            )
            .unwrap();
    }
    for p in &network.persons {
        graph
            .add_edge(
                "IS_LOCATED_IN",
                person_idx[&p.id],
                city_idx[&p.city],
                vec![("id", Value::Int(next()))],
            )
            .unwrap();
    }
    for (city, country) in &network.city_in_country {
        graph
            .add_edge(
                "IS_PART_OF",
                city_idx[city],
                country_idx[country],
                vec![("id", Value::Int(next()))],
            )
            .unwrap();
    }
    for m in &network.messages {
        graph
            .add_edge(
                "HAS_CREATOR",
                message_idx[&m.id],
                person_idx[&m.creator],
                vec![("id", Value::Int(next()))],
            )
            .unwrap();
        if let Some(parent) = m.reply_of {
            graph
                .add_edge(
                    "REPLY_OF",
                    message_idx[&m.id],
                    message_idx[&parent],
                    vec![("id", Value::Int(next()))],
                )
                .unwrap();
        }
        for tag in &m.tags {
            graph
                .add_edge(
                    "HAS_TAG",
                    message_idx[&m.id],
                    tag_idx[tag],
                    vec![("id", Value::Int(next()))],
                )
                .unwrap();
        }
    }
    for (person, message, date) in &network.likes {
        graph
            .add_edge(
                "LIKES",
                person_idx[person],
                message_idx[message],
                vec![("id", Value::Int(next())), ("creationDate", Value::Int(*date))],
            )
            .unwrap();
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn small_network() -> SocialNetwork {
        generate(&GeneratorConfig { scale: 0.2, seed: 7 })
    }

    #[test]
    fn database_relations_match_the_dl_schema() {
        let net = small_network();
        let db = to_database(&net);
        let pg = raqlet_cypher::parse_pg_schema(crate::schema::SNB_PG_SCHEMA).unwrap();
        let dl = raqlet_dlir::generate_dl_schema(&pg).unwrap();
        for (name, relation) in db.iter() {
            let decl = dl.get(name).unwrap_or_else(|| panic!("relation `{name}` not in schema"));
            assert_eq!(relation.arity(), decl.arity(), "arity mismatch for `{name}`");
        }
        assert_eq!(db.get("Person").unwrap().len(), net.persons.len());
        assert_eq!(db.get("Person_KNOWS_Person").unwrap().len(), net.knows.len());
    }

    #[test]
    fn property_graph_counts_match_the_network() {
        let net = small_network();
        let graph = to_property_graph(&net);
        let expected_nodes = net.persons.len()
            + net.cities.len()
            + net.countries.len()
            + net.tags.len()
            + net.messages.len();
        assert_eq!(graph.node_count(), expected_nodes);
        assert!(graph.edge_count() >= net.knows.len() + net.persons.len() + net.messages.len());
    }

    #[test]
    fn both_loaders_agree_on_person_count() {
        let net = small_network();
        let db = to_database(&net);
        let graph = to_property_graph(&net);
        assert_eq!(db.get("Person").unwrap().len(), graph.nodes_with_label("Person").len());
    }
}
