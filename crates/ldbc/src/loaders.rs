//! Loaders: turn a generated [`SocialNetwork`]
//! into the representations each execution substrate consumes:
//!
//! * a relational / deductive [`Database`] whose relation names follow the
//!   DL-Schema generated from [`crate::schema::SNB_PG_SCHEMA`]
//!   (`Person`, `Person_KNOWS_Person`, ...), shared by the Datalog and SQL
//!   engines;
//! * a [`PropertyGraph`] for the graph engine.

use raqlet_common::{Database, Value};
use raqlet_engine::PropertyGraph;

use crate::generator::SocialNetwork;

/// Load the network into a relational/deductive database following the
/// generated DL-Schema's relation and column layout.
pub fn to_database(network: &SocialNetwork) -> Database {
    let mut db = Database::new();
    // Node EDBs: the first column is the key, remaining columns follow the
    // PG-Schema property order.
    for p in &network.persons {
        db.insert_fact(
            "Person",
            vec![
                Value::Int(p.id),
                Value::str(&p.first_name),
                Value::str(&p.last_name),
                Value::str(&p.gender),
                Value::Int(p.birthday),
                Value::Int(p.creation_date),
                Value::str(&p.location_ip),
                Value::str(&p.browser_used),
            ],
        )
        .expect("person arity");
    }
    for (id, name) in &network.cities {
        db.insert_fact("City", vec![Value::Int(*id), Value::str(name)]).expect("city arity");
    }
    for (id, name) in &network.countries {
        db.insert_fact("Country", vec![Value::Int(*id), Value::str(name)]).expect("country arity");
    }
    for (id, name) in &network.tags {
        db.insert_fact("Tag", vec![Value::Int(*id), Value::str(name)]).expect("tag arity");
    }
    for m in &network.messages {
        db.insert_fact(
            "Message",
            vec![
                Value::Int(m.id),
                Value::Int(m.creation_date),
                Value::str(&m.content),
                Value::Int(m.length),
            ],
        )
        .expect("message arity");
    }

    // Edge EDBs: id1, id2, then the edge's own properties (synthetic edge ids).
    let mut edge_id = 1i64;
    let mut next_edge_id = || {
        let id = edge_id;
        edge_id += 1;
        id
    };
    for (a, b, date) in &network.knows {
        db.insert_fact(
            "Person_KNOWS_Person",
            vec![Value::Int(*a), Value::Int(*b), Value::Int(next_edge_id()), Value::Int(*date)],
        )
        .expect("knows arity");
    }
    for p in &network.persons {
        db.insert_fact(
            "Person_IS_LOCATED_IN_City",
            vec![Value::Int(p.id), Value::Int(p.city), Value::Int(next_edge_id())],
        )
        .expect("located arity");
    }
    for (city, country) in &network.city_in_country {
        db.insert_fact(
            "City_IS_PART_OF_Country",
            vec![Value::Int(*city), Value::Int(*country), Value::Int(next_edge_id())],
        )
        .expect("part-of arity");
    }
    for m in &network.messages {
        db.insert_fact(
            "Message_HAS_CREATOR_Person",
            vec![Value::Int(m.id), Value::Int(m.creator), Value::Int(next_edge_id())],
        )
        .expect("creator arity");
        if let Some(parent) = m.reply_of {
            db.insert_fact(
                "Message_REPLY_OF_Message",
                vec![Value::Int(m.id), Value::Int(parent), Value::Int(next_edge_id())],
            )
            .expect("reply arity");
        }
        for tag in &m.tags {
            db.insert_fact(
                "Message_HAS_TAG_Tag",
                vec![Value::Int(m.id), Value::Int(*tag), Value::Int(next_edge_id())],
            )
            .expect("tag edge arity");
        }
    }
    for (person, message, date) in &network.likes {
        db.insert_fact(
            "Person_LIKES_Message",
            vec![
                Value::Int(*person),
                Value::Int(*message),
                Value::Int(next_edge_id()),
                Value::Int(*date),
            ],
        )
        .expect("likes arity");
    }
    db
}

/// Load the network into a property graph for the graph engine.
pub fn to_property_graph(network: &SocialNetwork) -> PropertyGraph {
    let mut graph = PropertyGraph::new();
    let mut person_idx = std::collections::HashMap::new();
    let mut city_idx = std::collections::HashMap::new();
    let mut country_idx = std::collections::HashMap::new();
    let mut message_idx = std::collections::HashMap::new();
    let mut tag_idx = std::collections::HashMap::new();

    for p in &network.persons {
        let idx = graph.add_node(
            "Person",
            vec![
                ("id", Value::Int(p.id)),
                ("firstName", Value::str(&p.first_name)),
                ("lastName", Value::str(&p.last_name)),
                ("gender", Value::str(&p.gender)),
                ("birthday", Value::Int(p.birthday)),
                ("creationDate", Value::Int(p.creation_date)),
                ("locationIP", Value::str(&p.location_ip)),
                ("browserUsed", Value::str(&p.browser_used)),
            ],
        );
        person_idx.insert(p.id, idx);
    }
    for (id, name) in &network.cities {
        let idx = graph.add_node("City", vec![("id", Value::Int(*id)), ("name", Value::str(name))]);
        city_idx.insert(*id, idx);
    }
    for (id, name) in &network.countries {
        let idx =
            graph.add_node("Country", vec![("id", Value::Int(*id)), ("name", Value::str(name))]);
        country_idx.insert(*id, idx);
    }
    for (id, name) in &network.tags {
        let idx = graph.add_node("Tag", vec![("id", Value::Int(*id)), ("name", Value::str(name))]);
        tag_idx.insert(*id, idx);
    }
    for m in &network.messages {
        let idx = graph.add_node(
            "Message",
            vec![
                ("id", Value::Int(m.id)),
                ("creationDate", Value::Int(m.creation_date)),
                ("content", Value::str(&m.content)),
                ("length", Value::Int(m.length)),
            ],
        );
        message_idx.insert(m.id, idx);
    }

    let mut edge_id = 1i64;
    let mut next = || {
        let id = edge_id;
        edge_id += 1;
        id
    };
    for (a, b, date) in &network.knows {
        graph.add_edge(
            "KNOWS",
            person_idx[a],
            person_idx[b],
            vec![("id", Value::Int(next())), ("creationDate", Value::Int(*date))],
        );
    }
    for p in &network.persons {
        graph.add_edge(
            "IS_LOCATED_IN",
            person_idx[&p.id],
            city_idx[&p.city],
            vec![("id", Value::Int(next()))],
        );
    }
    for (city, country) in &network.city_in_country {
        graph.add_edge(
            "IS_PART_OF",
            city_idx[city],
            country_idx[country],
            vec![("id", Value::Int(next()))],
        );
    }
    for m in &network.messages {
        graph.add_edge(
            "HAS_CREATOR",
            message_idx[&m.id],
            person_idx[&m.creator],
            vec![("id", Value::Int(next()))],
        );
        if let Some(parent) = m.reply_of {
            graph.add_edge(
                "REPLY_OF",
                message_idx[&m.id],
                message_idx[&parent],
                vec![("id", Value::Int(next()))],
            );
        }
        for tag in &m.tags {
            graph.add_edge(
                "HAS_TAG",
                message_idx[&m.id],
                tag_idx[tag],
                vec![("id", Value::Int(next()))],
            );
        }
    }
    for (person, message, date) in &network.likes {
        graph.add_edge(
            "LIKES",
            person_idx[person],
            message_idx[message],
            vec![("id", Value::Int(next())), ("creationDate", Value::Int(*date))],
        );
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn small_network() -> SocialNetwork {
        generate(&GeneratorConfig { scale: 0.2, seed: 7 })
    }

    #[test]
    fn database_relations_match_the_dl_schema() {
        let net = small_network();
        let db = to_database(&net);
        let pg = raqlet_cypher::parse_pg_schema(crate::schema::SNB_PG_SCHEMA).unwrap();
        let dl = raqlet_dlir::generate_dl_schema(&pg).unwrap();
        for (name, relation) in db.iter() {
            let decl = dl.get(name).unwrap_or_else(|| panic!("relation `{name}` not in schema"));
            assert_eq!(relation.arity(), decl.arity(), "arity mismatch for `{name}`");
        }
        assert_eq!(db.get("Person").unwrap().len(), net.persons.len());
        assert_eq!(db.get("Person_KNOWS_Person").unwrap().len(), net.knows.len());
    }

    #[test]
    fn property_graph_counts_match_the_network() {
        let net = small_network();
        let graph = to_property_graph(&net);
        let expected_nodes = net.persons.len()
            + net.cities.len()
            + net.countries.len()
            + net.tags.len()
            + net.messages.len();
        assert_eq!(graph.node_count(), expected_nodes);
        assert!(graph.edge_count() >= net.knows.len() + net.persons.len() + net.messages.len());
    }

    #[test]
    fn both_loaders_agree_on_person_count() {
        let net = small_network();
        let db = to_database(&net);
        let graph = to_property_graph(&net);
        assert_eq!(db.get("Person").unwrap().len(), graph.nodes_with_label("Person").len());
    }
}
