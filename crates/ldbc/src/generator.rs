//! Deterministic synthetic social-network generator.
//!
//! The paper evaluates on LDBC SNB SF10, which needs the official (large,
//! external) data generator. This module substitutes a deterministic
//! generator that reproduces the *structural properties* the interactive
//! read queries depend on — a skewed friendship (KNOWS) degree distribution,
//! message fan-out per person, reply chains, and person→city→country
//! placement — at laptop scale, parameterised by a scale factor
//! (see DESIGN.md §3 for the substitution rationale).

use raqlet_common::SplitMix64;

/// One person row.
#[derive(Debug, Clone)]
pub struct Person {
    pub id: i64,
    pub first_name: String,
    pub last_name: String,
    pub gender: String,
    pub birthday: i64,
    pub creation_date: i64,
    pub location_ip: String,
    pub browser_used: String,
    /// City id the person is located in.
    pub city: i64,
}

/// One message (post or comment) row.
#[derive(Debug, Clone)]
pub struct Message {
    pub id: i64,
    pub creation_date: i64,
    pub content: String,
    pub length: i64,
    /// Creator person id.
    pub creator: i64,
    /// Message this one replies to, if any.
    pub reply_of: Option<i64>,
    /// Tag ids attached to the message.
    pub tags: Vec<i64>,
}

/// The generated social network.
#[derive(Debug, Clone, Default)]
pub struct SocialNetwork {
    pub persons: Vec<Person>,
    pub cities: Vec<(i64, String)>,
    pub countries: Vec<(i64, String)>,
    /// (city, country) placement.
    pub city_in_country: Vec<(i64, i64)>,
    /// (person, person, creationDate) friendships, stored once per direction
    /// they were created in (KNOWS is traversed undirected by the queries).
    pub knows: Vec<(i64, i64, i64)>,
    /// (follower, followee, creationDate) follows — the second, sparser
    /// person-to-person relation, used by the `:KNOWS|FOLLOWS` alternative
    /// relationship-type queries.
    pub follows: Vec<(i64, i64, i64)>,
    pub messages: Vec<Message>,
    pub tags: Vec<(i64, String)>,
    /// (person, message, creationDate) likes.
    pub likes: Vec<(i64, i64, i64)>,
}

impl SocialNetwork {
    /// Total number of entities (a rough dataset-size indicator for reports).
    pub fn total_entities(&self) -> usize {
        self.persons.len()
            + self.cities.len()
            + self.countries.len()
            + self.knows.len()
            + self.follows.len()
            + self.messages.len()
            + self.likes.len()
    }

    /// The id of a person guaranteed to exist and to have friends and
    /// messages — used as the parameter of the benchmark queries.
    pub fn sample_person(&self) -> i64 {
        self.persons.first().map(|p| p.id).unwrap_or(0)
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Scale factor: person count is `100 × scale`, messages `6 ×` persons.
    pub scale: f64,
    /// RNG seed (the generator is fully deterministic for a given seed).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { scale: 1.0, seed: 42 }
    }
}

const FIRST_NAMES: &[&str] =
    &["Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy"];
const LAST_NAMES: &[&str] =
    &["Smith", "Jones", "Brown", "Wilson", "Taylor", "Khan", "Li", "Garcia", "Muller", "Rossi"];
const BROWSERS: &[&str] = &["Firefox", "Chrome", "Safari", "Edge"];
const CITY_NAMES: &[&str] =
    &["Edinburgh", "Glasgow", "London", "Paris", "Berlin", "Madrid", "Rome", "Vienna"];
const COUNTRY_NAMES: &[&str] =
    &["United_Kingdom", "France", "Germany", "Spain", "Italy", "Austria"];
const TAG_NAMES: &[&str] = &["databases", "graphs", "datalog", "compilers", "recursion", "rust"];

/// Generate a social network.
pub fn generate(config: &GeneratorConfig) -> SocialNetwork {
    let mut rng = SplitMix64::seed_from_u64(config.seed);
    let person_count = ((100.0 * config.scale).round() as i64).max(10);
    let message_count = person_count * 6;

    let mut network = SocialNetwork::default();

    // Places.
    for (i, name) in COUNTRY_NAMES.iter().enumerate() {
        network.countries.push((9000 + i as i64, (*name).to_string()));
    }
    for (i, name) in CITY_NAMES.iter().enumerate() {
        let id = 8000 + i as i64;
        network.cities.push((id, (*name).to_string()));
        let country = network.countries[i % network.countries.len()].0;
        network.city_in_country.push((id, country));
    }
    for (i, name) in TAG_NAMES.iter().enumerate() {
        network.tags.push((7000 + i as i64, (*name).to_string()));
    }

    // Persons.
    for i in 0..person_count {
        let id = 1000 + i;
        let city = network.cities[rng.gen_index(0..network.cities.len())].0;
        network.persons.push(Person {
            id,
            first_name: FIRST_NAMES[rng.gen_index(0..FIRST_NAMES.len())].to_string(),
            last_name: LAST_NAMES[rng.gen_index(0..LAST_NAMES.len())].to_string(),
            gender: if rng.gen_bool(0.5) { "male" } else { "female" }.to_string(),
            birthday: 19_600_101 + rng.gen_range(0..400_000),
            creation_date: 20_100_101 + rng.gen_range(0..90_000),
            location_ip: format!(
                "{}.{}.{}.{}",
                rng.gen_range(1..255),
                rng.gen_range(0..255),
                rng.gen_range(0..255),
                rng.gen_range(1..255)
            ),
            browser_used: BROWSERS[rng.gen_index(0..BROWSERS.len())].to_string(),
            city,
        });
    }

    // Friendships: preferential attachment-ish — earlier persons accumulate
    // more friends, giving the skewed degree distribution SNB exhibits.
    for i in 1..person_count {
        let friends = 2 + (rng.gen_range(0..6) * rng.gen_range(0..2));
        for _ in 0..friends {
            let j = rng.gen_range(0..i);
            let a = 1000 + i;
            let b = 1000 + j;
            let date = 20_110_101 + rng.gen_range(0..80_000);
            if !network.knows.iter().any(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a)) {
                network.knows.push((a, b, date));
            }
        }
    }

    // Follows: a sparser directed person→person relation (roughly half the
    // density of KNOWS, no symmetry requirement, at most one followee per
    // person so every edge is unique by construction). The first person
    // always follows someone, keeping the benchmark parameter useful.
    for i in 0..person_count {
        if i != 0 && !rng.gen_bool(0.5) {
            continue;
        }
        let j =
            if i == 0 { rng.gen_range(1..person_count) } else { rng.gen_range(0..person_count) };
        if i == j {
            continue;
        }
        let date = 20_110_101 + rng.gen_range(0..80_000);
        network.follows.push((1000 + i, 1000 + j, date));
    }

    // Messages: skew creators toward low ids (active users), occasional
    // replies to earlier messages, one or two tags.
    for i in 0..message_count {
        let id = 100_000 + i;
        let creator_idx =
            (rng.gen_range(0..person_count) * rng.gen_range(1..4) / 3).min(person_count - 1);
        let creator = 1000 + creator_idx;
        let reply_of =
            if i > 0 && rng.gen_bool(0.4) { Some(100_000 + rng.gen_range(0..i)) } else { None };
        let tag_count = rng.gen_range(0..3);
        let tags =
            (0..tag_count).map(|_| network.tags[rng.gen_index(0..network.tags.len())].0).collect();
        let length = rng.gen_range(10..200);
        network.messages.push(Message {
            id,
            creation_date: 20_120_101 + rng.gen_range(0..70_000),
            content: format!("message-{id}"),
            length,
            creator,
            reply_of,
            tags,
        });
    }

    // Likes.
    for _ in 0..(message_count / 2) {
        let person = 1000 + rng.gen_range(0..person_count);
        let message = 100_000 + rng.gen_range(0..message_count);
        let date = 20_130_101 + rng.gen_range(0..60_000);
        if !network.likes.iter().any(|(p, m, _)| *p == person && *m == message) {
            network.likes.push((person, message, date));
        }
    }

    network
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(&GeneratorConfig::default());
        let b = generate(&GeneratorConfig::default());
        assert_eq!(a.persons.len(), b.persons.len());
        assert_eq!(a.knows, b.knows);
        assert_eq!(a.messages.len(), b.messages.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig { seed: 1, ..Default::default() });
        let b = generate(&GeneratorConfig { seed: 2, ..Default::default() });
        assert_ne!(a.knows, b.knows);
    }

    #[test]
    fn scale_controls_person_count() {
        let small = generate(&GeneratorConfig { scale: 0.5, ..Default::default() });
        let large = generate(&GeneratorConfig { scale: 2.0, ..Default::default() });
        assert_eq!(small.persons.len(), 50);
        assert_eq!(large.persons.len(), 200);
        assert!(large.total_entities() > small.total_entities());
    }

    #[test]
    fn every_person_has_a_city_and_every_city_a_country() {
        let net = generate(&GeneratorConfig::default());
        for p in &net.persons {
            assert!(net.cities.iter().any(|(id, _)| *id == p.city));
        }
        for (city, _) in &net.cities {
            assert!(net.city_in_country.iter().any(|(c, _)| c == city));
        }
    }

    #[test]
    fn friendships_are_unique_and_reference_existing_persons() {
        let net = generate(&GeneratorConfig::default());
        for (a, b, _) in &net.knows {
            assert!(net.persons.iter().any(|p| p.id == *a));
            assert!(net.persons.iter().any(|p| p.id == *b));
            assert_ne!(a, b);
        }
        let mut pairs: Vec<(i64, i64)> =
            net.knows.iter().map(|(a, b, _)| (*a.min(b), *a.max(b))).collect();
        let before = pairs.len();
        pairs.sort();
        pairs.dedup();
        assert_eq!(before, pairs.len(), "duplicate friendships generated");
    }

    #[test]
    fn messages_reference_existing_creators_and_earlier_replies() {
        let net = generate(&GeneratorConfig::default());
        for m in &net.messages {
            assert!(net.persons.iter().any(|p| p.id == m.creator));
            if let Some(parent) = m.reply_of {
                assert!(parent < m.id);
            }
        }
    }

    #[test]
    fn sample_person_exists() {
        let net = generate(&GeneratorConfig::default());
        let id = net.sample_person();
        assert!(net.persons.iter().any(|p| p.id == id));
    }
}
