//! The query corpus: simplified LDBC SNB interactive reads plus the classic
//! recursive benchmark queries, all written in Cypher against
//! [`crate::schema::SNB_PG_SCHEMA`].
//!
//! As in the paper (Section 3), the queries use `RETURN DISTINCT` and carry
//! no `ORDER BY`/`LIMIT` so the translated versions are set-semantics
//! equivalent across all backends. Queries are parameterised by `$personId`
//! (and `$maxDate` where relevant); bind them with
//! [`raqlet_pgir::LowerOptions::with_param`] or the facade's compile options.

/// A named benchmark query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkQuery {
    /// Short identifier (`SQ1`, `CQ2`, ...).
    pub name: &'static str,
    /// What the query computes.
    pub description: &'static str,
    /// Cypher text.
    pub cypher: &'static str,
    /// True if the query is recursive after lowering (variable-length path or
    /// shortest path).
    pub recursive: bool,
}

/// LDBC short query 1 (the paper's "SQ1"): a person's profile joined with
/// their city. This is the running example of Figure 3 extended to the full
/// profile.
pub const SQ1: BenchmarkQuery = BenchmarkQuery {
    name: "SQ1",
    description: "person profile with city (LDBC interactive short 1)",
    cypher: "MATCH (n:Person {id: $personId})-[:IS_LOCATED_IN]->(p:City)\n\
             RETURN DISTINCT n.firstName AS firstName, n.lastName AS lastName,\n\
                    n.birthday AS birthday, n.locationIP AS locationIP,\n\
                    n.browserUsed AS browserUsed, p.id AS cityId, n.gender AS gender,\n\
                    n.creationDate AS creationDate",
    recursive: false,
};

/// LDBC complex query 2 (the paper's "CQ2"): recent messages of a person's
/// friends, simplified to set semantics (no ORDER BY / LIMIT).
pub const CQ2: BenchmarkQuery = BenchmarkQuery {
    name: "CQ2",
    description: "friends' messages before a date (LDBC interactive complex 2)",
    cypher:
        "MATCH (p:Person {id: $personId})-[:KNOWS]-(friend:Person)<-[:HAS_CREATOR]-(m:Message)\n\
             WHERE m.creationDate <= $maxDate\n\
             RETURN DISTINCT friend.id AS personId, friend.firstName AS personFirstName,\n\
                    friend.lastName AS personLastName, m.id AS messageId,\n\
                    m.content AS messageContent, m.creationDate AS messageCreationDate",
    recursive: false,
};

/// LDBC short query 3: a person's direct friends.
pub const SQ3: BenchmarkQuery = BenchmarkQuery {
    name: "SQ3",
    description: "direct friends of a person (LDBC interactive short 3)",
    cypher: "MATCH (n:Person {id: $personId})-[:KNOWS]-(friend:Person)\n\
             RETURN DISTINCT friend.id AS personId, friend.firstName AS firstName,\n\
                    friend.lastName AS lastName",
    recursive: false,
};

/// LDBC complex query 1 (simplified): friends up to three hops away with a
/// given first name — the variable-length-path query of the read workload.
pub const CQ1: BenchmarkQuery = BenchmarkQuery {
    name: "CQ1",
    description: "friends up to 3 hops with a given first name (LDBC interactive complex 1)",
    cypher: "MATCH (p:Person {id: $personId})-[:KNOWS*1..3]-(friend:Person)\n\
             WHERE friend.firstName = $firstName\n\
             RETURN DISTINCT friend.id AS friendId, friend.lastName AS lastName",
    recursive: true,
};

/// Friend-of-friend reachability (unbounded): the transitive closure of the
/// KNOWS graph from one person.
pub const REACHABILITY: BenchmarkQuery = BenchmarkQuery {
    name: "REACH",
    description: "all persons reachable over KNOWS from a person (transitive closure)",
    cypher: "MATCH (p:Person {id: $personId})-[:KNOWS*]-(other:Person)\n\
             RETURN DISTINCT other.id AS personId",
    recursive: true,
};

/// Shortest KNOWS-path between two persons (LDBC interactive complex 13
/// simplified to the endpoint id).
pub const CQ13: BenchmarkQuery = BenchmarkQuery {
    name: "CQ13",
    description: "shortest path between two persons over KNOWS (LDBC interactive complex 13)",
    cypher:
        "MATCH p = shortestPath((a:Person {id: $personId})-[:KNOWS*]-(b:Person {id: $otherId}))\n\
             RETURN DISTINCT b.id AS targetId",
    recursive: true,
};

/// Message counts per friend — the aggregation-heavy query used by the
/// optimizer ablation benchmarks.
pub const FRIEND_MESSAGE_COUNTS: BenchmarkQuery = BenchmarkQuery {
    name: "AGG1",
    description: "message count per friend (aggregation workload)",
    cypher:
        "MATCH (p:Person {id: $personId})-[:KNOWS]-(friend:Person)<-[:HAS_CREATOR]-(m:Message)\n\
             WITH friend, count(m) AS messageCount\n\
             RETURN DISTINCT friend.id AS personId, messageCount AS messageCount",
    recursive: false,
};

/// Profiles for an explicit list of persons — LDBC's multi-parameter lookup
/// idiom, exercising `UNWIND` end-to-end (previously rejected in lowering).
pub const UNWIND_PROFILES: BenchmarkQuery = BenchmarkQuery {
    name: "UNW1",
    description: "profiles for an explicit person-id list (UNWIND workload)",
    cypher: "UNWIND [$personId, $otherId] AS pid\n\
             MATCH (n:Person {id: pid})\n\
             RETURN DISTINCT n.id AS personId, n.firstName AS firstName,\n\
                    n.lastName AS lastName",
    recursive: false,
};

/// Neighbours over either person-to-person relation — alternative
/// relationship types (`:KNOWS|FOLLOWS`), previously rejected in lowering.
pub const ALT_NEIGHBOURS: BenchmarkQuery = BenchmarkQuery {
    name: "ALT1",
    description: "persons connected by KNOWS or FOLLOWS (alternative rel types)",
    cypher: "MATCH (p:Person {id: $personId})-[:KNOWS|FOLLOWS]-(f:Person)\n\
             RETURN DISTINCT f.id AS personId",
    recursive: false,
};

/// Closest cities: shortest KNOWS-path to any person, extended by their city
/// — a multi-hop `shortestPath` pattern (previously rejected in lowering).
pub const CQ13_CITIES: BenchmarkQuery = BenchmarkQuery {
    name: "CQ13B",
    description: "cities of persons on shortest KNOWS paths (multi-hop shortestPath)",
    cypher: "MATCH sp = shortestPath((a:Person {id: $personId})-[:KNOWS*]-(b:Person)\
-[:IS_LOCATED_IN]->(c:City))\n\
             RETURN DISTINCT c.id AS cityId, c.name AS cityName",
    recursive: true,
};

/// All queries, in the order the benchmark harness reports them.
pub const ALL_QUERIES: &[BenchmarkQuery] = &[
    SQ1,
    CQ2,
    SQ3,
    CQ1,
    REACHABILITY,
    CQ13,
    FRIEND_MESSAGE_COUNTS,
    UNWIND_PROFILES,
    ALT_NEIGHBOURS,
    CQ13_CITIES,
];

/// The two queries of the paper's Table 1.
pub const TABLE1_QUERIES: &[BenchmarkQuery] = &[SQ1, CQ2];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse_as_cypher() {
        for q in ALL_QUERIES {
            let parsed = raqlet_cypher::parse(q.cypher);
            assert!(parsed.is_ok(), "query {} failed to parse: {:?}", q.name, parsed.err());
        }
    }

    #[test]
    fn recursive_flags_match_the_query_text() {
        for q in ALL_QUERIES {
            let parsed = raqlet_cypher::parse(q.cypher).unwrap();
            assert_eq!(parsed.uses_recursion(), q.recursive, "query {}", q.name);
        }
    }

    #[test]
    fn table1_contains_sq1_and_cq2() {
        let names: Vec<&str> = TABLE1_QUERIES.iter().map(|q| q.name).collect();
        assert_eq!(names, vec!["SQ1", "CQ2"]);
    }

    #[test]
    fn queries_have_unique_names() {
        let mut names: Vec<&str> = ALL_QUERIES.iter().map(|q| q.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
