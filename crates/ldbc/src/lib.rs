//! # raqlet-ldbc
//!
//! A laptop-scale, deterministic stand-in for the LDBC Social Network
//! Benchmark interactive workload used in the paper's evaluation:
//!
//! * [`schema`] — the SNB property-graph schema (PG-Schema text);
//! * [`generator`] — a deterministic synthetic social-network generator
//!   parameterised by a scale factor;
//! * [`loaders`] — conversions into the relational/deductive [`Database`]
//!   and the [`PropertyGraph`] store;
//! * [`queries`] — the Cypher query corpus (SQ1, CQ2, and the other reads the
//!   benchmarks exercise).
//!
//! [`Database`]: raqlet_common::Database
//! [`PropertyGraph`]: raqlet_engine::PropertyGraph

pub mod generator;
pub mod loaders;
pub mod queries;
pub mod schema;

pub use generator::{generate, GeneratorConfig, SocialNetwork};
pub use loaders::{to_database, to_property_graph};
pub use queries::{
    BenchmarkQuery, ALL_QUERIES, CQ1, CQ13, CQ2, FRIEND_MESSAGE_COUNTS, REACHABILITY, SQ1, SQ3,
    TABLE1_QUERIES,
};
pub use schema::SNB_PG_SCHEMA;
