//! Dead rule elimination (Section 5, "Dead Rule Elimination").
//!
//! After inlining, intermediate rules often no longer contribute to any
//! output. This pass removes every rule whose head relation is not reachable
//! from the program's `.output` relations in the predicate dependency graph —
//! turning Figure 4a into Figure 4b in the paper's running example.

use std::collections::BTreeSet;

use raqlet_dlir::DlirProgram;

/// Remove rules that cannot contribute to any output relation. Returns the
/// rewritten program and whether anything was removed.
pub fn eliminate_dead_rules(program: &DlirProgram) -> (DlirProgram, bool) {
    // Compute the set of relations reachable from the outputs by walking
    // rule bodies transitively.
    let mut live: BTreeSet<String> = program.outputs.iter().cloned().collect();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if live.contains(&rule.head.relation) {
                for dep in rule.dependencies() {
                    changed |= live.insert(dep.to_string());
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();
    let mut removed = false;
    for rule in &program.rules {
        if live.contains(&rule.head.relation) {
            out.add_rule(rule.clone());
        } else {
            removed = true;
        }
    }
    (out, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::{Atom, BodyElem, Rule};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    #[test]
    fn unreferenced_intermediate_rules_are_removed() {
        // The paper's Figure 4a -> 4b: after inlining, Match1 and Where1 no
        // longer feed Return and are removed.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("Match1", &["n"]), vec![atom("Person", &["n"])]));
        p.add_rule(Rule::new(Atom::with_vars("Where1", &["n"]), vec![atom("Match1", &["n"])]));
        p.add_rule(Rule::new(Atom::with_vars("Return", &["n"]), vec![atom("Person", &["n"])]));
        p.add_output("Return");

        let (optimized, changed) = eliminate_dead_rules(&p);
        assert!(changed);
        assert_eq!(optimized.rules.len(), 1);
        assert_eq!(optimized.rules[0].head.relation, "Return");
    }

    #[test]
    fn live_chains_are_kept() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("Match1", &["n"]), vec![atom("Person", &["n"])]));
        p.add_rule(Rule::new(Atom::with_vars("Return", &["n"]), vec![atom("Match1", &["n"])]));
        p.add_output("Return");
        let (optimized, changed) = eliminate_dead_rules(&p);
        assert!(!changed);
        assert_eq!(optimized.rules.len(), 2);
    }

    #[test]
    fn rules_reachable_through_negation_are_kept() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("blocked", &["x"]), vec![atom("raw", &["x"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["x"]),
            vec![atom("node", &["x"]), BodyElem::Negated(Atom::with_vars("blocked", &["x"]))],
        ));
        p.add_output("Return");
        let (optimized, changed) = eliminate_dead_rules(&p);
        assert!(!changed);
        assert_eq!(optimized.rules.len(), 2);
    }

    #[test]
    fn recursive_live_relations_are_fully_kept() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(Atom::with_vars("dead", &["x"]), vec![atom("edge", &["x", "x"])]));
        p.add_output("tc");
        let (optimized, changed) = eliminate_dead_rules(&p);
        assert!(changed);
        assert_eq!(optimized.rules.len(), 2);
        assert!(optimized.rules.iter().all(|r| r.head.relation == "tc"));
    }

    #[test]
    fn programs_without_outputs_drop_everything() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("edge", &["x", "y"])]));
        let (optimized, changed) = eliminate_dead_rules(&p);
        assert!(changed);
        assert!(optimized.rules.is_empty());
    }
}
