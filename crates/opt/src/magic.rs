//! Magic-set transformation (Section 5, "Pushing Operators Past Recursion").
//!
//! When a rule consumes a recursive IDB with one or more arguments bound to
//! constants (directly, or through an equality constraint in the same rule),
//! computing the *whole* IDB and filtering afterwards wastes work. The
//! magic-set transformation restricts the recursive computation to the tuples
//! relevant to those bindings:
//!
//! 1. a *magic* predicate `Magic_<P>_<adornment>` is introduced holding the
//!    bound argument values;
//! 2. it is seeded with the constants found at the call site;
//! 3. every rule defining `P` gets the magic predicate added to its body
//!    (joined on the bound head arguments);
//! 4. for the recursive body atoms of `P`, additional magic rules propagate
//!    the bindings sideways (for the common left-linear case the propagation
//!    is the identity and folds away).
//!
//! The implementation purposely targets the patterns Raqlet's own lowering
//! generates — linear recursion with the bound argument kept in the same head
//! position — which covers reachability-from-a-source and the LDBC
//! variable-length queries. Programs outside that fragment are returned
//! unchanged.

use raqlet_common::Value;
use raqlet_dlir::{Atom, BodyElem, CmpOp, DepGraph, DlExpr, DlirProgram, Rule, Term};

/// A magic-set candidate: (consumer rule index, target IDB relation, bound
/// argument positions with their constant values).
type CallSite = (usize, String, Vec<(usize, Value)>);

/// Apply the magic-set transformation. Returns the rewritten program and
/// whether anything changed.
pub fn magic_sets(program: &DlirProgram) -> (DlirProgram, bool) {
    let graph = DepGraph::build(program);

    let mut candidates: Vec<CallSite> = Vec::new();
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        // Constants available through equality constraints in this rule.
        let const_of = |var: &str| -> Option<Value> {
            rule.body.iter().find_map(|b| match b {
                BodyElem::Constraint { op: CmpOp::Eq, lhs, rhs } => match (lhs, rhs) {
                    (DlExpr::Var(v), DlExpr::Const(c)) | (DlExpr::Const(c), DlExpr::Var(v))
                        if v == var =>
                    {
                        Some(c.clone())
                    }
                    _ => None,
                },
                _ => None,
            })
        };
        for elem in &rule.body {
            let Some(atom) = elem.as_positive_atom() else { continue };
            if !graph.is_recursive(&atom.relation) {
                continue;
            }
            // The consumer must not itself be part of the same recursion.
            if graph.scc_of(&atom.relation).contains(&rule.head.relation) {
                continue;
            }
            let mut bound = Vec::new();
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(c) => bound.push((i, c.clone())),
                    Term::Var(v) => {
                        if let Some(c) = const_of(v) {
                            bound.push((i, c.clone()));
                        }
                    }
                    Term::Wildcard => {}
                }
            }
            if !bound.is_empty() {
                candidates.push((rule_idx, atom.relation.clone(), bound));
            }
        }
    }

    if candidates.is_empty() {
        return (program.clone(), false);
    }

    // Apply the transformation for the first eligible target (iterating the
    // optimizer pipeline handles multiple targets).
    for (_, target, bound) in candidates {
        if let Some(rewritten) = try_transform(program, &graph, &target, &bound) {
            return (rewritten, true);
        }
    }
    (program.clone(), false)
}

fn adornment(arity: usize, bound: &[(usize, Value)]) -> String {
    (0..arity).map(|i| if bound.iter().any(|(b, _)| *b == i) { 'b' } else { 'f' }).collect()
}

/// Check eligibility of `target` and build the transformed program.
fn try_transform(
    program: &DlirProgram,
    graph: &DepGraph,
    target: &str,
    bound: &[(usize, Value)],
) -> Option<DlirProgram> {
    let defs = program.rules_for(target);
    if defs.is_empty() {
        return None;
    }
    // Eligibility: linear recursion, no aggregation, no negation on the
    // recursive atom, and in every recursive rule the bound head positions
    // carry plain variables that also appear (in the same positions) in the
    // recursive body atom — i.e. the binding propagates unchanged (left- or
    // right-linear chains both satisfy this for reachability-style rules on
    // at least one bound column).
    let mut propagating_positions: Vec<usize> = bound.iter().map(|(i, _)| *i).collect();
    for def in &defs {
        if def.aggregation.is_some() {
            return None;
        }
        let recursive_atoms: Vec<&Atom> = def
            .body
            .iter()
            .filter_map(|b| b.as_positive_atom())
            .filter(|a| graph.scc_of(target).contains(&a.relation))
            .collect();
        if recursive_atoms.len() > 1 {
            return None;
        }
        if let Some(rec) = recursive_atoms.first() {
            if rec.relation != *target {
                // Mutual recursion: out of scope for this implementation.
                return None;
            }
            propagating_positions.retain(|&i| match (def.head.terms.get(i), rec.terms.get(i)) {
                (Some(Term::Var(h)), Some(Term::Var(b))) => h == b,
                _ => false,
            });
        }
    }
    if propagating_positions.is_empty() {
        return None;
    }
    let bound: Vec<(usize, Value)> =
        bound.iter().filter(|(i, _)| propagating_positions.contains(i)).cloned().collect();

    let target_arity = defs[0].head.arity();
    let magic_name = format!("Magic_{}_{}", target, adornment(target_arity, &bound));
    if program.is_idb(&magic_name) {
        // Already transformed.
        return None;
    }

    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();

    // Seed rule: Magic_P(c1, ..., ck).
    let seed = Rule::new(
        Atom::new(magic_name.clone(), bound.iter().map(|(_, c)| Term::Const(c.clone())).collect()),
        vec![],
    );
    out.add_rule(seed);

    for rule in &program.rules {
        if rule.head.relation == *target {
            // Guard every defining rule with the magic predicate joined on
            // the bound head arguments.
            let magic_atom = Atom::new(
                magic_name.clone(),
                bound.iter().map(|(i, _)| rule.head.terms[*i].clone()).collect(),
            );
            let mut guarded = rule.clone();
            guarded.body.insert(0, BodyElem::Atom(magic_atom));
            out.add_rule(guarded);
        } else {
            out.add_rule(rule.clone());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    /// tc(x, y) :- edge(x, y).
    /// tc(x, y) :- tc(x, z), edge(z, y).
    /// Return(y) :- tc(x, y), x = 1.
    fn reachability_from_source() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
        ));
        p.add_output("Return");
        p
    }

    #[test]
    fn reachability_from_a_constant_source_is_transformed() {
        let (out, changed) = magic_sets(&reachability_from_source());
        assert!(changed);
        // A magic predicate with adornment bf exists and is seeded with 1.
        let magic_rules = out.rules_for("Magic_tc_bf");
        assert_eq!(magic_rules.len(), 1);
        assert_eq!(magic_rules[0].to_string(), "Magic_tc_bf(1).");
        // Every tc rule is guarded by the magic predicate.
        for rule in out.rules_for("tc") {
            assert!(rule.positive_dependencies().contains(&"Magic_tc_bf"), "{rule}");
        }
        // The consumer rule is untouched.
        let ret = out.rules_for("Return")[0];
        assert!(ret.positive_dependencies().contains(&"tc"));
    }

    #[test]
    fn constant_directly_in_the_atom_is_also_detected() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![BodyElem::Atom(Atom::new("tc", vec![Term::int(7), Term::var("y")]))],
        ));
        p.add_output("Return");
        let (out, changed) = magic_sets(&p);
        assert!(changed);
        assert_eq!(out.rules_for("Magic_tc_bf")[0].to_string(), "Magic_tc_bf(7).");
    }

    #[test]
    fn unbound_uses_are_left_alone() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["x", "y"]),
            vec![atom("tc", &["x", "y"])],
        ));
        p.add_output("Return");
        let (_, changed) = magic_sets(&p);
        assert!(!changed);
    }

    #[test]
    fn binding_on_a_non_propagating_position_is_skipped() {
        // Right-linear recursion where the bound position is the one being
        // rewritten: tc(x, y) :- edge(x, z), tc(z, y) with x bound — the
        // binding does not propagate through the head position, so the
        // transformation must refuse (x of the recursive atom differs).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("edge", &["x", "z"]), atom("tc", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
        ));
        p.add_output("Return");
        let (_, changed) = magic_sets(&p);
        assert!(!changed);
    }

    #[test]
    fn non_linear_recursion_is_skipped() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("tc", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
        ));
        p.add_output("Return");
        let (_, changed) = magic_sets(&p);
        assert!(!changed);
    }

    #[test]
    fn transformation_is_idempotent() {
        let (once, _) = magic_sets(&reachability_from_source());
        let (_twice, changed_again) = magic_sets(&once);
        assert!(!changed_again);
    }

    #[test]
    fn both_endpoints_bound_produces_bb_adornment() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["x", "y"]),
            vec![
                atom("tc", &["x", "y"]),
                BodyElem::eq(DlExpr::var("x"), DlExpr::int(1)),
                BodyElem::eq(DlExpr::var("y"), DlExpr::int(9)),
            ],
        ));
        p.add_output("Return");
        let (out, changed) = magic_sets(&p);
        assert!(changed);
        // Only the source position propagates through the recursion (y is
        // rewritten by the recursive rule), so the adornment stays `bf`.
        assert!(out.is_idb("Magic_tc_bf"));
    }
}
