//! Rule inlining (Section 5, "Inlining").
//!
//! An IDB atom in a rule body is replaced by the body of the rule defining
//! it, after renaming the definition's variables: head variables map onto the
//! caller's argument terms, every other variable gets a fresh name. Inlining
//! is performed only when it is semantics-preserving and non-exploding:
//!
//! * the callee must not be recursive;
//! * the callee must not aggregate;
//! * the callee must not be referenced under negation at the call site;
//! * the callee is defined by a bounded number of rules (each definition
//!   multiplies the caller).
//!
//! After substitution, exact duplicate body atoms are removed — this is what
//! turns the paper's Figure 3d into Figure 4a (the duplicated `Person` atom
//! in `Where1` disappears).

use std::collections::HashMap;

use raqlet_dlir::{Atom, BodyElem, DepGraph, DlExpr, DlirProgram, Rule, Term};

/// Configuration for the inlining pass.
#[derive(Debug, Clone)]
pub struct InlineConfig {
    /// Maximum number of defining rules a callee may have to still be
    /// inlined (each definition multiplies the calling rule).
    pub max_definitions: usize,
    /// Maximum number of inlining sweeps (each sweep inlines one level).
    pub max_rounds: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig { max_definitions: 4, max_rounds: 8 }
    }
}

/// Run the inlining pass, returning the rewritten program and whether any
/// change was made.
pub fn inline(program: &DlirProgram, config: &InlineConfig) -> (DlirProgram, bool) {
    let mut current = program.clone();
    let mut changed_any = false;
    for _ in 0..config.max_rounds {
        let (next, changed) = inline_once(&current, config);
        current = next;
        if !changed {
            break;
        }
        changed_any = true;
    }
    (current, changed_any)
}

fn inline_once(program: &DlirProgram, config: &InlineConfig) -> (DlirProgram, bool) {
    let graph = DepGraph::build(program);
    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();

    let mut changed = false;
    for rule in &program.rules {
        let mut expanded = vec![rule.clone()];
        // Try to inline the first inlinable atom in each rule; iterating the
        // pass handles the rest.
        let target = rule.body.iter().enumerate().find_map(|(i, elem)| match elem {
            BodyElem::Atom(atom) if inlinable(program, &graph, rule, atom, config) => Some(i),
            _ => None,
        });
        if let Some(idx) = target {
            let BodyElem::Atom(call) = &rule.body[idx] else { unreachable!() };
            let definitions = program.rules_for(&call.relation);
            let mut new_rules = Vec::new();
            for def in definitions {
                let mut new_rule = rule.clone();
                let substituted = substitute_body(def, call, rule, &mut new_rules_counter());
                new_rule.body.splice(idx..=idx, substituted);
                dedup_body(&mut new_rule.body);
                new_rules.push(new_rule);
            }
            expanded = new_rules;
            changed = true;
        }
        for r in expanded {
            out.add_rule(r);
        }
    }
    (out, changed)
}

fn new_rules_counter() -> u32 {
    0
}

/// Is `atom` a call site we can inline into `caller`?
fn inlinable(
    program: &DlirProgram,
    graph: &DepGraph,
    caller: &Rule,
    atom: &Atom,
    config: &InlineConfig,
) -> bool {
    let name = &atom.relation;
    if !program.is_idb(name) {
        return false;
    }
    if graph.is_recursive(name)
        || graph.is_recursive(&caller.head.relation) && name == &caller.head.relation
    {
        return false;
    }
    let defs = program.rules_for(name);
    if defs.is_empty() || defs.len() > config.max_definitions {
        return false;
    }
    if defs.iter().any(|d| d.aggregation.is_some()) {
        return false;
    }
    // Arity must line up (otherwise the program is ill-formed; leave it to
    // validation).
    if defs.iter().any(|d| d.head.arity() != atom.arity()) {
        return false;
    }
    // Substitution maps the definition's head *variables* onto the call
    // arguments, so every head term must be a distinct variable: a constant
    // head term (a fact such as a magic seed or an UNWIND list entry) or a
    // repeated variable (`p(x, x)`) carries a binding the substitution would
    // silently drop, changing the rule's meaning.
    if defs.iter().any(|d| {
        let vars = d.head.variables();
        vars.len() != d.head.arity()
    }) {
        return false;
    }
    true
}

/// Instantiate the body of `def` for the call site `call` occurring in
/// `caller`: head variables of `def` are replaced by the corresponding call
/// arguments, all other variables are renamed to avoid capture.
fn substitute_body(def: &Rule, call: &Atom, caller: &Rule, _counter: &mut u32) -> Vec<BodyElem> {
    // Mapping from the definition's head variables to the caller's terms.
    let mut mapping: HashMap<String, Term> = HashMap::new();
    for (def_term, call_term) in def.head.terms.iter().zip(&call.terms) {
        if let Term::Var(v) = def_term {
            mapping.insert(v.clone(), call_term.clone());
        }
    }
    // Variables already used in the caller (to avoid capture when renaming
    // the definition's local variables).
    let mut used: Vec<String> = Vec::new();
    for elem in &caller.body {
        used.extend(elem.variables());
    }
    used.extend(caller.head.variables());

    let mut local_renames: HashMap<String, String> = HashMap::new();
    let mut fresh_idx = 0usize;
    let mut map_term =
        |t: &Term, mapping: &HashMap<String, Term>, local: &mut HashMap<String, String>| -> Term {
            match t {
                Term::Var(v) => {
                    if let Some(replacement) = mapping.get(v) {
                        replacement.clone()
                    } else {
                        let name = local.entry(v.clone()).or_insert_with(|| loop {
                            let candidate = format!("{v}_i{fresh_idx}");
                            fresh_idx += 1;
                            if !used.contains(&candidate) {
                                used.push(candidate.clone());
                                break candidate;
                            }
                        });
                        Term::Var(name.clone())
                    }
                }
                other => other.clone(),
            }
        };

    let map_expr = |e: &DlExpr,
                    mapping: &HashMap<String, Term>,
                    local: &HashMap<String, String>|
     -> DlExpr { rename_expr(e, mapping, local) };

    let mut out = Vec::new();
    for elem in &def.body {
        let new_elem = match elem {
            BodyElem::Atom(a) => BodyElem::Atom(Atom::new(
                a.relation.clone(),
                a.terms.iter().map(|t| map_term(t, &mapping, &mut local_renames)).collect(),
            )),
            BodyElem::Negated(a) => BodyElem::Negated(Atom::new(
                a.relation.clone(),
                a.terms.iter().map(|t| map_term(t, &mapping, &mut local_renames)).collect(),
            )),
            BodyElem::Constraint { op, lhs, rhs } => {
                // Ensure variables in constraints get renamed consistently:
                // first walk them as terms so `local_renames` is populated.
                let mut vars = Vec::new();
                lhs.variables(&mut vars);
                rhs.variables(&mut vars);
                for v in vars {
                    let _ = map_term(&Term::Var(v), &mapping, &mut local_renames);
                }
                BodyElem::Constraint {
                    op: *op,
                    lhs: map_expr(lhs, &mapping, &local_renames),
                    rhs: map_expr(rhs, &mapping, &local_renames),
                }
            }
        };
        out.push(new_elem);
    }
    out
}

fn rename_expr(
    e: &DlExpr,
    mapping: &HashMap<String, Term>,
    local: &HashMap<String, String>,
) -> DlExpr {
    match e {
        DlExpr::Var(v) => {
            if let Some(t) = mapping.get(v) {
                match t {
                    Term::Var(name) => DlExpr::Var(name.clone()),
                    Term::Const(c) => DlExpr::Const(c.clone()),
                    Term::Wildcard => DlExpr::Var(v.clone()),
                }
            } else if let Some(renamed) = local.get(v) {
                DlExpr::Var(renamed.clone())
            } else {
                DlExpr::Var(v.clone())
            }
        }
        DlExpr::Const(c) => DlExpr::Const(c.clone()),
        DlExpr::Arith { op, lhs, rhs } => DlExpr::Arith {
            op: *op,
            lhs: Box::new(rename_expr(lhs, mapping, local)),
            rhs: Box::new(rename_expr(rhs, mapping, local)),
        },
    }
}

/// Remove exact duplicate body elements (e.g. the duplicated `Person` atom
/// after inlining in the paper's running example).
pub fn dedup_body(body: &mut Vec<BodyElem>) {
    let mut seen: Vec<BodyElem> = Vec::new();
    body.retain(|elem| {
        if seen.contains(elem) {
            false
        } else {
            seen.push(elem.clone());
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::{CmpOp, Term};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    /// Build the paper's running example (Figure 3d): Match1, Where1, Return.
    fn figure3d() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("Match1", &["n", "x1", "p"]),
            vec![
                atom("Person_IS_LOCATED_IN_City", &["n", "p", "x1"]),
                atom("Person", &["n"]),
                atom("City", &["p"]),
            ],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Where1", &["n", "x1", "p"]),
            vec![
                atom("Match1", &["n", "x1", "p"]),
                atom("Person", &["n"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::var("n"), rhs: DlExpr::int(42) },
            ],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["firstName", "cityId"]),
            vec![
                atom("Where1", &["n", "x1", "p"]),
                atom("PersonName", &["n", "firstName"]),
                atom("City", &["p"]),
                BodyElem::Constraint {
                    op: CmpOp::Eq,
                    lhs: DlExpr::var("p"),
                    rhs: DlExpr::var("cityId"),
                },
            ],
        ));
        p.add_output("Return");
        p
    }

    #[test]
    fn inlining_the_running_example_matches_figure4a() {
        let p = figure3d();
        let (inlined, changed) = inline(&p, &InlineConfig::default());
        assert!(changed);
        // After full inlining, the Return rule no longer references Where1 or
        // Match1.
        let ret = inlined.rules_for("Return")[0];
        assert!(!ret.positive_dependencies().contains(&"Where1"));
        assert!(!ret.positive_dependencies().contains(&"Match1"));
        assert!(ret.positive_dependencies().contains(&"Person_IS_LOCATED_IN_City"));
        // The n = 42 filter survived inlining.
        assert!(ret.body.iter().any(|b| b.to_string() == "n = 42"), "{ret}");
        // And the duplicated Person atom was removed.
        assert_eq!(ret.count_positive("Person"), 1);
    }

    #[test]
    fn duplicate_atoms_are_removed_after_inlining() {
        let p = figure3d();
        let (inlined, _) = inline(&p, &InlineConfig::default());
        // Where1 inlines Match1, which mentions Person(n); Where1 already
        // mentions Person(n) — only one copy remains (Figure 4a).
        let where1 = inlined.rules_for("Where1")[0];
        assert_eq!(where1.count_positive("Person"), 1);
    }

    #[test]
    fn recursive_relations_are_never_inlined() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("tc", &["x", "y"])]));
        p.add_output("q");
        let (inlined, changed) = inline(&p, &InlineConfig::default());
        assert!(!changed);
        assert_eq!(inlined.rules.len(), p.rules.len());
    }

    #[test]
    fn multi_definition_idbs_multiply_the_caller() {
        // v(x) :- a(x).   v(x) :- b(x).   q(x) :- v(x), c(x).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("v", &["x"]), vec![atom("a", &["x"])]));
        p.add_rule(Rule::new(Atom::with_vars("v", &["x"]), vec![atom("b", &["x"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x"]),
            vec![atom("v", &["x"]), atom("c", &["x"])],
        ));
        p.add_output("q");
        let (inlined, changed) = inline(&p, &InlineConfig::default());
        assert!(changed);
        let q_rules = inlined.rules_for("q");
        assert_eq!(q_rules.len(), 2);
        assert!(q_rules[0].positive_dependencies().contains(&"a"));
        assert!(q_rules[1].positive_dependencies().contains(&"b"));
    }

    #[test]
    fn inlining_respects_max_definitions() {
        let mut p = DlirProgram::default();
        for base in ["a", "b", "c", "d", "e"] {
            p.add_rule(Rule::new(Atom::with_vars("v", &["x"]), vec![atom(base, &["x"])]));
        }
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("v", &["x"])]));
        p.add_output("q");
        let config = InlineConfig { max_definitions: 4, ..Default::default() };
        let (_, changed) = inline(&p, &config);
        assert!(!changed, "five definitions exceed the limit of four");
    }

    #[test]
    fn aggregating_rules_are_not_inlined() {
        use raqlet_dlir::{AggFunc, Aggregation};
        let mut p = DlirProgram::default();
        let mut deg =
            Rule::new(Atom::with_vars("deg", &["x", "d"]), vec![atom("edge", &["x", "y"])]);
        deg.aggregation = Some(Aggregation {
            func: AggFunc::Count,
            input_var: Some("y".into()),
            output_var: "d".into(),
            group_by: vec!["x".into()],
            distinct: false,
        });
        p.add_rule(deg);
        p.add_rule(Rule::new(Atom::with_vars("q", &["x", "d"]), vec![atom("deg", &["x", "d"])]));
        p.add_output("q");
        let (_, changed) = inline(&p, &InlineConfig::default());
        assert!(!changed);
    }

    #[test]
    fn constant_head_facts_are_never_inlined() {
        // seed(1).   q(x, y) :- seed(x), e(x, y).
        // Inlining the fact would substitute nothing (its head has no
        // variables) and silently delete the `x = 1` restriction along with
        // the binding of `x` — exactly what a magic seed or an UNWIND list
        // entry looks like.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::new("seed", vec![Term::int(1)]), vec![]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "y"]),
            vec![atom("seed", &["x"]), atom("e", &["x", "y"])],
        ));
        p.add_output("q");
        let (inlined, changed) = inline(&p, &InlineConfig::default());
        assert!(!changed);
        assert!(inlined.rules_for("q")[0].positive_dependencies().contains(&"seed"));
    }

    #[test]
    fn repeated_head_variables_are_never_inlined() {
        // refl(x, x) :- node(x).   q(a, b) :- refl(a, b).
        // Mapping head vars onto call args would drop the a = b constraint.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("refl", &["x", "x"]), vec![atom("node", &["x"])]));
        p.add_rule(Rule::new(Atom::with_vars("q", &["a", "b"]), vec![atom("refl", &["a", "b"])]));
        p.add_output("q");
        let (_, changed) = inline(&p, &InlineConfig::default());
        assert!(!changed);
    }

    #[test]
    fn constants_at_call_sites_are_propagated_into_the_definition() {
        // v(x, y) :- e(x, y).     q(y) :- v(7, y).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("v", &["x", "y"]), vec![atom("e", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![BodyElem::Atom(Atom::new("v", vec![Term::int(7), Term::var("y")]))],
        ));
        p.add_output("q");
        let (inlined, _) = inline(&p, &InlineConfig::default());
        let q = inlined.rules_for("q")[0];
        assert_eq!(q.body[0].to_string(), "e(7, y)");
    }

    #[test]
    fn local_variables_are_renamed_to_avoid_capture() {
        // v(x) :- e(x, z).    q(x, z) :- v(x), f(z).
        // The z inside v's body must not collide with the caller's z.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("v", &["x"]), vec![atom("e", &["x", "z"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "z"]),
            vec![atom("v", &["x"]), atom("f", &["z"])],
        ));
        p.add_output("q");
        let (inlined, _) = inline(&p, &InlineConfig::default());
        let q = inlined.rules_for("q")[0];
        let e_atom =
            q.body.iter().filter_map(|b| b.as_positive_atom()).find(|a| a.relation == "e").unwrap();
        assert_ne!(e_atom.terms[1], Term::var("z"), "callee-local z must be renamed");
    }
}
