//! Constant propagation and constraint simplification.
//!
//! Within a single rule, an equality constraint between a variable and a
//! constant (`n = 42`) lets the optimizer substitute the constant for every
//! occurrence of the variable in body atoms, pushing the selection into the
//! scan of the underlying relation — the single-rule half of "pushing
//! operators past recursion". Trivially true constraints are removed and
//! trivially false constraints mark the rule as unsatisfiable so it can be
//! deleted.

use std::collections::HashMap;

use raqlet_common::Value;
use raqlet_dlir::{Atom, BodyElem, CmpOp, DlExpr, DlirProgram, Rule, Term};

/// Run constant propagation over every rule. Returns the rewritten program
/// and whether anything changed.
pub fn propagate_constants(program: &DlirProgram) -> (DlirProgram, bool) {
    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();
    let mut changed = false;
    for rule in &program.rules {
        match simplify_rule(rule) {
            SimplifyResult::Unchanged => out.add_rule(rule.clone()),
            SimplifyResult::Rewritten(r) => {
                changed = true;
                out.add_rule(r);
            }
            SimplifyResult::Unsatisfiable => {
                changed = true;
                // Dropping the rule preserves semantics: it can never fire.
            }
        }
    }
    (out, changed)
}

enum SimplifyResult {
    Unchanged,
    Rewritten(Rule),
    Unsatisfiable,
}

fn simplify_rule(rule: &Rule) -> SimplifyResult {
    // Head variables must keep their names (they define the IDB's columns),
    // so only substitute variables that do not appear in the head. The
    // aggregation's variables are likewise preserved.
    let mut protected: Vec<String> = rule.head.variables();
    if let Some(agg) = &rule.aggregation {
        protected.push(agg.output_var.clone());
        protected.extend(agg.group_by.iter().cloned());
        if let Some(v) = &agg.input_var {
            protected.push(v.clone());
        }
    }

    // Collect var -> constant bindings from equality constraints.
    let mut consts: HashMap<String, Value> = HashMap::new();
    for elem in &rule.body {
        if let BodyElem::Constraint { op: CmpOp::Eq, lhs, rhs } = elem {
            match (lhs, rhs) {
                (DlExpr::Var(v), DlExpr::Const(c)) | (DlExpr::Const(c), DlExpr::Var(v))
                    if !protected.contains(v) =>
                {
                    consts.insert(v.clone(), c.clone());
                }
                _ => {}
            }
        }
    }

    let mut changed = false;
    let mut new_body: Vec<BodyElem> = Vec::new();
    for elem in &rule.body {
        match elem {
            BodyElem::Atom(a) => {
                let (atom, c) = substitute_atom(a, &consts);
                changed |= c;
                new_body.push(BodyElem::Atom(atom));
            }
            BodyElem::Negated(a) => {
                let (atom, c) = substitute_atom(a, &consts);
                changed |= c;
                new_body.push(BodyElem::Negated(atom));
            }
            BodyElem::Constraint { op, lhs, rhs } => {
                let (l, cl) = substitute_expr(lhs, &consts);
                let (r, cr) = substitute_expr(rhs, &consts);
                let (l, fl) = fold_expr(&l);
                let (r, fr) = fold_expr(&r);
                changed |= cl || cr || fl || fr;
                // Evaluate constraints over two constants.
                if let (DlExpr::Const(a), DlExpr::Const(b)) = (&l, &r) {
                    changed = true;
                    if op.eval(a, b) {
                        continue; // trivially true, drop it
                    } else {
                        return SimplifyResult::Unsatisfiable;
                    }
                }
                // Keep var = const constraints for variables we could not
                // substitute (head variables), drop the ones we fully
                // propagated only if the variable appears nowhere else...
                // keeping them is always safe, so we keep them.
                new_body.push(BodyElem::Constraint { op: *op, lhs: l, rhs: r });
            }
        }
    }

    if !changed {
        return SimplifyResult::Unchanged;
    }
    let mut new_rule = rule.clone();
    new_rule.body = new_body;
    SimplifyResult::Rewritten(new_rule)
}

fn substitute_atom(atom: &Atom, consts: &HashMap<String, Value>) -> (Atom, bool) {
    let mut changed = false;
    let terms = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => {
                if let Some(c) = consts.get(v) {
                    changed = true;
                    Term::Const(c.clone())
                } else {
                    t.clone()
                }
            }
            other => other.clone(),
        })
        .collect();
    (Atom::new(atom.relation.clone(), terms), changed)
}

fn substitute_expr(expr: &DlExpr, consts: &HashMap<String, Value>) -> (DlExpr, bool) {
    match expr {
        DlExpr::Var(v) => {
            if let Some(c) = consts.get(v) {
                (DlExpr::Const(c.clone()), true)
            } else {
                (expr.clone(), false)
            }
        }
        DlExpr::Const(_) => (expr.clone(), false),
        DlExpr::Arith { op, lhs, rhs } => {
            let (l, cl) = substitute_expr(lhs, consts);
            let (r, cr) = substitute_expr(rhs, consts);
            (DlExpr::Arith { op: *op, lhs: Box::new(l), rhs: Box::new(r) }, cl || cr)
        }
    }
}

/// Fold constant arithmetic (`2 + 3` → `5`).
fn fold_expr(expr: &DlExpr) -> (DlExpr, bool) {
    match expr {
        DlExpr::Arith { op, lhs, rhs } => {
            let (l, cl) = fold_expr(lhs);
            let (r, cr) = fold_expr(rhs);
            if let (DlExpr::Const(a), DlExpr::Const(b)) = (&l, &r) {
                if let Some(v) = op.eval(a, b) {
                    return (DlExpr::Const(v), true);
                }
            }
            (DlExpr::Arith { op: *op, lhs: Box::new(l), rhs: Box::new(r) }, cl || cr)
        }
        other => (other.clone(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::ArithOp;

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    #[test]
    fn constants_are_pushed_into_atoms() {
        // q(y) :- edge(x, y), x = 7.   =>   q(y) :- edge(7, y), x = 7 (kept).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![atom("edge", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(7))],
        ));
        let (out, changed) = propagate_constants(&p);
        assert!(changed);
        let q = out.rules_for("q")[0];
        assert_eq!(q.body[0].to_string(), "edge(7, y)");
    }

    #[test]
    fn head_variables_are_not_replaced() {
        // Return(n) :- Person(n), n = 42: n names an output column, so the
        // atom keeps the variable (the constraint still filters it).
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["n"]),
            vec![atom("Person", &["n"]), BodyElem::eq(DlExpr::var("n"), DlExpr::int(42))],
        ));
        let (out, changed) = propagate_constants(&p);
        assert!(!changed);
        let r = out.rules_for("Return")[0];
        assert_eq!(r.body[0].to_string(), "Person(n)");
    }

    #[test]
    fn trivially_true_constraints_are_removed() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::Constraint { op: CmpOp::Lt, lhs: DlExpr::int(1), rhs: DlExpr::int(2) },
            ],
        ));
        let (out, changed) = propagate_constants(&p);
        assert!(changed);
        assert_eq!(out.rules_for("q")[0].body.len(), 1);
    }

    #[test]
    fn unsatisfiable_rules_are_dropped() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::int(1), rhs: DlExpr::int(2) },
            ],
        ));
        p.add_rule(Rule::new(Atom::with_vars("q", &["x"]), vec![atom("edge", &["x", "x"])]));
        let (out, changed) = propagate_constants(&p);
        assert!(changed);
        assert_eq!(out.rules_for("q").len(), 1);
    }

    #[test]
    fn constant_arithmetic_is_folded() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["x", "l"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::eq(
                    DlExpr::var("l"),
                    DlExpr::Arith {
                        op: ArithOp::Add,
                        lhs: Box::new(DlExpr::int(2)),
                        rhs: Box::new(DlExpr::int(3)),
                    },
                ),
            ],
        ));
        let (out, changed) = propagate_constants(&p);
        assert!(changed);
        let q = out.rules_for("q")[0];
        assert!(q.body.iter().any(|b| b.to_string() == "l = 5"), "{q}");
    }

    #[test]
    fn propagation_reaches_negated_atoms() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("q", &["y"]),
            vec![
                atom("edge", &["x", "y"]),
                BodyElem::eq(DlExpr::var("x"), DlExpr::int(3)),
                BodyElem::Negated(Atom::with_vars("blocked", &["x"])),
            ],
        ));
        let (out, _) = propagate_constants(&p);
        let q = out.rules_for("q")[0];
        assert!(q.body.iter().any(|b| b.to_string() == "!blocked(3)"), "{q}");
    }
}
