//! Linearization of non-linear recursive rules.
//!
//! The classic non-linear transitive closure
//!
//! ```text
//! tc(x, y) :- edge(x, y).
//! tc(x, y) :- tc(x, z), tc(z, y).
//! ```
//!
//! produces the same least model as the left-linear version
//!
//! ```text
//! tc(x, y) :- edge(x, y).
//! tc(x, y) :- tc(x, z), edge(z, y).
//! ```
//!
//! when the second recursive atom can be replaced by the predicate's
//! non-recursive (base) definition — the well-known linearization rewrite the
//! paper cites ([Troy, Yu, Zhang 1989]). Linear recursion avoids the costly
//! self-join of two recursive relations and is the only form recursive CTE
//! backends accept.
//!
//! The pass handles the common chain pattern: a rule whose body consists of
//! exactly two positive atoms over the head's own relation (plus optional
//! constraints), where the predicate also has at least one non-recursive
//! rule. The second recursive atom is replaced by each base rule's body
//! (renamed), yielding one linear rule per base rule.

use std::collections::HashMap;

use raqlet_dlir::{Atom, BodyElem, DepGraph, DlirProgram, Rule, Term};

use crate::inline::dedup_body;

/// Linearize non-linear recursive rules where possible. Returns the rewritten
/// program and whether anything changed.
pub fn linearize(program: &DlirProgram) -> (DlirProgram, bool) {
    let graph = DepGraph::build(program);
    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();
    let mut changed = false;

    for rule in &program.rules {
        let head_rel = &rule.head.relation;
        if !graph.is_recursive(head_rel) || rule.aggregation.is_some() {
            out.add_rule(rule.clone());
            continue;
        }
        // Positions of body atoms that reference the head relation itself.
        let recursive_positions: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, b)| match b.as_positive_atom() {
                Some(a) if a.relation == *head_rel => Some(i),
                _ => None,
            })
            .collect();
        if recursive_positions.len() != 2 {
            out.add_rule(rule.clone());
            continue;
        }
        // Base (non-recursive) rules of the same predicate.
        let base_rules: Vec<&Rule> = program
            .rules_for(head_rel)
            .into_iter()
            .filter(|r| r.count_positive(head_rel) == 0 && r.aggregation.is_none())
            .collect();
        if base_rules.is_empty() {
            out.add_rule(rule.clone());
            continue;
        }

        // Replace the *second* recursive atom with each base definition.
        let replace_at = recursive_positions[1];
        let BodyElem::Atom(call) = &rule.body[replace_at] else { unreachable!() };
        for base in &base_rules {
            let substituted = instantiate(base, call, rule);
            let mut new_rule = rule.clone();
            new_rule.body.splice(replace_at..=replace_at, substituted);
            dedup_body(&mut new_rule.body);
            out.add_rule(new_rule);
        }
        changed = true;
    }
    (out, changed)
}

/// Instantiate `base`'s body for the call site `call` in `caller` (same
/// head-variable mapping + capture-avoiding renaming as inlining).
fn instantiate(base: &Rule, call: &Atom, caller: &Rule) -> Vec<BodyElem> {
    let mut mapping: HashMap<String, Term> = HashMap::new();
    for (def_term, call_term) in base.head.terms.iter().zip(&call.terms) {
        if let Term::Var(v) = def_term {
            mapping.insert(v.clone(), call_term.clone());
        }
    }
    let mut used: Vec<String> = caller.head.variables();
    for b in &caller.body {
        used.extend(b.variables());
    }
    let mut renames: HashMap<String, String> = HashMap::new();
    let mut fresh = 0usize;

    let map_term = |t: &Term,
                    mapping: &HashMap<String, Term>,
                    renames: &mut HashMap<String, String>,
                    used: &mut Vec<String>,
                    fresh: &mut usize|
     -> Term {
        match t {
            Term::Var(v) => {
                if let Some(r) = mapping.get(v) {
                    r.clone()
                } else {
                    let name = renames
                        .entry(v.clone())
                        .or_insert_with(|| loop {
                            let candidate = format!("{v}_l{fresh}");
                            *fresh += 1;
                            if !used.contains(&candidate) {
                                used.push(candidate.clone());
                                break candidate;
                            }
                        })
                        .clone();
                    Term::Var(name)
                }
            }
            other => other.clone(),
        }
    };

    base.body
        .iter()
        .map(|elem| match elem {
            BodyElem::Atom(a) => BodyElem::Atom(Atom::new(
                a.relation.clone(),
                a.terms
                    .iter()
                    .map(|t| map_term(t, &mapping, &mut renames, &mut used, &mut fresh))
                    .collect(),
            )),
            BodyElem::Negated(a) => BodyElem::Negated(Atom::new(
                a.relation.clone(),
                a.terms
                    .iter()
                    .map(|t| map_term(t, &mapping, &mut renames, &mut used, &mut fresh))
                    .collect(),
            )),
            BodyElem::Constraint { op, lhs, rhs } => BodyElem::Constraint {
                op: *op,
                lhs: rename_expr(lhs, &mapping, &mut renames, &mut used, &mut fresh),
                rhs: rename_expr(rhs, &mapping, &mut renames, &mut used, &mut fresh),
            },
        })
        .collect()
}

fn rename_expr(
    e: &raqlet_dlir::DlExpr,
    mapping: &HashMap<String, Term>,
    renames: &mut HashMap<String, String>,
    used: &mut Vec<String>,
    fresh: &mut usize,
) -> raqlet_dlir::DlExpr {
    use raqlet_dlir::DlExpr;
    match e {
        DlExpr::Var(v) => {
            if let Some(t) = mapping.get(v) {
                match t {
                    Term::Var(name) => DlExpr::Var(name.clone()),
                    Term::Const(c) => DlExpr::Const(c.clone()),
                    Term::Wildcard => DlExpr::Var(v.clone()),
                }
            } else {
                let name = renames
                    .entry(v.clone())
                    .or_insert_with(|| loop {
                        let candidate = format!("{v}_l{fresh}");
                        *fresh += 1;
                        if !used.contains(&candidate) {
                            used.push(candidate.clone());
                            break candidate;
                        }
                    })
                    .clone();
                DlExpr::Var(name)
            }
        }
        DlExpr::Const(c) => DlExpr::Const(c.clone()),
        DlExpr::Arith { op, lhs, rhs } => DlExpr::Arith {
            op: *op,
            lhs: Box::new(rename_expr(lhs, mapping, renames, used, fresh)),
            rhs: Box::new(rename_expr(rhs, mapping, renames, used, fresh)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_analysis::{linearity, Linearity};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    fn nonlinear_tc() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("tc", &["z", "y"])],
        ));
        p.add_output("tc");
        p
    }

    #[test]
    fn nonlinear_tc_becomes_linear() {
        let (out, changed) = linearize(&nonlinear_tc());
        assert!(changed);
        assert_eq!(linearity(&out), Linearity::Linear);
        // The rewritten recursive rule joins tc with the base relation.
        let recursive =
            out.rules_for("tc").into_iter().find(|r| r.count_positive("tc") == 1).unwrap();
        assert!(recursive.positive_dependencies().contains(&"edge"), "{recursive}");
    }

    #[test]
    fn linear_programs_are_untouched() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        let (out, changed) = linearize(&p);
        assert!(!changed);
        assert_eq!(out.rules.len(), 2);
    }

    #[test]
    fn predicates_without_base_rules_are_left_alone() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("tc", &["z", "y"])],
        ));
        let (_, changed) = linearize(&p);
        assert!(!changed);
    }

    #[test]
    fn multiple_base_rules_produce_multiple_linear_rules() {
        let mut p = nonlinear_tc();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge2", &["x", "y"])]));
        let (out, changed) = linearize(&p);
        assert!(changed);
        // 2 base rules + 2 linearized recursive rules.
        assert_eq!(out.rules_for("tc").len(), 4);
        assert_eq!(linearity(&out), Linearity::Linear);
    }

    #[test]
    fn base_rule_local_variables_are_renamed() {
        // Base rule has an extra local variable w that must not collide.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("edge", &["x", "y", "w"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "w"]), atom("tc", &["w", "y"])],
        ));
        let (out, changed) = linearize(&p);
        assert!(changed);
        let recursive =
            out.rules_for("tc").into_iter().find(|r| r.count_positive("tc") == 1).unwrap();
        let edge = recursive
            .body
            .iter()
            .filter_map(|b| b.as_positive_atom())
            .find(|a| a.relation == "edge")
            .unwrap();
        // edge(w, y, w_l...) — the base-local third column must not be `w`.
        assert_ne!(edge.terms[2], Term::var("w"), "{recursive}");
    }
}
