//! Semantic join optimizations (Section 5, "Semantic Join Optimizations").
//!
//! Using the integrity constraints captured in the schema — every node EDB's
//! first column is its primary key, every edge EDB's first two columns are a
//! key — two optimizations are applied:
//!
//! * **Key-based self-join elimination**: two positive atoms over the same
//!   relation whose key columns bind identical terms describe the same row;
//!   they are merged into a single atom (unifying wildcards with bound terms)
//!   and the duplicate is removed. This generalises the exact-duplicate
//!   removal performed after inlining.
//! * **Redundant key-lookup elimination**: a node atom that binds only its
//!   key column and whose variable is already constrained by an edge atom
//!   whose endpoint columns are declared to reference that node type is a
//!   pure existence check implied by referential integrity; it can be
//!   dropped when the schema marks the relation as derived from a PG node
//!   type (paper: "eliminating joins based on reasoning over integrity
//!   constraints").

use raqlet_common::schema::RelationKind;
use raqlet_dlir::{Atom, BodyElem, DlirProgram, Rule, Term};

/// Run the semantic join optimizations. Returns the rewritten program and
/// whether anything changed.
pub fn optimize_joins(program: &DlirProgram) -> (DlirProgram, bool) {
    let mut out = DlirProgram::new(program.schema.clone());
    out.outputs = program.outputs.clone();
    out.annotations = program.annotations.clone();
    let mut changed = false;
    for rule in &program.rules {
        let (rule1, c1) = merge_key_self_joins(program, rule);
        let (rule2, c2) = drop_implied_node_lookups(program, &rule1);
        changed |= c1 | c2;
        out.add_rule(rule2);
    }
    (out, changed)
}

/// Merge positive atoms over the same relation whose declared key columns are
/// bound to identical terms.
fn merge_key_self_joins(program: &DlirProgram, rule: &Rule) -> (Rule, bool) {
    let mut body: Vec<BodyElem> = Vec::new();
    let mut changed = false;

    'outer: for elem in &rule.body {
        let BodyElem::Atom(atom) = elem else {
            body.push(elem.clone());
            continue;
        };
        let Some(decl) = program.schema.get(&atom.relation) else {
            body.push(elem.clone());
            continue;
        };
        if decl.key.is_empty() {
            body.push(elem.clone());
            continue;
        }
        // Look for an existing atom over the same relation with the same key
        // terms; merge into it if found.
        for existing in body.iter_mut() {
            let BodyElem::Atom(prev) = existing else { continue };
            if prev.relation != atom.relation {
                continue;
            }
            let same_key = decl.key.iter().all(|&k| {
                matches!((&prev.terms.get(k), &atom.terms.get(k)), (Some(a), Some(b))
                    if a == b && !matches!(a, Term::Wildcard))
            });
            if !same_key {
                continue;
            }
            if let Some(merged) = merge_atoms(prev, atom) {
                *prev = merged;
                changed = true;
                continue 'outer;
            }
        }
        body.push(elem.clone());
    }

    if changed {
        let mut r = rule.clone();
        r.body = body;
        (r, true)
    } else {
        (rule.clone(), false)
    }
}

/// Merge two atoms over the same relation describing the same row. Returns
/// `None` if they bind conflicting constants (the rule is then left alone —
/// constant propagation will discover the contradiction).
fn merge_atoms(a: &Atom, b: &Atom) -> Option<Atom> {
    if a.terms.len() != b.terms.len() {
        return None;
    }
    let mut terms = Vec::with_capacity(a.terms.len());
    let mut extra_equalities = false;
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        let merged = match (ta, tb) {
            (Term::Wildcard, t) | (t, Term::Wildcard) => t.clone(),
            (x, y) if x == y => x.clone(),
            // Two different variables bound to the same column would need an
            // extra equality constraint; bail out to keep the pass simple.
            _ => {
                extra_equalities = true;
                break;
            }
        };
        terms.push(merged);
    }
    if extra_equalities {
        None
    } else {
        Some(Atom::new(a.relation.clone(), terms))
    }
}

/// Drop node-EDB atoms that only re-check existence of a key already implied
/// by an edge atom in the same body (referential integrity of the generated
/// schema: edge rows only reference existing node keys).
fn drop_implied_node_lookups(program: &DlirProgram, rule: &Rule) -> (Rule, bool) {
    // Which variables appear in the endpoint columns of an edge EDB atom, and
    // which node relation does referential integrity imply for them? The
    // generated edge EDB names encode the endpoint labels as
    // `<SrcLabel>_<EDGE_LABEL>_<DstLabel>`.
    let mut edge_endpoint_vars: Vec<(String, String)> = Vec::new();
    for elem in &rule.body {
        if let BodyElem::Atom(atom) = elem {
            if let Some(decl) = program.schema.get(&atom.relation) {
                if decl.kind == RelationKind::EdgeEdb {
                    let src_label = atom.relation.split('_').next().unwrap_or_default().to_string();
                    let dst_label =
                        atom.relation.split('_').next_back().unwrap_or_default().to_string();
                    for (idx, label) in [(0usize, src_label), (1usize, dst_label)] {
                        if let Some(Term::Var(v)) = atom.terms.get(idx) {
                            edge_endpoint_vars.push((v.clone(), label));
                        }
                    }
                }
            }
        }
    }
    if edge_endpoint_vars.is_empty() {
        return (rule.clone(), false);
    }

    let mut changed = false;
    let body: Vec<BodyElem> = rule
        .body
        .iter()
        .filter(|elem| {
            let BodyElem::Atom(atom) = elem else { return true };
            let Some(decl) = program.schema.get(&atom.relation) else { return true };
            if decl.kind != RelationKind::NodeEdb {
                return true;
            }
            // Keep the atom if it binds anything beyond its key column.
            let binds_only_key = atom.terms.iter().enumerate().all(|(i, t)| {
                if i == 0 {
                    true
                } else {
                    matches!(t, Term::Wildcard)
                }
            });
            if !binds_only_key {
                return true;
            }
            let Some(Term::Var(key_var)) = atom.terms.first() else { return true };
            let implied =
                edge_endpoint_vars.iter().any(|(v, label)| v == key_var && *label == atom.relation);
            if implied {
                changed = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();

    if changed {
        let mut r = rule.clone();
        r.body = body;
        (r, true)
    } else {
        (rule.clone(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_common::schema::{Column, DlSchema, RelationDecl, RelationKind};
    use raqlet_common::ValueType;
    use raqlet_dlir::Rule;

    fn snb_schema() -> DlSchema {
        let mut s = DlSchema::new();
        let mut person = RelationDecl::new(
            "Person",
            vec![
                Column::new("id", ValueType::Int),
                Column::new("firstName", ValueType::Text),
                Column::new("locationIP", ValueType::Text),
            ],
            RelationKind::NodeEdb,
        );
        person.key = vec![0];
        s.add(person).unwrap();
        let mut city = RelationDecl::new(
            "City",
            vec![Column::new("id", ValueType::Int), Column::new("name", ValueType::Text)],
            RelationKind::NodeEdb,
        );
        city.key = vec![0];
        s.add(city).unwrap();
        let mut edge = RelationDecl::new(
            "Person_IS_LOCATED_IN_City",
            vec![
                Column::new("id1", ValueType::Int),
                Column::new("id2", ValueType::Int),
                Column::new("id", ValueType::Int),
            ],
            RelationKind::EdgeEdb,
        );
        edge.key = vec![0, 1];
        s.add(edge).unwrap();
        s
    }

    #[test]
    fn key_self_joins_are_merged() {
        // Return(f) :- Person(n, _, _), Person(n, f, _) — same key `n`.
        let mut p = DlirProgram::new(snb_schema());
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["f"]),
            vec![
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::Wildcard, Term::Wildcard],
                )),
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::var("f"), Term::Wildcard],
                )),
            ],
        ));
        p.add_output("Return");
        let (out, changed) = optimize_joins(&p);
        assert!(changed);
        let r = out.rules_for("Return")[0];
        assert_eq!(r.count_positive("Person"), 1);
        // The merged atom keeps the firstName binding.
        let person = r.body.iter().find_map(|b| b.as_positive_atom()).unwrap();
        assert_eq!(person.to_string(), "Person(n, f, _)");
    }

    #[test]
    fn different_keys_are_not_merged() {
        let mut p = DlirProgram::new(snb_schema());
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["a", "b"]),
            vec![
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("a"), Term::Wildcard, Term::Wildcard],
                )),
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("b"), Term::Wildcard, Term::Wildcard],
                )),
            ],
        ));
        p.add_output("Return");
        let (out, _) = optimize_joins(&p);
        // drop_implied_node_lookups doesn't apply (no edge atom); both stay,
        // except they only bind keys... but they are head variables via key,
        // so they must stay to bind a and b.
        let r = out.rules_for("Return")[0];
        assert_eq!(r.count_positive("Person"), 2);
    }

    #[test]
    fn conflicting_constant_columns_are_left_alone() {
        let mut p = DlirProgram::new(snb_schema());
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["n"]),
            vec![
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::Const("a".into()), Term::Wildcard],
                )),
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::Const("b".into()), Term::Wildcard],
                )),
            ],
        ));
        p.add_output("Return");
        let (out, changed) = optimize_joins(&p);
        assert!(!changed);
        assert_eq!(out.rules_for("Return")[0].count_positive("Person"), 2);
    }

    #[test]
    fn node_existence_checks_implied_by_edges_are_dropped() {
        // Match1(n, x1, p) :- Person_IS_LOCATED_IN_City(n, p, x1), Person(n, _, _), City(p, _).
        // Referential integrity of the generated EDBs implies both node atoms.
        let mut prog = DlirProgram::new(snb_schema());
        prog.add_rule(Rule::new(
            Atom::with_vars("Match1", &["n", "x1", "p"]),
            vec![
                BodyElem::Atom(Atom::with_vars("Person_IS_LOCATED_IN_City", &["n", "p", "x1"])),
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::Wildcard, Term::Wildcard],
                )),
                BodyElem::Atom(Atom::new("City", vec![Term::var("p"), Term::Wildcard])),
            ],
        ));
        prog.add_output("Match1");
        let (out, changed) = optimize_joins(&prog);
        assert!(changed);
        let rule = out.rules_for("Match1")[0];
        assert_eq!(rule.body.len(), 1);
        assert_eq!(rule.count_positive("Person"), 0);
        assert_eq!(rule.count_positive("City"), 0);
    }

    #[test]
    fn node_atoms_binding_properties_are_kept() {
        // The Person atom binds firstName, so it cannot be dropped.
        let mut prog = DlirProgram::new(snb_schema());
        prog.add_rule(Rule::new(
            Atom::with_vars("Return", &["firstName"]),
            vec![
                BodyElem::Atom(Atom::with_vars("Person_IS_LOCATED_IN_City", &["n", "p", "x1"])),
                BodyElem::Atom(Atom::new(
                    "Person",
                    vec![Term::var("n"), Term::var("firstName"), Term::Wildcard],
                )),
            ],
        ));
        prog.add_output("Return");
        let (out, _) = optimize_joins(&prog);
        let rule = out.rules_for("Return")[0];
        assert_eq!(rule.count_positive("Person"), 1);
    }

    #[test]
    fn relations_without_schema_entries_are_untouched() {
        let mut prog = DlirProgram::default();
        prog.add_rule(Rule::new(
            Atom::with_vars("q", &["x"]),
            vec![
                BodyElem::Atom(Atom::with_vars("mystery", &["x"])),
                BodyElem::Atom(Atom::with_vars("mystery", &["x"])),
            ],
        ));
        prog.add_output("q");
        let (out, changed) = optimize_joins(&prog);
        assert!(!changed);
        assert_eq!(out.rules_for("q")[0].count_positive("mystery"), 2);
    }
}
