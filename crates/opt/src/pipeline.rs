//! The optimization pass manager.
//!
//! Passes are small `DlirProgram → DlirProgram` functions; the pipeline runs
//! them in a fixed order, repeating until a fixpoint (or an iteration cap) is
//! reached, and records which passes fired. The ordering mirrors Section 5 of
//! the paper: inline first (it exposes further opportunities), then
//! semantic join elimination and constant propagation, then dead-rule
//! elimination, and finally the recursion-aware rewrites (linearization and
//! magic sets).

use raqlet_common::Result;
use raqlet_dlir::{validate, DlirProgram};

use crate::constprop::propagate_constants;
use crate::dead::eliminate_dead_rules;
use crate::inline::{inline, InlineConfig};
use crate::linearize::linearize;
use crate::magic::magic_sets;
use crate::semantic::optimize_joins;

/// How aggressively to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization: the program is returned as-is (the paper's
    /// "unoptimized" configuration).
    None,
    /// Inlining, constant propagation, semantic join elimination and
    /// dead-rule elimination.
    Basic,
    /// Everything in `Basic` plus linearization and the magic-set
    /// transformation (the paper's "fully optimized" configuration).
    #[default]
    Full,
}

/// The execution backend a program is being optimized *for*. Some rewrites
/// are profitable on one paradigm and pathological on another: magic sets
/// speed up bottom-up Datalog engines by an order of magnitude, but the
/// magic predicates turn into extra mutually-recursive CTE branches that
/// naive recursive-CTE evaluators (the SQL engines) re-join on every
/// working-table iteration — the CQ2-on-duckdb pathology recorded in
/// `BENCH_baseline.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetBackend {
    /// No backend commitment: run every pass of the level (the historical
    /// behaviour, also right for bottom-up Datalog engines like Soufflé).
    #[default]
    Any,
    /// A bottom-up Datalog engine (Soufflé or the in-tree simulator).
    Datalog,
    /// A SQL engine evaluating recursive CTEs with working-table semantics
    /// (DuckDB / HyPer or the in-tree simulators): magic sets are skipped.
    Sql,
}

impl TargetBackend {
    /// True if the magic-set rewrite helps (or at least does not hurt) this
    /// backend.
    pub fn wants_magic_sets(&self) -> bool {
        !matches!(self, TargetBackend::Sql)
    }
}

/// Which individual passes to run; constructed from an [`OptLevel`] or
/// customised field by field (used by the ablation benchmarks).
#[derive(Debug, Clone)]
pub struct PassConfig {
    pub inline: bool,
    pub inline_config: InlineConfig,
    pub constant_propagation: bool,
    pub semantic_joins: bool,
    pub dead_rule_elimination: bool,
    pub linearization: bool,
    pub magic_sets: bool,
    /// Maximum number of whole-pipeline iterations.
    pub max_iterations: usize,
}

impl PassConfig {
    /// The pass set for an optimization level (no backend commitment).
    pub fn for_level(level: OptLevel) -> Self {
        Self::for_target(level, TargetBackend::Any)
    }

    /// The pass set for an optimization level, specialised for a target
    /// backend: SQL backends drop the magic-set rewrite (see
    /// [`TargetBackend`]).
    pub fn for_target(level: OptLevel, backend: TargetBackend) -> Self {
        let all = PassConfig {
            inline: true,
            inline_config: InlineConfig::default(),
            constant_propagation: true,
            semantic_joins: true,
            dead_rule_elimination: true,
            linearization: true,
            magic_sets: backend.wants_magic_sets(),
            max_iterations: 4,
        };
        match level {
            OptLevel::None => PassConfig {
                inline: false,
                constant_propagation: false,
                semantic_joins: false,
                dead_rule_elimination: false,
                linearization: false,
                magic_sets: false,
                ..all
            },
            OptLevel::Basic => PassConfig { linearization: false, magic_sets: false, ..all },
            OptLevel::Full => all,
        }
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::for_level(OptLevel::Full)
    }
}

/// The outcome of running the optimizer.
#[derive(Debug, Clone)]
pub struct OptimizedProgram {
    /// The optimized DLIR program.
    pub program: DlirProgram,
    /// Names of the passes that changed the program, in application order
    /// (repeated entries mean the pass fired in several iterations).
    pub applied_passes: Vec<String>,
    /// Rule count before and after.
    pub rules_before: usize,
    /// Rule count after optimization.
    pub rules_after: usize,
}

/// Optimize a DLIR program at the given level.
pub fn optimize(program: &DlirProgram, level: OptLevel) -> Result<OptimizedProgram> {
    optimize_with(program, &PassConfig::for_level(level))
}

/// Optimize a DLIR program at the given level for a specific target backend.
pub fn optimize_for(
    program: &DlirProgram,
    level: OptLevel,
    backend: TargetBackend,
) -> Result<OptimizedProgram> {
    optimize_with(program, &PassConfig::for_target(level, backend))
}

/// Optimize with an explicit pass configuration.
pub fn optimize_with(program: &DlirProgram, config: &PassConfig) -> Result<OptimizedProgram> {
    let rules_before = program.rules.len();
    let mut current = program.clone();
    let mut applied = Vec::new();

    for _ in 0..config.max_iterations {
        let mut changed_this_round = false;

        if config.inline {
            let (next, changed) = inline(&current, &config.inline_config);
            if changed {
                applied.push("inline".to_string());
                current = next;
                changed_this_round = true;
            }
        }
        if config.constant_propagation {
            let (next, changed) = propagate_constants(&current);
            if changed {
                applied.push("constant-propagation".to_string());
                current = next;
                changed_this_round = true;
            }
        }
        if config.semantic_joins {
            let (next, changed) = optimize_joins(&current);
            if changed {
                applied.push("semantic-joins".to_string());
                current = next;
                changed_this_round = true;
            }
        }
        if config.dead_rule_elimination {
            let (next, changed) = eliminate_dead_rules(&current);
            if changed {
                applied.push("dead-rule-elimination".to_string());
                current = next;
                changed_this_round = true;
            }
        }
        if config.linearization {
            let (next, changed) = linearize(&current);
            if changed {
                applied.push("linearization".to_string());
                current = next;
                changed_this_round = true;
            }
        }
        if config.magic_sets {
            let (next, changed) = magic_sets(&current);
            if changed {
                applied.push("magic-sets".to_string());
                current = next;
                changed_this_round = true;
            }
        }

        if !changed_this_round {
            break;
        }
    }

    // The optimizer must never produce an invalid program.
    validate(&current)?;
    Ok(OptimizedProgram {
        rules_after: current.rules.len(),
        program: current,
        applied_passes: applied,
        rules_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_dlir::{Atom, BodyElem, CmpOp, DlExpr, Rule};

    fn atom(name: &str, vars: &[&str]) -> BodyElem {
        BodyElem::Atom(Atom::with_vars(name, vars))
    }

    /// The paper's running example in DLIR form (Figure 3d).
    fn figure3d() -> DlirProgram {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(
            Atom::with_vars("Match1", &["n", "x1", "p"]),
            vec![
                atom("Person_IS_LOCATED_IN_City", &["n", "p", "x1"]),
                atom("Person", &["n"]),
                atom("City", &["p"]),
            ],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Where1", &["n", "x1", "p"]),
            vec![
                atom("Match1", &["n", "x1", "p"]),
                atom("Person", &["n"]),
                BodyElem::Constraint { op: CmpOp::Eq, lhs: DlExpr::var("n"), rhs: DlExpr::int(42) },
            ],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["n", "cityId"]),
            vec![
                atom("Where1", &["n", "x1", "p"]),
                BodyElem::Constraint {
                    op: CmpOp::Eq,
                    lhs: DlExpr::var("p"),
                    rhs: DlExpr::var("cityId"),
                },
            ],
        ));
        p.add_output("Return");
        p
    }

    #[test]
    fn level_none_is_identity() {
        let p = figure3d();
        let out = optimize(&p, OptLevel::None).unwrap();
        assert_eq!(out.program, p);
        assert!(out.applied_passes.is_empty());
        assert_eq!(out.rules_before, out.rules_after);
    }

    #[test]
    fn full_optimization_of_the_running_example_leaves_one_rule() {
        // Figure 4b: after inlining + dead rule elimination only the Return
        // rule remains.
        let out = optimize(&figure3d(), OptLevel::Full).unwrap();
        assert_eq!(out.rules_after, 1);
        assert_eq!(out.program.rules[0].head.relation, "Return");
        assert!(out.applied_passes.contains(&"inline".to_string()));
        assert!(out.applied_passes.contains(&"dead-rule-elimination".to_string()));
    }

    #[test]
    fn optimizer_output_is_always_valid() {
        let out = optimize(&figure3d(), OptLevel::Full).unwrap();
        assert!(raqlet_dlir::validate(&out.program).is_ok());
    }

    #[test]
    fn basic_level_skips_recursion_rewrites() {
        // Non-linear TC with a bound source: Basic leaves it non-linear and
        // without magic predicates; Full applies both.
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("tc", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
        ));
        p.add_output("Return");

        let basic = optimize(&p, OptLevel::Basic).unwrap();
        assert!(!basic.applied_passes.contains(&"linearization".to_string()));
        assert!(!basic.program.idb_names().iter().any(|n| n.starts_with("Magic_")));

        let full = optimize(&p, OptLevel::Full).unwrap();
        assert!(full.applied_passes.contains(&"linearization".to_string()));
        assert!(full.applied_passes.contains(&"magic-sets".to_string()));
        assert!(full.program.idb_names().iter().any(|n| n.starts_with("Magic_")));
        assert!(raqlet_analysis::is_linear(&full.program));
    }

    #[test]
    fn sql_target_skips_magic_sets_but_keeps_the_rest() {
        let mut p = DlirProgram::default();
        p.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
        p.add_rule(Rule::new(
            Atom::with_vars("tc", &["x", "y"]),
            vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
        ));
        p.add_rule(Rule::new(
            Atom::with_vars("Return", &["y"]),
            vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
        ));
        p.add_output("Return");

        let sql = optimize_for(&p, OptLevel::Full, TargetBackend::Sql).unwrap();
        assert!(!sql.applied_passes.contains(&"magic-sets".to_string()));
        assert!(!sql.program.idb_names().iter().any(|n| n.starts_with("Magic_")));

        let datalog = optimize_for(&p, OptLevel::Full, TargetBackend::Datalog).unwrap();
        assert!(datalog.applied_passes.contains(&"magic-sets".to_string()));
        assert!(datalog.program.idb_names().iter().any(|n| n.starts_with("Magic_")));
    }

    #[test]
    fn pass_config_allows_individual_ablation() {
        let mut config = PassConfig::for_level(OptLevel::Full);
        config.inline = false;
        let out = optimize_with(&figure3d(), &config).unwrap();
        assert!(!out.applied_passes.contains(&"inline".to_string()));
        // Without inlining the chain Match1 -> Where1 -> Return stays.
        assert_eq!(out.rules_after, 3);
    }

    #[test]
    fn optimization_reports_rule_counts() {
        let out = optimize(&figure3d(), OptLevel::Full).unwrap();
        assert_eq!(out.rules_before, 3);
        assert!(out.rules_after <= out.rules_before);
    }
}
