//! # raqlet-opt
//!
//! DLIR-level query optimization (Section 5 of the paper). The passes are
//! independent `DlirProgram → DlirProgram` rewrites orchestrated by a small
//! pass manager ([`pipeline`]):
//!
//! * [`mod@inline`] — view/rule inlining with duplicate-atom removal;
//! * [`dead`] — dead rule elimination;
//! * [`constprop`] — constant propagation and constraint folding;
//! * [`semantic`] — semantic join optimizations driven by schema keys
//!   (self-join merging, referential-integrity join elimination);
//! * [`magic`] — the magic-set transformation (pushing selections past
//!   recursion);
//! * [`mod@linearize`] — rewriting non-linear recursion into linear recursion.
//!
//! All passes preserve the program's least-model semantics; the integration
//! and property tests in the workspace check this by executing optimized and
//! unoptimized programs on the same data and comparing results.
//!
//! Passes can be specialised for the execution backend: the magic-set
//! rewrite speeds up bottom-up Datalog engines but is pathological under
//! recursive-CTE working-table evaluation, so SQL-targeted pipelines skip it
//! ([`TargetBackend`]).
//!
//! ```
//! use raqlet_dlir::{Atom, BodyElem, DlExpr, DlirProgram, Rule};
//! use raqlet_opt::{optimize_for, OptLevel, TargetBackend};
//!
//! // tc(x, y) :- edge(x, y).  tc(x, y) :- tc(x, z), edge(z, y).
//! // Return(y) :- tc(x, y), x = 1.
//! let mut program = DlirProgram::default();
//! let atom = |name: &str, vars: &[&str]| BodyElem::Atom(Atom::with_vars(name, vars));
//! program.add_rule(Rule::new(Atom::with_vars("tc", &["x", "y"]), vec![atom("edge", &["x", "y"])]));
//! program.add_rule(Rule::new(
//!     Atom::with_vars("tc", &["x", "y"]),
//!     vec![atom("tc", &["x", "z"]), atom("edge", &["z", "y"])],
//! ));
//! program.add_rule(Rule::new(
//!     Atom::with_vars("Return", &["y"]),
//!     vec![atom("tc", &["x", "y"]), BodyElem::eq(DlExpr::var("x"), DlExpr::int(1))],
//! ));
//! program.add_output("Return");
//!
//! // The Datalog-targeted pipeline pushes the bound source into the
//! // recursion via magic sets; the SQL-targeted one leaves it out.
//! let datalog = optimize_for(&program, OptLevel::Full, TargetBackend::Datalog).unwrap();
//! assert!(datalog.program.idb_names().iter().any(|n| n.starts_with("Magic_")));
//! assert!(datalog.applied_passes.contains(&"magic-sets".to_string()));
//!
//! let sql = optimize_for(&program, OptLevel::Full, TargetBackend::Sql).unwrap();
//! assert!(!sql.program.idb_names().iter().any(|n| n.starts_with("Magic_")));
//! ```

// Robustness: non-test code must not unwrap/expect its way into a panic on a
// reachable path — every justified exception carries an `#[allow]` with its
// invariant spelled out. Tests keep the ergonomic forms.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod constprop;
pub mod dead;
pub mod inline;
pub mod linearize;
pub mod magic;
pub mod pipeline;
pub mod semantic;

pub use constprop::propagate_constants;
pub use dead::eliminate_dead_rules;
pub use inline::{inline, InlineConfig};
pub use linearize::linearize;
pub use magic::magic_sets;
pub use pipeline::{
    optimize, optimize_for, optimize_with, OptLevel, OptimizedProgram, PassConfig, TargetBackend,
};
pub use semantic::optimize_joins;
