//! # raqlet-opt
//!
//! DLIR-level query optimization (Section 5 of the paper). The passes are
//! independent `DlirProgram → DlirProgram` rewrites orchestrated by a small
//! pass manager ([`pipeline`]):
//!
//! * [`inline`] — view/rule inlining with duplicate-atom removal;
//! * [`dead`] — dead rule elimination;
//! * [`constprop`] — constant propagation and constraint folding;
//! * [`semantic`] — semantic join optimizations driven by schema keys
//!   (self-join merging, referential-integrity join elimination);
//! * [`magic`] — the magic-set transformation (pushing selections past
//!   recursion);
//! * [`linearize`] — rewriting non-linear recursion into linear recursion.
//!
//! All passes preserve the program's least-model semantics; the integration
//! and property tests in the workspace check this by executing optimized and
//! unoptimized programs on the same data and comparing results.

pub mod constprop;
pub mod dead;
pub mod inline;
pub mod linearize;
pub mod magic;
pub mod pipeline;
pub mod semantic;

pub use constprop::propagate_constants;
pub use dead::eliminate_dead_rules;
pub use inline::{inline, InlineConfig};
pub use linearize::linearize;
pub use magic::magic_sets;
pub use pipeline::{optimize, optimize_with, OptLevel, OptimizedProgram, PassConfig};
pub use semantic::optimize_joins;
