//! A tiny deterministic pseudo-random number generator.
//!
//! The build environment is offline, so the `rand` crate is unavailable; the
//! LDBC data generator and the property-test suites need nothing more than a
//! seedable, reproducible stream of uniform integers. This is SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number Generators*),
//! the same mixer `rand` uses to seed its own generators: one u64 of state,
//! full 2^64 period, passes BigCrush when used as a generator.

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw u64 in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[low, high)`. Panics if the range is empty.
    ///
    /// Uses multiply-shift range reduction (Lemire); the slight modulo bias
    /// of the simpler approach is irrelevant here but this is just as cheap.
    pub fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range called with empty range {range:?}");
        // Wrapping ops: a span wider than i64::MAX (e.g. i64::MIN..1) is
        // still a valid u64, and two's-complement wrap-around makes both the
        // subtraction and the final addition exact in that case.
        let span = range.end.wrapping_sub(range.start) as u64;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start.wrapping_add(hi as i64)
    }

    /// A uniform usize in `[low, high)`. Panics if the range is empty.
    pub fn gen_index(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range(range.start as i64..range.end as i64) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
        }
        for _ in 0..10_000 {
            let v = rng.gen_index(0..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn gen_range_handles_spans_wider_than_i64_max() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(i64::MIN..1);
            assert!(v < 1);
        }
        let v = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_index(0..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!((0..1_000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1_000).all(|_| rng.gen_bool(1.0)));
    }
}
