//! Derivation-count bookkeeping for incremental view maintenance.
//!
//! Counting-based maintenance (the classic alternative to DRed for
//! non-recursive rules) stores, per derived row, *how many* rule-body
//! derivations currently produce it. Inserting upstream facts adds
//! derivations; deleting upstream facts subtracts them; a derived row is
//! physically retracted exactly when its count reaches zero. The counts key
//! on packed [`Cell`] rows so the engine never decodes values on the
//! maintenance path.

use crate::cell::Cell;
use crate::hash::FxHashMap;

/// Per-derived-row derivation counts for one relation.
///
/// The map is keyed by the arity-wide packed row. Counts are signed while a
/// delta batch is being folded in, but a consistent database never stores a
/// negative total — [`SupportCounts::apply`] reports (and clamps) the
/// transition so callers can translate count changes into physical
/// insertions and retractions.
#[derive(Debug, Clone, Default)]
pub struct SupportCounts {
    counts: FxHashMap<Vec<Cell>, i64>,
}

/// What happened to a row's liveness when a count delta was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportChange {
    /// The row went from zero (absent) to a positive count: insert it.
    BecameLive,
    /// The row's count reached zero: retract it.
    BecameDead,
    /// The count changed but liveness did not.
    Unchanged,
}

impl SupportCounts {
    /// An empty count table.
    pub fn new() -> Self {
        SupportCounts::default()
    }

    /// Record `n` additional derivations of `row` (used while (re)building
    /// the table from a full evaluation).
    pub fn add(&mut self, row: &[Cell], n: i64) {
        if n != 0 {
            *self.counts.entry(row.to_vec()).or_insert(0) += n;
        }
    }

    /// Apply a signed count delta to `row`, returning the liveness
    /// transition. A negative resulting total indicates the caller's delta
    /// computation retracted derivations that were never counted; the total
    /// is clamped to zero (and reported as [`SupportChange::BecameDead`]) so
    /// the stored state stays consistent.
    pub fn apply(&mut self, row: &[Cell], delta: i64) -> SupportChange {
        if delta == 0 {
            return SupportChange::Unchanged;
        }
        let entry = self.counts.entry(row.to_vec()).or_insert(0);
        let before = *entry;
        *entry = (before + delta).max(0);
        let after = *entry;
        if after == 0 {
            self.counts.remove(row);
        }
        match (before > 0, after > 0) {
            (false, true) => SupportChange::BecameLive,
            (true, false) => SupportChange::BecameDead,
            _ => SupportChange::Unchanged,
        }
    }

    /// The current derivation count of `row` (zero when absent).
    pub fn count(&self, row: &[Cell]) -> i64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Number of rows with a positive count.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no row has a positive count.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Drop every count (used when a scoped recompute rebuilds the table).
    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.counts
            .keys()
            .map(|k| k.len() * std::mem::size_of::<Cell>() + std::mem::size_of::<i64>())
            .sum::<usize>()
            + self.counts.capacity() * std::mem::size_of::<(Vec<Cell>, i64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_transitions() {
        let mut counts = SupportCounts::new();
        assert_eq!(counts.apply(&[1, 2], 2), SupportChange::BecameLive);
        assert_eq!(counts.apply(&[1, 2], -1), SupportChange::Unchanged);
        assert_eq!(counts.count(&[1, 2]), 1);
        assert_eq!(counts.apply(&[1, 2], -1), SupportChange::BecameDead);
        assert_eq!(counts.count(&[1, 2]), 0);
        assert!(counts.is_empty());
    }

    #[test]
    fn negative_totals_clamp_to_zero() {
        let mut counts = SupportCounts::new();
        counts.add(&[7], 1);
        assert_eq!(counts.apply(&[7], -5), SupportChange::BecameDead);
        // A later insertion starts from zero, not from the negative residue.
        assert_eq!(counts.apply(&[7], 1), SupportChange::BecameLive);
        assert_eq!(counts.count(&[7]), 1);
    }

    #[test]
    fn zero_delta_is_a_no_op() {
        let mut counts = SupportCounts::new();
        assert_eq!(counts.apply(&[3], 0), SupportChange::Unchanged);
        assert!(counts.is_empty());
    }
}
