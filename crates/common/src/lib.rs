//! # raqlet-common
//!
//! Shared data model for the Raqlet cross-paradigm compiler.
//!
//! This crate contains the types that every other Raqlet crate builds on:
//!
//! * [`value::Value`] — the dynamically typed scalar value that flows through
//!   every engine (graph, relational, deductive);
//! * [`types::ValueType`] — the static type lattice used by schemas and by
//!   type inference in the IR lowerings;
//! * [`schema`] — the property-graph schema (PG-Schema) and the Datalog
//!   schema (DL-Schema) models, mirroring Figure 2 of the paper;
//! * [`cell`] — packed, dictionary-encoded tuple cells (tagged `u64` words)
//!   and the per-database [`cell::ValueDict`];
//! * [`relation`] — in-memory relations (flat packed-row arenas) and
//!   databases, shared by the Datalog and SQL execution substrates;
//! * [`guard`] — cooperative execution governance: the [`guard::QueryGuard`]
//!   deadlines/budgets/cancellation checked at engine checkpoints;
//! * [`stats`] — evaluation counters ([`stats::EvalStats`]) shared by the
//!   engines and by guard-trip errors;
//! * [`hash`] — the fast multiply-xor hasher used on the storage hot paths;
//! * [`symbol`] — a string interner so relation/variable names compare by id;
//! * [`rng`] — a tiny deterministic PRNG for data generators and tests;
//! * [`diag`] — coded diagnostics ([`diag::Diagnostic`], `RAQxxx` codes,
//!   allow/warn/deny severities) shared by DLIR validation and the
//!   `raqcheck` analyzer;
//! * [`error`] — the common error type.
//!
//! The crate is dependency-free on purpose so every layer of the compiler can
//! use it without pulling anything external into the build.

#![deny(missing_docs)]
// Robustness: non-test code must not unwrap/expect its way into a panic on a
// reachable path — every justified exception carries an `#[allow]` with its
// invariant spelled out. Tests keep the ergonomic forms.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cell;
pub mod diag;
pub mod error;
pub mod guard;
pub mod hash;
pub mod ids;
pub mod relation;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod support;
pub mod symbol;
pub mod types;
pub mod value;

pub use cell::{Cell, ValueDict};
pub use diag::{DiagCode, Diagnostic, Severity, SeverityConfig};
pub use error::{RaqletError, Result};
pub use guard::{CancellationToken, CheckPoint, InjectedFault, QueryGuard};
pub use relation::{Database, Relation, Tuple};
pub use rng::SplitMix64;
pub use schema::{DlSchema, PgSchema};
pub use stats::EvalStats;
pub use support::{SupportChange, SupportCounts};
pub use symbol::{Interner, Symbol};
pub use types::ValueType;
pub use value::Value;
