//! Runtime values.
//!
//! Raqlet's engines and IR constant folding all operate on [`Value`]. The type
//! mirrors the paper's data model: Datalog `number` (64-bit integers), Datalog
//! `symbol` (strings), plus booleans and SQL-style `NULL` for the relational
//! backend. Floating point is intentionally not part of the model — the LDBC
//! read queries Raqlet targets only use integers, strings and dates (encoded
//! as integers), and omitting floats keeps `Value: Eq + Hash + Ord`, which the
//! set-semantics engines rely on.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::types::ValueType;

/// A dynamically typed scalar value.
///
/// Strings are reference-counted (`Arc<str>`): tuples flow through join
/// environments, persistent indexes and result sets, and each hop clones the
/// value — an atomic increment instead of a heap copy keeps wide
/// string-carrying tuples cheap everywhere (and keeps the door open for
/// parallel evaluation, hence `Arc` over `Rc`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer (Datalog `number`). Dates are encoded as
    /// `yyyymmdd` integers and datetimes as epoch milliseconds.
    Int(i64),
    /// UTF-8 string (Datalog `symbol`).
    Str(Arc<str>),
    /// Boolean, used by predicates and the property-graph model.
    Bool(bool),
    /// SQL NULL / missing property. Compares equal to itself so that
    /// set-semantics deduplication behaves deterministically.
    Null,
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The static type of this value, or `None` for `Null` (which inhabits
    /// every nullable type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Str(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null => None,
        }
    }

    /// Return the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Return the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Return the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style truthiness: `Bool(true)` is true, everything else false.
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Three-valued-logic aware equality used by the SQL engine: comparing
    /// with NULL yields `None` (unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self == other)
        }
    }

    /// Total ordering used for deterministic output ordering and for
    /// MIN/MAX aggregation. Order: Null < Bool < Int < Str.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_are_reported() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::str("a").value_type(), Some(ValueType::Text));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::Int(42).as_int(), Some(42));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn total_order_groups_by_type_rank() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-3),
                Value::Int(5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn truthiness_only_for_bool_true() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Int(1).is_truthy());
        assert!(!Value::Null.is_truthy());
    }
}
