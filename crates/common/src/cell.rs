//! Packed, dictionary-encoded tuple cells.
//!
//! Every runtime [`Value`] stored in a [`crate::Relation`] is packed into a
//! single tagged `u64` word — a [`Cell`]. The tag lives in the top three
//! bits; the payload in the remaining 61:
//!
//! | tag | payload                                              |
//! |-----|------------------------------------------------------|
//! | 0   | inline `i64` that fits in 61 bits (sign-extended)    |
//! | 1   | string id in the [`ValueDict`] dictionary            |
//! | 2   | boolean (0/1)                                        |
//! | 3   | SQL `NULL` (payload 0)                               |
//! | 4   | id in the [`ValueDict`] big-integer overflow table   |
//! | 5   | *tombstone* (storage-internal row marker)            |
//! | 7   | *unbound* (engine-internal slot-environment marker)  |
//!
//! The encoding is **canonical**: equal values always produce equal cells
//! (inline ints are used whenever the value fits; out-of-range ints are
//! deduplicated through the overflow table; strings are interned), so tuple
//! deduplication, index probes and join keys are plain `u64` comparisons
//! over cache-contiguous memory — no enum discriminants, no `Arc` refcount
//! traffic, no string walks.
//!
//! Cells are only meaningful relative to the [`ValueDict`] that encoded
//! them. A dictionary is shared per [`crate::Database`] (every relation of a
//! database holds the same `Arc<ValueDict>`), which is what makes
//! cross-relation cell comparisons inside one engine run valid. The
//! dictionary is append-only — ids are never invalidated — and internally
//! synchronised, so read-only evaluation threads may decode (and, for
//! arithmetic overflow, encode) concurrently.
//!
//! ```
//! use raqlet_common::cell::ValueDict;
//! use raqlet_common::Value;
//!
//! let dict = ValueDict::new();
//! let a = dict.encode_value(&Value::str("Ada"));
//! let b = dict.encode_value(&Value::str("Ada"));
//! assert_eq!(a, b); // interning is canonical
//! assert_eq!(dict.decode(a), Value::str("Ada"));
//! let n = dict.encode_value(&Value::Int(-7));
//! assert_eq!(dict.decode(n), Value::Int(-7));
//! ```

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{RaqletError, Result};
use crate::hash::FxHashMap;
use crate::value::Value;

/// A packed value: one tagged 64-bit word (see the module docs for the
/// layout).
pub type Cell = u64;

/// Number of payload bits below the tag.
const TAG_SHIFT: u32 = 61;
/// Mask selecting the payload bits.
const PAYLOAD_MASK: u64 = (1u64 << TAG_SHIFT) - 1;

const TAG_INT: u64 = 0;
const TAG_STR: u64 = 1;
const TAG_BOOL: u64 = 2;
const TAG_NULL: u64 = 3;
const TAG_BIGINT: u64 = 4;
const TAG_TOMBSTONE: u64 = 5;
const TAG_UNBOUND: u64 = 7;

/// The cell encoding SQL `NULL`.
pub const NULL_CELL: Cell = TAG_NULL << TAG_SHIFT;

/// Storage-internal marker written into the first word of a removed arena
/// row. Never a valid value encoding.
pub const TOMBSTONE_CELL: Cell = TAG_TOMBSTONE << TAG_SHIFT;

/// Engine-internal marker for an unbound slot in a join environment. Never a
/// valid value encoding and never stored in a relation.
pub const UNBOUND_CELL: Cell = TAG_UNBOUND << TAG_SHIFT;

/// True if an `i64` fits the 61-bit inline encoding.
#[inline]
const fn fits_inline(v: i64) -> bool {
    // Sign-extending the low 61 bits must reproduce the value.
    (v << 3) >> 3 == v
}

/// Encode an inline-range integer (callers check [`fits_inline`]).
#[inline]
const fn inline_int_cell(v: i64) -> Cell {
    (v as u64) & PAYLOAD_MASK
}

/// Encode a boolean.
#[inline]
pub const fn bool_cell(b: bool) -> Cell {
    (TAG_BOOL << TAG_SHIFT) | b as u64
}

/// The tag of a cell (top three bits).
#[inline]
const fn tag(cell: Cell) -> u64 {
    cell >> TAG_SHIFT
}

/// True if the cell is the storage-internal tombstone marker.
#[inline]
pub const fn is_tombstone(cell: Cell) -> bool {
    cell == TOMBSTONE_CELL
}

/// True if the cell is the engine-internal unbound marker.
#[inline]
pub const fn is_unbound(cell: Cell) -> bool {
    cell == UNBOUND_CELL
}

/// True if `cell` is a valid *value* encoding relative to a dictionary with
/// `n_strings` interned strings and `n_bigints` overflow integers: it
/// decodes without panicking and is not a storage- or engine-internal
/// marker. The persistence layer validates every loaded arena cell through
/// this before trusting it.
pub const fn is_valid_value_cell(cell: Cell, n_strings: usize, n_bigints: usize) -> bool {
    let payload = cell & PAYLOAD_MASK;
    match tag(cell) {
        TAG_INT => true,
        TAG_STR => (payload as usize) < n_strings,
        TAG_BOOL => payload <= 1,
        TAG_NULL => payload == 0,
        TAG_BIGINT => (payload as usize) < n_bigints,
        _ => false,
    }
}

/// Decode the integer payload of a cell without touching the dictionary.
/// Returns `None` for non-integers and for overflow-table ints (which need
/// the dictionary — see [`ValueDict::decode_int`]).
#[inline]
pub const fn inline_int(cell: Cell) -> Option<i64> {
    if tag(cell) == TAG_INT {
        Some(((cell << 3) as i64) >> 3)
    } else {
        None
    }
}

/// The append-only value dictionary shared by every relation of a database:
/// interns strings to dense ids and deduplicates the rare `i64` values that
/// do not fit the 61-bit inline encoding ("big ints") into an overflow
/// side-table.
///
/// Internally synchronised (`RwLock`; the hot decode path takes the read
/// side) so scoped evaluation worker threads can share it. Ids are never
/// reused or invalidated, which is what lets prepared executions keep a warm
/// dictionary across runs and lets relation clones stay comparable.
#[derive(Debug, Default)]
pub struct ValueDict {
    inner: RwLock<DictInner>,
}

#[derive(Debug, Default)]
struct DictInner {
    strings: Vec<Arc<str>>,
    string_ids: FxHashMap<Arc<str>, u32>,
    bigints: Vec<i64>,
    bigint_ids: FxHashMap<i64, u32>,
}

impl ValueDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the read side of the dictionary lock, recovering from poison.
    ///
    /// The dictionary deliberately ignores `RwLock` poisoning: it is shared
    /// by every relation of a database, so letting one panicking evaluation
    /// thread poison it would take down every other user of the `Database`.
    /// Recovery is sound because the dictionary is append-only and each
    /// mutation keeps it canonical at every intermediate step: `strings` /
    /// `bigints` are pushed before the id-map insert, and an id only escapes
    /// to a caller after its entry is fully installed. A panic mid-insert can
    /// at worst strand an entry whose id was never returned — unreachable,
    /// never decoded, and re-interned under a fresh id on next sight —
    /// leaving live cells exactly as canonical as before.
    fn read_inner(&self) -> RwLockReadGuard<'_, DictInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Take the write side of the dictionary lock, recovering from poison
    /// (see [`read_inner`](Self::read_inner) for why this is sound).
    fn write_inner(&self) -> RwLockWriteGuard<'_, DictInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// A fresh, empty, shareable dictionary.
    pub fn shared() -> Arc<ValueDict> {
        Arc::new(ValueDict::new())
    }

    /// Encode an integer (inline when it fits, overflow table otherwise).
    #[inline]
    pub fn encode_int(&self, v: i64) -> Cell {
        if fits_inline(v) {
            return inline_int_cell(v);
        }
        self.encode_bigint(v)
    }

    fn encode_bigint(&self, v: i64) -> Cell {
        if let Some(&id) = self.read_inner().bigint_ids.get(&v) {
            return (TAG_BIGINT << TAG_SHIFT) | id as u64;
        }
        let mut inner = self.write_inner();
        let id = match inner.bigint_ids.get(&v) {
            Some(&id) => id,
            None => {
                let id = inner.bigints.len() as u32;
                inner.bigints.push(v);
                inner.bigint_ids.insert(v, id);
                id
            }
        };
        (TAG_BIGINT << TAG_SHIFT) | id as u64
    }

    /// Encode a string, interning it on first sight.
    pub fn encode_str(&self, s: &str) -> Cell {
        if let Some(&id) = self.read_inner().string_ids.get(s) {
            return (TAG_STR << TAG_SHIFT) | id as u64;
        }
        let mut inner = self.write_inner();
        let id = match inner.string_ids.get(s) {
            Some(&id) => id,
            None => {
                let id = inner.strings.len() as u32;
                let arc: Arc<str> = Arc::from(s);
                inner.strings.push(arc.clone());
                inner.string_ids.insert(arc, id);
                id
            }
        };
        (TAG_STR << TAG_SHIFT) | id as u64
    }

    /// Encode an already-reference-counted string without copying it when it
    /// is new to the dictionary.
    pub fn encode_arc_str(&self, s: &Arc<str>) -> Cell {
        if let Some(&id) = self.read_inner().string_ids.get(&**s) {
            return (TAG_STR << TAG_SHIFT) | id as u64;
        }
        let mut inner = self.write_inner();
        let id = match inner.string_ids.get(&**s) {
            Some(&id) => id,
            None => {
                let id = inner.strings.len() as u32;
                inner.strings.push(s.clone());
                inner.string_ids.insert(s.clone(), id);
                id
            }
        };
        (TAG_STR << TAG_SHIFT) | id as u64
    }

    /// Encode any value.
    pub fn encode_value(&self, v: &Value) -> Cell {
        match v {
            Value::Int(i) => self.encode_int(*i),
            Value::Str(s) => self.encode_arc_str(s),
            Value::Bool(b) => bool_cell(*b),
            Value::Null => NULL_CELL,
        }
    }

    /// Encode a value **without growing the dictionary**: returns `None` when
    /// the value is a string or out-of-range integer the dictionary has never
    /// seen — by canonicality, such a value cannot be stored in any relation
    /// sharing this dictionary, so probes and membership tests can report
    /// "absent" without polluting the dictionary.
    pub fn try_encode_value(&self, v: &Value) -> Option<Cell> {
        match v {
            Value::Int(i) => {
                if fits_inline(*i) {
                    Some(inline_int_cell(*i))
                } else {
                    let inner = self.read_inner();
                    inner.bigint_ids.get(i).map(|&id| (TAG_BIGINT << TAG_SHIFT) | id as u64)
                }
            }
            Value::Str(s) => {
                let inner = self.read_inner();
                inner.string_ids.get(&**s).map(|&id| (TAG_STR << TAG_SHIFT) | id as u64)
            }
            Value::Bool(b) => Some(bool_cell(*b)),
            Value::Null => Some(NULL_CELL),
        }
    }

    /// Decode a cell back to a [`Value`]. Panics on the storage-internal
    /// tombstone/unbound markers (they never reach decode in a correct
    /// engine) and on ids from a different dictionary.
    pub fn decode(&self, cell: Cell) -> Value {
        match tag(cell) {
            TAG_INT => Value::Int(((cell << 3) as i64) >> 3),
            TAG_STR => {
                let inner = self.read_inner();
                Value::Str(inner.strings[(cell & PAYLOAD_MASK) as usize].clone())
            }
            TAG_BOOL => Value::Bool(cell & 1 == 1),
            TAG_NULL => Value::Null,
            TAG_BIGINT => {
                let inner = self.read_inner();
                Value::Int(inner.bigints[(cell & PAYLOAD_MASK) as usize])
            }
            t => panic!("cannot decode internal cell tag {t}"),
        }
    }

    /// Decode a cell's integer payload (inline or overflow), or `None` for
    /// non-integers.
    pub fn decode_int(&self, cell: Cell) -> Option<i64> {
        match tag(cell) {
            TAG_INT => Some(((cell << 3) as i64) >> 3),
            TAG_BIGINT => {
                let inner = self.read_inner();
                Some(inner.bigints[(cell & PAYLOAD_MASK) as usize])
            }
            _ => None,
        }
    }

    /// Number of dictionary entries (interned strings plus overflow-table
    /// integers). Stable across executions that introduce no new values —
    /// warm prepared runs pin "zero re-encoding" through this.
    pub fn len(&self) -> usize {
        let inner = self.read_inner();
        inner.strings.len() + inner.bigints.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the dictionary's two id-ordered tables — the interned
    /// strings and the big-integer overflow values — for raw export by the
    /// persistence layer. Entry `i` of each table carries id `i`, so a cell
    /// encoded against this dictionary decodes identically against any
    /// dictionary rebuilt from these tables with
    /// [`ValueDict::from_tables`]. The dictionary is append-only, so the
    /// tables are a consistent prefix even if another thread interns
    /// concurrently.
    pub fn export_tables(&self) -> (Vec<Arc<str>>, Vec<i64>) {
        let inner = self.read_inner();
        (inner.strings.clone(), inner.bigints.clone())
    }

    /// Rebuild a dictionary from id-ordered tables produced by
    /// [`ValueDict::export_tables`] (the persistence load path): entry `i`
    /// is re-interned under id `i`, so cells encoded against the exported
    /// dictionary stay valid verbatim. Fails if either table contains a
    /// duplicate entry or exceeds the 32-bit id space — a rebuilt
    /// dictionary must be exactly as canonical as the one exported, and a
    /// loader surfaces that failure as data corruption.
    pub fn from_tables(strings: Vec<Arc<str>>, bigints: Vec<i64>) -> Result<ValueDict> {
        if strings.len() > u32::MAX as usize || bigints.len() > u32::MAX as usize {
            return Err(RaqletError::internal("dictionary table exceeds the 32-bit id space"));
        }
        let mut inner = DictInner::default();
        inner.string_ids.reserve(strings.len());
        for (id, s) in strings.iter().enumerate() {
            if inner.string_ids.insert(s.clone(), id as u32).is_some() {
                return Err(RaqletError::internal(format!(
                    "duplicate string {s:?} in dictionary table"
                )));
            }
        }
        inner.strings = strings;
        inner.bigint_ids.reserve(bigints.len());
        for (id, &v) in bigints.iter().enumerate() {
            if inner.bigint_ids.insert(v, id as u32).is_some() {
                return Err(RaqletError::internal(format!(
                    "duplicate big integer {v} in dictionary overflow table"
                )));
            }
            if fits_inline(v) {
                return Err(RaqletError::internal(format!(
                    "inline-range integer {v} in dictionary overflow table"
                )));
            }
        }
        inner.bigints = bigints;
        Ok(ValueDict { inner: RwLock::new(inner) })
    }

    /// Approximate heap footprint of the dictionary: interned string bytes,
    /// id tables and overflow table.
    pub fn heap_bytes(&self) -> usize {
        let inner = self.read_inner();
        let string_bytes: usize = inner.strings.iter().map(|s| s.len()).sum();
        let strings = inner.strings.capacity() * size_of::<Arc<str>>();
        let string_ids = inner.string_ids.capacity() * (size_of::<Arc<str>>() + 4 + 8);
        let bigints = inner.bigints.capacity() * 8;
        let bigint_ids = inner.bigint_ids.capacity() * (8 + 4 + 8);
        string_bytes + strings + string_ids + bigints + bigint_ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_ints_round_trip_without_the_dictionary() {
        let dict = ValueDict::new();
        for v in [0i64, 1, -1, 42, -42, (1 << 60) - 1, -(1 << 60)] {
            let cell = dict.encode_int(v);
            assert_eq!(inline_int(cell), Some(v), "{v}");
            assert_eq!(dict.decode(cell), Value::Int(v));
        }
        assert_eq!(dict.len(), 0, "inline ints never touch the dictionary");
    }

    #[test]
    fn extreme_ints_use_the_overflow_table_canonically() {
        let dict = ValueDict::new();
        for v in [i64::MAX, i64::MIN, 1 << 60, -(1 << 60) - 1] {
            let a = dict.encode_int(v);
            let b = dict.encode_int(v);
            assert_eq!(a, b, "{v}: overflow encoding must deduplicate");
            assert_eq!(inline_int(a), None);
            assert_eq!(dict.decode(a), Value::Int(v));
            assert_eq!(dict.decode_int(a), Some(v));
        }
        assert_eq!(dict.len(), 4);
    }

    #[test]
    fn strings_intern_to_stable_ids() {
        let dict = ValueDict::new();
        let a = dict.encode_str("Ada");
        let b = dict.encode_str("Bob");
        assert_ne!(a, b);
        assert_eq!(a, dict.encode_str("Ada"));
        assert_eq!(dict.decode(a), Value::str("Ada"));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn bool_and_null_are_tagged_constants() {
        let dict = ValueDict::new();
        assert_eq!(dict.decode(bool_cell(true)), Value::Bool(true));
        assert_eq!(dict.decode(bool_cell(false)), Value::Bool(false));
        assert_eq!(dict.decode(NULL_CELL), Value::Null);
        assert_ne!(bool_cell(false), NULL_CELL);
        assert_ne!(bool_cell(false), dict.encode_int(0));
    }

    #[test]
    fn try_encode_never_grows_the_dictionary() {
        let dict = ValueDict::new();
        dict.encode_str("known");
        assert_eq!(dict.try_encode_value(&Value::str("unknown")), None);
        assert_eq!(dict.try_encode_value(&Value::Int(i64::MAX)), None);
        assert!(dict.try_encode_value(&Value::str("known")).is_some());
        assert!(dict.try_encode_value(&Value::Int(5)).is_some());
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn dictionary_survives_a_panic_while_the_write_lock_is_held() {
        let dict = ValueDict::new();
        let ada = dict.encode_str("Ada");

        // Poison the lock the only way an RwLock can be poisoned: panic while
        // holding the write guard (readers never poison).
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = dict.inner.write().unwrap();
            panic!("synthetic panic while holding the dict write lock");
        }));
        assert!(poisoned.is_err());
        assert!(dict.inner.read().is_err(), "the std RwLock really is poisoned");

        // Every dictionary operation still works and stays canonical.
        assert_eq!(dict.encode_str("Ada"), ada);
        assert_eq!(dict.decode(ada), Value::str("Ada"));
        let bob = dict.encode_str("Bob");
        assert_eq!(dict.decode(bob), Value::str("Bob"));
        assert_eq!(dict.encode_int(i64::MAX), dict.encode_int(i64::MAX));
        assert_eq!(dict.decode_int(dict.encode_int(i64::MAX)), Some(i64::MAX));
        assert_eq!(dict.len(), 3);
        assert!(dict.heap_bytes() > 0);
        assert!(dict.try_encode_value(&Value::str("Ada")).is_some());
        assert_eq!(dict.try_encode_value(&Value::str("never seen")), None);
    }

    #[test]
    fn cell_validation_tracks_dictionary_bounds_and_rejects_markers() {
        let dict = ValueDict::new();
        let s = dict.encode_str("only");
        let big = dict.encode_int(i64::MAX);
        for cell in [s, big, dict.encode_int(7), bool_cell(true), NULL_CELL] {
            assert!(is_valid_value_cell(cell, 1, 1), "{cell:#x}");
        }
        // Out-of-bounds dictionary ids are invalid.
        assert!(!is_valid_value_cell(s, 0, 1));
        assert!(!is_valid_value_cell(big, 1, 0));
        assert!(!is_valid_value_cell(s + 1, 1, 1), "string id 1 with one string");
        // Internal markers are never valid values.
        assert!(!is_valid_value_cell(TOMBSTONE_CELL, usize::MAX, usize::MAX));
        assert!(!is_valid_value_cell(UNBOUND_CELL, usize::MAX, usize::MAX));
        // Malformed bool/null payloads are invalid.
        assert!(!is_valid_value_cell(bool_cell(true) | 2, 1, 1));
        assert!(!is_valid_value_cell(NULL_CELL | 1, 1, 1));
    }

    #[test]
    fn exported_tables_rebuild_an_id_identical_dictionary() {
        let dict = ValueDict::new();
        let ada = dict.encode_str("Ada");
        let bob = dict.encode_str("Bob");
        let big = dict.encode_int(i64::MAX);
        let neg = dict.encode_int(i64::MIN);

        let (strings, bigints) = dict.export_tables();
        assert_eq!(strings.len(), 2);
        assert_eq!(bigints.len(), 2);
        let rebuilt = ValueDict::from_tables(strings, bigints).unwrap();

        // Ids — and therefore previously encoded cells — survive verbatim.
        assert_eq!(rebuilt.decode(ada), Value::str("Ada"));
        assert_eq!(rebuilt.decode(bob), Value::str("Bob"));
        assert_eq!(rebuilt.decode(big), Value::Int(i64::MAX));
        assert_eq!(rebuilt.decode(neg), Value::Int(i64::MIN));
        assert_eq!(rebuilt.len(), dict.len());
        // And re-encoding produces the same cells, so the rebuilt
        // dictionary is as canonical as the original.
        assert_eq!(rebuilt.encode_str("Ada"), ada);
        assert_eq!(rebuilt.encode_int(i64::MAX), big);
        assert_eq!(rebuilt.len(), dict.len());
    }

    #[test]
    fn from_tables_rejects_non_canonical_tables() {
        let dup_strings = vec![Arc::<str>::from("x"), Arc::<str>::from("x")];
        assert!(ValueDict::from_tables(dup_strings, Vec::new()).is_err());
        assert!(ValueDict::from_tables(Vec::new(), vec![i64::MAX, i64::MAX]).is_err());
        // Inline-range values never reach the overflow table when encoding;
        // a table containing one is corrupt.
        assert!(ValueDict::from_tables(Vec::new(), vec![42]).is_err());
    }

    #[test]
    fn markers_are_distinct_from_every_value_encoding() {
        let dict = ValueDict::new();
        for v in [Value::Int(0), Value::Int(-1), Value::str("x"), Value::Bool(false), Value::Null] {
            let cell = dict.encode_value(&v);
            assert!(!is_tombstone(cell), "{v:?}");
            assert!(!is_unbound(cell), "{v:?}");
        }
    }
}
