//! Schema models.
//!
//! Two schema worlds exist in Raqlet, mirroring Figure 2 of the paper:
//!
//! * [`PgSchema`] — a property-graph schema in the spirit of PG-Schema:
//!   node types and edge types, each carrying typed properties.
//! * [`DlSchema`] — a Datalog schema: a set of extensional relations (EDBs)
//!   with typed, named columns.
//!
//! The PG-Schema → DL-Schema *data model transformation* itself lives in
//! `raqlet-dlir::schema_gen`; this module only defines the two models plus
//! the bookkeeping both sides need (property lookup, column positions, keys).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{RaqletError, Result};
use crate::types::ValueType;

/// A typed property of a node or edge type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// Property name as written in the schema (e.g. `firstName`).
    pub name: String,
    /// Property type.
    pub ty: ValueType,
}

impl Property {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Property { name: name.into(), ty }
    }
}

/// A node type in a property-graph schema, e.g.
/// `(personType: Person { id INT, firstName STRING })`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeType {
    /// The schema-internal type name (`personType`).
    pub type_name: String,
    /// The label used in queries (`Person`).
    pub label: String,
    /// Ordered list of properties. By convention the first property is the
    /// node key (`id`), matching the paper's "node id is at the first
    /// position of the EDB" rule.
    pub properties: Vec<Property>,
}

impl NodeType {
    /// Position of a property within the node's property list.
    pub fn property_index(&self, name: &str) -> Option<usize> {
        self.properties.iter().position(|p| p.name == name)
    }

    /// Name of the key property (the first property), if any.
    pub fn key_property(&self) -> Option<&Property> {
        self.properties.first()
    }
}

/// An edge type in a property-graph schema, e.g.
/// `(:personType)-[locationType: isLocatedIn { id INT }]->(:cityType)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeType {
    /// The schema-internal type name (`locationType`).
    pub type_name: String,
    /// The label used in queries, normalised to the query-facing spelling
    /// (`isLocatedIn` in the schema is matched case-insensitively against
    /// `IS_LOCATED_IN` in Cypher; see [`labels_match`]).
    pub label: String,
    /// Type name of the source node type.
    pub src: String,
    /// Type name of the target node type.
    pub dst: String,
    /// Edge properties (may be empty).
    pub properties: Vec<Property>,
}

impl EdgeType {
    /// Position of a property within the edge's property list.
    pub fn property_index(&self, name: &str) -> Option<usize> {
        self.properties.iter().position(|p| p.name == name)
    }
}

/// Canonical form of a node/edge label: underscores removed, lowercased.
///
/// Cypher queries conventionally write edge labels in `SCREAMING_SNAKE_CASE`
/// (`IS_LOCATED_IN`) while PG-Schema examples use `camelCase`
/// (`isLocatedIn`); both normalize to `islocatedin`, which is the key every
/// label-driven lookup uses. Because normalization is lossy (`HasTag` and
/// `HAS_TAG` collide), loaders must reject *distinct* label spellings that
/// share a normal form at insert time — matching two spellings at lookup
/// time is the feature, silently merging two different labels is not.
pub fn normalize_label(label: &str) -> String {
    label.chars().filter(|c| *c != '_').collect::<String>().to_ascii_lowercase()
}

/// Compare a schema edge/node label with a query label by normal form (see
/// [`normalize_label`]) — exactly the correspondence used in the paper's
/// running example.
pub fn labels_match(schema_label: &str, query_label: &str) -> bool {
    normalize_label(schema_label) == normalize_label(query_label)
}

/// A property-graph schema: the input to Raqlet's data-model transformation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PgSchema {
    /// Node types in declaration order.
    pub nodes: Vec<NodeType>,
    /// Edge types in declaration order.
    pub edges: Vec<EdgeType>,
}

impl PgSchema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node type. Errors if a node type with the same label exists —
    /// including a *differently spelled* label that normalizes to the same
    /// form (label lookups are keyed by normal form, so `HasTag` and
    /// `HAS_TAG` would silently merge; see [`normalize_label`]).
    pub fn add_node(&mut self, node: NodeType) -> Result<()> {
        if let Some(existing) = self.nodes.iter().find(|n| labels_match(&n.label, &node.label)) {
            if existing.label == node.label {
                return Err(RaqletError::schema(format!("duplicate node label `{}`", node.label)));
            }
            return Err(RaqletError::schema(format!(
                "node label `{}` collides with `{}` under label normalization \
                 (underscores and case are ignored); rename one of them",
                node.label, existing.label
            )));
        }
        self.nodes.push(node);
        Ok(())
    }

    /// Add an edge type. Errors if source or target node types are missing,
    /// or if a *differently spelled* edge label normalizes to the same form
    /// as an existing one (an identical spelling between other endpoint
    /// pairs stays legal — several edge types may share one label).
    pub fn add_edge(&mut self, edge: EdgeType) -> Result<()> {
        for endpoint in [&edge.src, &edge.dst] {
            if !self.nodes.iter().any(|n| n.type_name == *endpoint) {
                return Err(RaqletError::schema(format!(
                    "edge `{}` references unknown node type `{}`",
                    edge.label, endpoint
                )));
            }
        }
        if let Some(existing) =
            self.edges.iter().find(|e| e.label != edge.label && labels_match(&e.label, &edge.label))
        {
            return Err(RaqletError::schema(format!(
                "edge label `{}` collides with `{}` under label normalization \
                 (underscores and case are ignored); rename one of them",
                edge.label, existing.label
            )));
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Look up a node type by query label (`Person`).
    pub fn node_by_label(&self, label: &str) -> Option<&NodeType> {
        self.nodes.iter().find(|n| labels_match(&n.label, label))
    }

    /// Look up a node type by its internal type name (`personType`).
    pub fn node_by_type_name(&self, type_name: &str) -> Option<&NodeType> {
        self.nodes.iter().find(|n| n.type_name == type_name)
    }

    /// Look up edge types by query label (`IS_LOCATED_IN`). Several edge
    /// types can share a label between different endpoint pairs.
    pub fn edges_by_label(&self, label: &str) -> Vec<&EdgeType> {
        self.edges.iter().filter(|e| labels_match(&e.label, label)).collect()
    }

    /// Look up the unique edge type with the given label and endpoints.
    pub fn edge_between(&self, label: &str, src_label: &str, dst_label: &str) -> Option<&EdgeType> {
        self.edges.iter().find(|e| {
            labels_match(&e.label, label)
                && self
                    .node_by_type_name(&e.src)
                    .map(|n| labels_match(&n.label, src_label))
                    .unwrap_or(false)
                && self
                    .node_by_type_name(&e.dst)
                    .map(|n| labels_match(&n.label, dst_label))
                    .unwrap_or(false)
        })
    }
}

/// A named, typed column of an EDB/IDB relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (e.g. `id`, `firstName`, `id1`).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// What a relation in the Datalog schema describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationKind {
    /// Extensional relation holding the facts for a node type.
    NodeEdb,
    /// Extensional relation holding the facts for an edge type.
    EdgeEdb,
    /// Intensional relation (derived view / rule head).
    Idb,
    /// A relation loaded directly (not derived from a PG type), e.g. a plain
    /// relational table in a transitive-closure example.
    BaseTable,
}

/// Declaration of one relation in the Datalog schema, corresponding to a
/// `.decl` line in Figure 2b.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name (e.g. `Person`, `Person_IS_LOCATED_IN_City`).
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
    /// Role of the relation.
    pub kind: RelationKind,
    /// Indices of key columns (for node EDBs: `[0]`; for edge EDBs the pair
    /// `[0, 1]`). Used by the semantic join optimizations.
    pub key: Vec<usize>,
    /// For EDBs generated from a PG type: the originating label.
    pub source_label: Option<String>,
}

impl RelationDecl {
    /// Construct a relation declaration with no key information.
    pub fn new(name: impl Into<String>, columns: Vec<Column>, kind: RelationKind) -> Self {
        RelationDecl { name: name.into(), columns, kind, key: Vec::new(), source_label: None }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column types in order.
    pub fn column_types(&self) -> Vec<ValueType> {
        self.columns.iter().map(|c| c.ty).collect()
    }
}

/// A Datalog schema: the output of the data-model transformation and the
/// catalog against which DLIR programs are typed and executed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DlSchema {
    relations: BTreeMap<String, RelationDecl>,
    /// Declaration order, preserved for deterministic unparsing.
    order: Vec<String>,
}

impl DlSchema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation declaration. Errors on duplicate names.
    pub fn add(&mut self, decl: RelationDecl) -> Result<()> {
        if self.relations.contains_key(&decl.name) {
            return Err(RaqletError::schema(format!("duplicate relation `{}`", decl.name)));
        }
        self.order.push(decl.name.clone());
        self.relations.insert(decl.name.clone(), decl);
        Ok(())
    }

    /// Add or replace a relation declaration (used when the compiler refines
    /// inferred IDB types).
    pub fn upsert(&mut self, decl: RelationDecl) {
        if !self.relations.contains_key(&decl.name) {
            self.order.push(decl.name.clone());
        }
        self.relations.insert(decl.name.clone(), decl);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.get(name)
    }

    /// Look up a relation by name, returning an error if missing.
    pub fn require(&self, name: &str) -> Result<&RelationDecl> {
        self.get(name)
            .ok_or_else(|| RaqletError::UnknownName { kind: "relation", name: name.to_string() })
    }

    /// True if the schema declares `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Relations in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &RelationDecl> {
        self.order.iter().filter_map(|n| self.relations.get(n))
    }

    /// Names of all extensional relations (node/edge EDBs and base tables).
    pub fn edb_names(&self) -> Vec<String> {
        self.iter().filter(|r| r.kind != RelationKind::Idb).map(|r| r.name.clone()).collect()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl fmt::Display for DlSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.iter() {
            let cols = rel
                .columns
                .iter()
                .map(|c| format!("{}: {}", c.name, c.ty.souffle_name()))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(f, ".decl {}({})", rel.name, cols)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> NodeType {
        NodeType {
            type_name: "personType".into(),
            label: "Person".into(),
            properties: vec![
                Property::new("id", ValueType::Int),
                Property::new("firstName", ValueType::Text),
                Property::new("locationIP", ValueType::Text),
            ],
        }
    }

    fn city() -> NodeType {
        NodeType {
            type_name: "cityType".into(),
            label: "City".into(),
            properties: vec![
                Property::new("id", ValueType::Int),
                Property::new("name", ValueType::Text),
            ],
        }
    }

    #[test]
    fn node_lookup_by_label_is_case_tolerant() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        assert!(s.node_by_label("Person").is_some());
        assert!(s.node_by_label("person").is_some());
        assert!(s.node_by_label("Persn").is_none());
    }

    #[test]
    fn duplicate_node_labels_are_rejected() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        assert!(s.add_node(person()).is_err());
    }

    #[test]
    fn edges_require_known_endpoints() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        let e = EdgeType {
            type_name: "locationType".into(),
            label: "isLocatedIn".into(),
            src: "personType".into(),
            dst: "cityType".into(),
            properties: vec![Property::new("id", ValueType::Int)],
        };
        // cityType missing -> error
        assert!(s.add_edge(e.clone()).is_err());
        s.add_node(city()).unwrap();
        assert!(s.add_edge(e).is_ok());
    }

    #[test]
    fn colliding_node_label_spellings_are_rejected() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        // `PER_SON` is a distinct spelling but normalizes to `person`:
        // lookups could not tell the two apart, so loading must fail loudly.
        let mut clash = person();
        clash.type_name = "perSonType".into();
        clash.label = "PER_SON".into();
        let err = s.add_node(clash).unwrap_err();
        assert!(err.to_string().contains("collides"), "{err}");
        assert!(err.to_string().contains("Person"), "{err}");
    }

    #[test]
    fn colliding_edge_label_spellings_are_rejected() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        s.add_node(city()).unwrap();
        let edge = |label: &str| EdgeType {
            type_name: format!("{label}Type"),
            label: label.into(),
            src: "personType".into(),
            dst: "cityType".into(),
            properties: vec![],
        };
        s.add_edge(edge("HasTag")).unwrap();
        let err = s.add_edge(edge("HAS_TAG")).unwrap_err();
        assert!(err.to_string().contains("collides"), "{err}");
        // The *same* spelling between (possibly different) endpoints stays
        // legal: several edge types may share one label.
        assert!(s.add_edge(edge("HasTag")).is_ok());
    }

    #[test]
    fn schema_label_matches_cypher_spelling() {
        // isLocatedIn (schema) vs IS_LOCATED_IN (query) — paper's running example.
        assert!(labels_match("isLocatedIn", "IS_LOCATED_IN"));
        assert!(labels_match("KNOWS", "knows"));
        assert!(!labels_match("isLocatedIn", "HAS_CREATOR"));
    }

    #[test]
    fn edge_between_resolves_by_endpoints() {
        let mut s = PgSchema::new();
        s.add_node(person()).unwrap();
        s.add_node(city()).unwrap();
        s.add_edge(EdgeType {
            type_name: "locationType".into(),
            label: "isLocatedIn".into(),
            src: "personType".into(),
            dst: "cityType".into(),
            properties: vec![],
        })
        .unwrap();
        assert!(s.edge_between("IS_LOCATED_IN", "Person", "City").is_some());
        assert!(s.edge_between("IS_LOCATED_IN", "City", "Person").is_none());
    }

    #[test]
    fn node_key_is_first_property() {
        let p = person();
        assert_eq!(p.key_property().unwrap().name, "id");
        assert_eq!(p.property_index("firstName"), Some(1));
        assert_eq!(p.property_index("missing"), None);
    }

    #[test]
    fn dl_schema_preserves_declaration_order() {
        let mut s = DlSchema::new();
        s.add(RelationDecl::new(
            "Person",
            vec![Column::new("id", ValueType::Int)],
            RelationKind::NodeEdb,
        ))
        .unwrap();
        s.add(RelationDecl::new(
            "City",
            vec![Column::new("id", ValueType::Int)],
            RelationKind::NodeEdb,
        ))
        .unwrap();
        let names: Vec<_> = s.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["Person", "City"]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn dl_schema_rejects_duplicates_but_upsert_replaces() {
        let mut s = DlSchema::new();
        let d = RelationDecl::new("R", vec![Column::new("x", ValueType::Int)], RelationKind::Idb);
        s.add(d.clone()).unwrap();
        assert!(s.add(d.clone()).is_err());
        let mut d2 = d.clone();
        d2.columns.push(Column::new("y", ValueType::Text));
        s.upsert(d2);
        assert_eq!(s.get("R").unwrap().arity(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn dl_schema_display_matches_souffle_decl_syntax() {
        let mut s = DlSchema::new();
        s.add(RelationDecl::new(
            "City",
            vec![Column::new("id", ValueType::Int), Column::new("name", ValueType::Text)],
            RelationKind::NodeEdb,
        ))
        .unwrap();
        assert_eq!(s.to_string(), ".decl City(id: number, name: symbol)\n");
    }

    #[test]
    fn require_reports_unknown_relations() {
        let s = DlSchema::new();
        let err = s.require("Nope").unwrap_err();
        assert!(matches!(err, RaqletError::UnknownName { .. }));
    }

    #[test]
    fn edb_names_exclude_idbs() {
        let mut s = DlSchema::new();
        s.add(RelationDecl::new("E", vec![], RelationKind::BaseTable)).unwrap();
        s.add(RelationDecl::new("TC", vec![], RelationKind::Idb)).unwrap();
        assert_eq!(s.edb_names(), vec!["E".to_string()]);
    }
}
