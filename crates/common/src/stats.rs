//! Evaluation counters shared by the engines and the error type.
//!
//! `EvalStats` lives in `raqlet_common` (rather than the engine crate that
//! fills it in) so that guard-trip errors — [`crate::error::RaqletError::Timeout`],
//! [`crate::error::RaqletError::BudgetExceeded`], [`crate::error::RaqletError::Cancelled`]
//! — can carry the partial counters accumulated up to the trip point without
//! a dependency cycle. The engine crate re-exports it, so downstream code can
//! keep using `raqlet_engine::EvalStats`.

/// Counters describing an evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of strata evaluated.
    pub strata: usize,
    /// Strongly connected components scheduled across all strata (only
    /// components owning at least one fixpoint rule are counted).
    pub sccs: usize,
    /// Components that required fixpoint iteration (self- or mutual
    /// recursion). `sccs - looping_sccs` components were fully evaluated in
    /// a single round with no delta bookkeeping.
    pub looping_sccs: usize,
    /// Total evaluation rounds across all components (one per non-looping
    /// component; round zero plus every delta round for looping ones).
    pub iterations: usize,
    /// Total number of rule applications (rule × iteration).
    pub rule_applications: usize,
    /// Total tuples derived (including duplicates discarded by set
    /// semantics).
    pub tuples_derived: usize,
    /// Worker tasks spawned for partitioned rule applications (0 when every
    /// rule ran on the calling thread). Both delta-driven and round-zero
    /// applications count.
    pub parallel_tasks: usize,
}
