//! String interning.
//!
//! Relation names, variable names, labels and string constants are interned
//! into [`Symbol`]s so that equality checks and hashing in the hot evaluation
//! loops are integer comparisons instead of string comparisons.
//!
//! The interner is deliberately simple (a `Vec<String>` plus a `HashMap`);
//! Raqlet programs have at most a few thousand distinct names.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, hash and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Resolve this symbol back to its string using the global interner.
    pub fn as_str(&self) -> String {
        global().resolve(*self)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({}: {:?})", self.0, self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A string interner mapping strings to dense [`Symbol`] ids.
#[derive(Default, Debug)]
pub struct Interner {
    names: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.lookup.get(name) {
            return Symbol(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), id);
        Symbol(id)
    }

    /// Resolve a symbol to its string. Panics if the symbol was produced by a
    /// different interner.
    pub fn resolve(&self, sym: Symbol) -> String {
        self.names
            .get(sym.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("<unknown symbol {}>", sym.0))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

fn global() -> &'static GlobalInterner {
    static GLOBAL: OnceLock<GlobalInterner> = OnceLock::new();
    GLOBAL.get_or_init(GlobalInterner::default)
}

/// Process-wide interner behind a mutex. Symbols used in IR structures are
/// interned here so they can be resolved from `Display` impls without
/// threading an interner through every call.
#[derive(Default)]
struct GlobalInterner {
    inner: Mutex<Interner>,
}

impl GlobalInterner {
    // Invariant (both methods): the interner's two operations never panic
    // while holding the lock (pure map/vec pushes), so the mutex cannot be
    // poisoned; if it somehow is, no recovery is possible anyway.
    #[allow(clippy::expect_used)]
    fn intern(&self, name: &str) -> Symbol {
        self.inner.lock().expect("interner poisoned").intern(name)
    }

    #[allow(clippy::expect_used)]
    fn resolve(&self, sym: Symbol) -> String {
        self.inner.lock().expect("interner poisoned").resolve(sym)
    }
}

/// Intern `name` in the global interner.
pub fn intern(name: &str) -> Symbol {
    global().intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("Person");
        let b = intern("Person");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("Person");
        let b = intern("City");
        assert_ne!(a, b);
    }

    #[test]
    fn symbols_resolve_back_to_their_string() {
        let a = intern("KNOWS");
        assert_eq!(a.as_str(), "KNOWS");
        assert_eq!(a.to_string(), "KNOWS");
    }

    #[test]
    fn local_interner_is_independent() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("x");
        let b = i.intern("y");
        let a2 = i.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "x");
        assert_eq!(i.resolve(b), "y");
    }

    #[test]
    fn resolving_unknown_symbol_does_not_panic() {
        let i = Interner::new();
        let s = i.resolve(Symbol(999));
        assert!(s.contains("unknown"));
    }

    #[test]
    fn symbols_are_ordered_by_interning_order_in_local_interner() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert!(a < b);
    }
}
