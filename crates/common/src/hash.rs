//! Fast, non-cryptographic hashing for the storage hot paths.
//!
//! The standard library's default hasher (SipHash 1-3) is DoS-resistant but
//! costs ~1 ns per byte — measurable when every dedup check, index probe and
//! join key in a fixpoint loop hashes a handful of `u64` words. [`FxHasher`]
//! implements the multiply-xor scheme used by the Rust compiler itself
//! (`rustc-hash`): one rotate, one xor and one multiply per word. Raqlet only
//! hashes trusted, in-process data (packed tuple cells, dictionary ids), so
//! hash-flooding resistance buys nothing here.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the `rustc-hash` / FxHash scheme (derived from the
/// golden ratio, chosen to spread entropy across the high bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor hasher for trusted in-process keys.
///
/// ```
/// use std::hash::{Hash, Hasher};
/// let mut a = raqlet_common::hash::FxHasher::default();
/// let mut b = raqlet_common::hash::FxHasher::default();
/// 42u64.hash(&mut a);
/// 42u64.hash(&mut b);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Invariant: `chunks_exact(8)` only yields 8-byte slices.
            #[allow(clippy::expect_used)]
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable as the `S` parameter of the
/// standard collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a packed row (a slice of cell words) in one pass. Equivalent to
/// feeding each word to an [`FxHasher`], with the length mixed in so rows of
/// different widths cannot alias.
#[inline]
pub fn hash_cells(cells: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    h.add_to_hash(cells.len() as u64);
    for &c in cells {
        h.add_to_hash(c);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_cells(&[1, 2, 3]), hash_cells(&[1, 2, 3]));
        assert_ne!(hash_cells(&[1, 2, 3]), hash_cells(&[3, 2, 1]));
    }

    #[test]
    fn length_is_mixed_in() {
        assert_ne!(hash_cells(&[0]), hash_cells(&[0, 0]));
        assert_ne!(hash_cells(&[]), hash_cells(&[0]));
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut a = FxHasher::default();
        "hello world, this is more than eight bytes".hash(&mut a);
        let mut b = FxHasher::default();
        "hello world, this is more than eight bytez".hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_maps_behave_like_maps() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        let mut s: FxHashSet<Vec<u64>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2]));
        assert!(!s.insert(vec![1, 2]));
    }
}
