//! Cooperative execution governance: deadlines, budgets, and cancellation.
//!
//! A [`QueryGuard`] travels by reference through every evaluation path (the
//! Datalog, SQL, and graph engines plus incremental view maintenance) and is
//! consulted at well-defined checkpoints: the top of each fixpoint round,
//! before each strongly connected component, at the start of every parallel
//! rule-application chunk, and periodically inside join/scan inner loops so a
//! single dense round cannot overshoot a deadline by more than a bounded
//! amount of work. A tripped guard surfaces as one of the structured error
//! variants [`RaqletError::Timeout`], [`RaqletError::BudgetExceeded`], or
//! [`RaqletError::Cancelled`], each carrying the partial
//! [`EvalStats`](crate::stats::EvalStats)
//! accumulated up to the trip.
//!
//! The guard is deliberately cheap when idle: a default (unlimited) guard is
//! a single branch per checkpoint, so the ungoverned public APIs can share
//! the governed code paths without measurable overhead.
//!
//! Fault injection for tests rides the same mechanism: a [`FaultHook`]
//! installed on the guard sees every checkpoint (site + global hit count) and
//! may force a cancellation, a budget trip, or a synthetic panic at a
//! schedule chosen by the harness (`raqlet_engine::fault`).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::RaqletError;

/// A shareable cooperative cancellation flag.
///
/// Clones share the same underlying flag: cancel from any thread, observe
/// from any thread. Engines poll it at guard checkpoints; there is no
/// preemption, so cancellation latency is bounded by the checkpoint spacing
/// (at most one join-scan period, see [`QueryGuard::checkpoint`]).
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Where in the engines a guard checkpoint fires.
///
/// Fault-injection hooks receive the site so schedules can target (or avoid)
/// specific classes of checkpoint; production checks treat all sites alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckPoint {
    /// Top of a semi-naive fixpoint round (Datalog SCC delta rounds, SQL
    /// recursive-CTE iterations).
    FixpointRound,
    /// Before evaluating one strongly connected component (or one aggregate
    /// rule batch) of a stratum.
    Scc,
    /// Start of a parallel rule-application chunk, on the worker thread.
    ParallelChunk,
    /// Periodic check inside a join/scan inner loop (every
    /// [`JOIN_SCAN_PERIOD`] candidate rows).
    JoinScan,
    /// Per-clause and per-frontier-step checks in the graph engine.
    GraphStep,
    /// Per-relation / per-cascade-round steps during incremental view
    /// maintenance.
    IvmStep,
}

/// How many inner-loop iterations a join/scan may run between guard checks.
///
/// Chosen so the periodic check costs well under 0.1% of join time while
/// bounding deadline overshoot: 64Ki candidate rows is microseconds of work,
/// far inside the 2x-deadline envelope the governance layer promises.
pub const JOIN_SCAN_PERIOD: u64 = 1 << 16;

/// A fault a test harness may inject at a checkpoint via [`FaultHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Behave as if the cancellation token had been tripped.
    Cancel,
    /// Behave as if the wall-clock deadline had expired.
    Timeout,
    /// Behave as if the derived-tuple budget had been exhausted.
    Budget,
    /// Panic on the checkpointing thread (exercises containment paths).
    Panic,
}

/// A fault-injection hook: sees every checkpoint's site and the 1-based
/// global hit count, returns a fault to inject or `None` to let execution
/// proceed. Must be deterministic for reproducible schedules.
pub type FaultHook = dyn Fn(CheckPoint, u64) -> Option<InjectedFault> + Send + Sync;

/// Execution limits and cancellation for one evaluation call.
///
/// Construct with [`QueryGuard::new`] (unlimited) and arm selectively:
///
/// ```
/// use raqlet_common::guard::{CancellationToken, QueryGuard};
/// use std::time::Duration;
///
/// let token = CancellationToken::new();
/// let guard = QueryGuard::new()
///     .with_deadline(Duration::from_millis(250))
///     .with_tuple_budget(1_000_000)
///     .with_cancellation(token.clone());
/// // ... pass &guard to an engine's *_guarded entry point; call
/// // token.cancel() from another thread to stop it cooperatively.
/// # let _ = guard;
/// ```
///
/// The guard is `Sync`: parallel rule-application workers check the same
/// guard concurrently. All counters are relaxed atomics — checkpoints need
/// no ordering guarantees beyond eventual visibility.
pub struct QueryGuard {
    /// False for a fully unlimited guard: checkpoints return immediately.
    armed: bool,
    /// When the guarded call started (set at construction).
    start: Instant,
    /// Absolute deadline, if a wall-clock limit was requested.
    deadline: Option<Instant>,
    /// The requested relative limit (for error reporting).
    deadline_limit: Option<Duration>,
    /// Maximum derived tuples (as reported via [`add_tuples`](Self::add_tuples)).
    tuple_budget: Option<u64>,
    /// Maximum `Database::heap_bytes` (checked where the engine can see the
    /// database, via [`check_memory`](Self::check_memory)).
    memory_budget: Option<usize>,
    token: CancellationToken,
    fault: Option<Arc<FaultHook>>,
    /// Checkpoints hit so far (1-based counter feeding fault schedules).
    hits: AtomicU64,
    /// Derived tuples reported so far.
    tuples: AtomicU64,
}

impl fmt::Debug for QueryGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryGuard")
            .field("deadline", &self.deadline_limit)
            .field("tuple_budget", &self.tuple_budget)
            .field("memory_budget", &self.memory_budget)
            .field("cancelled", &self.token.is_cancelled())
            .field("fault_hook", &self.fault.is_some())
            .field("checkpoints_hit", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for QueryGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGuard {
    /// An unlimited guard: no deadline, no budgets, a private (never
    /// cancelled) token, no fault hook. Checkpoints cost one branch.
    pub fn new() -> Self {
        QueryGuard {
            armed: false,
            start: Instant::now(),
            deadline: None,
            deadline_limit: None,
            tuple_budget: None,
            memory_budget: None,
            token: CancellationToken::new(),
            fault: None,
            hits: AtomicU64::new(0),
            tuples: AtomicU64::new(0),
        }
    }

    /// Arm a wall-clock deadline, measured from guard construction.
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(self.start + limit);
        self.deadline_limit = Some(limit);
        self.armed = true;
        self
    }

    /// Arm a derived-tuple budget. Tuples are counted as engines report them
    /// (every derived tuple before set-semantics deduplication), so the
    /// budget bounds work performed, not result size.
    pub fn with_tuple_budget(mut self, max_tuples: u64) -> Self {
        self.tuple_budget = Some(max_tuples);
        self.armed = true;
        self
    }

    /// Arm a heap budget in bytes, compared against `Database::heap_bytes()`
    /// at round/SCC boundaries. The measurement is the engine's own packed
    /// arena + dictionary accounting, not allocator-level RSS.
    pub fn with_memory_budget(mut self, max_heap_bytes: usize) -> Self {
        self.memory_budget = Some(max_heap_bytes);
        self.armed = true;
        self
    }

    /// Attach a shared cancellation token (replacing the private one).
    pub fn with_cancellation(mut self, token: CancellationToken) -> Self {
        self.token = token;
        self.armed = true;
        self
    }

    /// Install a fault-injection hook (test harnesses only; see
    /// `raqlet_engine::fault`). The hook is consulted at every checkpoint.
    pub fn with_fault_hook(mut self, hook: Arc<FaultHook>) -> Self {
        self.fault = Some(hook);
        self.armed = true;
        self
    }

    /// True if any limit, shared token, or fault hook is armed. Engines use
    /// this to decide whether error-path rollback snapshots are needed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// A clone of the guard's cancellation token.
    pub fn cancellation_token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Wall-clock time since the guard was constructed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The heap budget, if armed. Engines skip computing `heap_bytes()`
    /// (which walks the dictionary) when this is `None`.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// Checkpoints hit so far (0 for unarmed guards, which do not count).
    pub fn checkpoints_hit(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Report `n` freshly derived tuples against the tuple budget.
    ///
    /// Engines call this where they bump `EvalStats::tuples_derived`; the
    /// budget itself is enforced at the next [`checkpoint`](Self::checkpoint).
    #[inline]
    pub fn add_tuples(&self, n: usize) {
        if self.tuple_budget.is_some() {
            self.tuples.fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Consult the guard at a checkpoint.
    ///
    /// Returns `Err` with a [`RaqletError::Timeout`], `BudgetExceeded`, or
    /// `Cancelled` (with empty stats — the engine's top-level entry point
    /// attaches the partial counters via
    /// [`RaqletError::with_partial_stats`]) when a limit has been exceeded.
    /// Unarmed guards return `Ok(())` after a single branch.
    ///
    /// # Panics
    ///
    /// Panics only when an installed fault hook injects
    /// [`InjectedFault::Panic`] (test harnesses exercising containment).
    #[inline]
    pub fn checkpoint(&self, site: CheckPoint) -> Result<(), RaqletError> {
        if !self.armed {
            return Ok(());
        }
        self.checkpoint_armed(site)
    }

    /// The slow path of [`checkpoint`](Self::checkpoint); kept out of line so
    /// the unarmed fast path stays a branch + tail call.
    #[cold]
    fn checkpoint_armed(&self, site: CheckPoint) -> Result<(), RaqletError> {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(hook) = &self.fault {
            match hook(site, hit) {
                None => {}
                Some(InjectedFault::Cancel) => {
                    // Trip the real token so sibling workers stop too and the
                    // injected fault is indistinguishable from a user cancel.
                    self.token.cancel();
                }
                Some(InjectedFault::Timeout) => {
                    return Err(self.timeout_error());
                }
                Some(InjectedFault::Budget) => {
                    return Err(RaqletError::budget_exceeded(
                        "tuples",
                        self.tuples.load(Ordering::Relaxed),
                        self.tuple_budget.unwrap_or(0),
                    ));
                }
                Some(InjectedFault::Panic) => {
                    panic!("injected fault: synthetic panic at {site:?} (checkpoint {hit})");
                }
            }
        }
        if self.token.is_cancelled() {
            return Err(RaqletError::cancelled());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.timeout_error());
            }
        }
        if let Some(budget) = self.tuple_budget {
            let used = self.tuples.load(Ordering::Relaxed);
            if used > budget {
                return Err(RaqletError::budget_exceeded("tuples", used, budget));
            }
        }
        Ok(())
    }

    /// Check the heap budget against a measured `heap_bytes` value. Called
    /// by engines at round boundaries, only when
    /// [`memory_budget`](Self::memory_budget) is armed.
    pub fn check_memory(&self, heap_bytes: usize) -> Result<(), RaqletError> {
        match self.memory_budget {
            Some(budget) if heap_bytes > budget => {
                Err(RaqletError::budget_exceeded("heap_bytes", heap_bytes as u64, budget as u64))
            }
            _ => Ok(()),
        }
    }

    fn timeout_error(&self) -> RaqletError {
        RaqletError::timeout(self.elapsed(), self.deadline_limit.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RaqletError;

    #[test]
    fn unarmed_guard_never_trips() {
        let guard = QueryGuard::new();
        assert!(!guard.is_armed());
        for _ in 0..1000 {
            guard.checkpoint(CheckPoint::FixpointRound).unwrap();
        }
        assert_eq!(guard.checkpoints_hit(), 0, "unarmed guards do not count");
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let token = CancellationToken::new();
        let guard = QueryGuard::new().with_cancellation(token.clone());
        guard.checkpoint(CheckPoint::Scc).unwrap();
        token.cancel();
        let err = guard.checkpoint(CheckPoint::Scc).unwrap_err();
        assert!(matches!(err, RaqletError::Cancelled { .. }), "{err:?}");
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let guard = QueryGuard::new().with_deadline(Duration::ZERO);
        let err = guard.checkpoint(CheckPoint::FixpointRound).unwrap_err();
        assert!(matches!(err, RaqletError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn tuple_budget_trips_once_exceeded() {
        let guard = QueryGuard::new().with_tuple_budget(10);
        guard.add_tuples(10);
        guard.checkpoint(CheckPoint::FixpointRound).unwrap();
        guard.add_tuples(1);
        let err = guard.checkpoint(CheckPoint::FixpointRound).unwrap_err();
        match err {
            RaqletError::BudgetExceeded { resource, used, limit, .. } => {
                assert_eq!(resource, "tuples");
                assert_eq!((used, limit), (11, 10));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_checks_supplied_measurement() {
        let guard = QueryGuard::new().with_memory_budget(4096);
        assert_eq!(guard.memory_budget(), Some(4096));
        guard.check_memory(4096).unwrap();
        let err = guard.check_memory(4097).unwrap_err();
        assert!(
            matches!(err, RaqletError::BudgetExceeded { resource: "heap_bytes", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn fault_hook_sees_sites_and_hit_counts() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(CheckPoint, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        let guard = QueryGuard::new().with_fault_hook(Arc::new(move |site, hit| {
            log.lock().unwrap().push((site, hit));
            None
        }));
        guard.checkpoint(CheckPoint::Scc).unwrap();
        guard.checkpoint(CheckPoint::JoinScan).unwrap();
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, vec![(CheckPoint::Scc, 1), (CheckPoint::JoinScan, 2)]);
    }

    #[test]
    fn injected_cancel_trips_the_real_token() {
        let guard = QueryGuard::new()
            .with_fault_hook(Arc::new(|_, hit| (hit == 2).then_some(InjectedFault::Cancel)));
        let token = guard.cancellation_token();
        guard.checkpoint(CheckPoint::FixpointRound).unwrap();
        let err = guard.checkpoint(CheckPoint::FixpointRound).unwrap_err();
        assert!(matches!(err, RaqletError::Cancelled { .. }), "{err:?}");
        assert!(token.is_cancelled(), "sibling workers observe the injected cancel");
    }

    #[test]
    fn injected_panic_panics_at_the_checkpoint() {
        let guard = QueryGuard::new().with_fault_hook(Arc::new(|_, _| Some(InjectedFault::Panic)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = guard.checkpoint(CheckPoint::ParallelChunk);
        }));
        assert!(result.is_err());
    }
}
