//! Static types used by schemas and IR type inference.

use std::fmt;

/// The static type of a column, property or IR expression.
///
/// The lattice is deliberately small: it mirrors the Soufflé `number` /
/// `symbol` split from the paper's DL-Schema (Figure 2b), extended with
/// booleans (for predicate results) and an `Unknown` bottom element used
/// during type inference before a type has been established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit integer — unparsed as Soufflé `number`, SQL `BIGINT`.
    Int,
    /// String — unparsed as Soufflé `symbol`, SQL `VARCHAR`.
    Text,
    /// Boolean — SQL `BOOLEAN`; Soufflé encodes it as `number`.
    Bool,
    /// Not yet inferred. Joins with every other type.
    Unknown,
}

impl ValueType {
    /// Least upper bound of two types during inference. `Unknown` is the
    /// identity; incompatible concrete types return `None`.
    pub fn unify(self, other: ValueType) -> Option<ValueType> {
        use ValueType::*;
        match (self, other) {
            (Unknown, t) | (t, Unknown) => Some(t),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// The Soufflé type name used by the Datalog unparser.
    pub fn souffle_name(&self) -> &'static str {
        match self {
            ValueType::Int => "number",
            ValueType::Text => "symbol",
            ValueType::Bool => "number",
            ValueType::Unknown => "number",
        }
    }

    /// The SQL type name used by the SQL unparser.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ValueType::Int => "BIGINT",
            ValueType::Text => "VARCHAR",
            ValueType::Bool => "BOOLEAN",
            ValueType::Unknown => "BIGINT",
        }
    }

    /// The PG-Schema property type name used by the schema unparser.
    pub fn pg_name(&self) -> &'static str {
        match self {
            ValueType::Int => "INT",
            ValueType::Text => "STRING",
            ValueType::Bool => "BOOL",
            ValueType::Unknown => "INT",
        }
    }

    /// Parse a PG-Schema property type name (`INT`, `STRING`, ...).
    pub fn from_pg_name(name: &str) -> Option<ValueType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "LONG" | "BIGINT" | "INT32" | "INT64" | "DATE" | "DATETIME" => {
                Some(ValueType::Int)
            }
            "STRING" | "TEXT" | "VARCHAR" | "SYMBOL" => Some(ValueType::Text),
            "BOOL" | "BOOLEAN" => Some(ValueType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "Int",
            ValueType::Text => "Text",
            ValueType::Bool => "Bool",
            ValueType::Unknown => "Unknown",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_with_unknown_is_identity() {
        assert_eq!(ValueType::Unknown.unify(ValueType::Int), Some(ValueType::Int));
        assert_eq!(ValueType::Text.unify(ValueType::Unknown), Some(ValueType::Text));
        assert_eq!(ValueType::Unknown.unify(ValueType::Unknown), Some(ValueType::Unknown));
    }

    #[test]
    fn unify_equal_types_succeeds() {
        assert_eq!(ValueType::Int.unify(ValueType::Int), Some(ValueType::Int));
    }

    #[test]
    fn unify_conflicting_types_fails() {
        assert_eq!(ValueType::Int.unify(ValueType::Text), None);
        assert_eq!(ValueType::Bool.unify(ValueType::Int), None);
    }

    #[test]
    fn backend_type_names_match_paper_figures() {
        // Figure 2b uses `number` and `symbol`.
        assert_eq!(ValueType::Int.souffle_name(), "number");
        assert_eq!(ValueType::Text.souffle_name(), "symbol");
        // Figure 2a uses INT and STRING.
        assert_eq!(ValueType::Int.pg_name(), "INT");
        assert_eq!(ValueType::Text.pg_name(), "STRING");
        // SQL backend.
        assert_eq!(ValueType::Int.sql_name(), "BIGINT");
        assert_eq!(ValueType::Text.sql_name(), "VARCHAR");
    }

    #[test]
    fn pg_names_parse_case_insensitively_and_cover_aliases() {
        assert_eq!(ValueType::from_pg_name("int"), Some(ValueType::Int));
        assert_eq!(ValueType::from_pg_name("STRING"), Some(ValueType::Text));
        assert_eq!(ValueType::from_pg_name("DateTime"), Some(ValueType::Int));
        assert_eq!(ValueType::from_pg_name("boolean"), Some(ValueType::Bool));
        assert_eq!(ValueType::from_pg_name("blob"), None);
    }
}
