//! Coded diagnostics: the output format of `raqcheck`, Raqlet's static
//! analyzer and lint layer.
//!
//! Every finding the compiler's semantic checks or the DLIR lint suite can
//! produce is a [`Diagnostic`] carrying a stable [`DiagCode`] (`RAQ0xx` for
//! lints, `RAQ1xx` for semantic errors), a [`Severity`], a human-readable
//! message, optional rule provenance (which rule, and which surface construct
//! it was lowered from) and an optional suggestion. Severities are
//! configurable per code through a [`SeverityConfig`], mirroring the
//! allow/warn/deny model of `rustc` lints:
//!
//! * [`Severity::Deny`] findings abort compilation (the classic semantic
//!   errors from DLIR validation keep this default);
//! * [`Severity::Warn`] findings are surfaced but do not block;
//! * [`Severity::Allow`] findings are suppressed entirely.
//!
//! The types live in `raqlet_common` so that both the DLIR validator (which
//! cannot depend on the analysis crate) and the `raqcheck` analyzer in
//! `raqlet_analysis` share one diagnostic currency; the analyzer re-exports
//! everything here. See `docs/diagnostics.md` for the full code table.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::RaqletError;

/// How a diagnostic is acted upon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suppressed: the finding is dropped before it reaches the caller.
    Allow,
    /// Reported but non-blocking.
    Warn,
    /// Blocking: `validate` (and any caller honouring deny semantics) turns
    /// the diagnostic into a [`RaqletError::Semantic`].
    Deny,
}

impl Severity {
    /// Lower-case name used by renderings and the severity configuration.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of one diagnostic class.
///
/// `RAQ0xx` codes are lints produced by the `raqcheck` analyzer in
/// `raqlet_analysis`; `RAQ1xx` codes are the semantic checks DLIR validation
/// and stratification have always enforced, now carrying codes instead of
/// bare strings. Adding a code here requires documenting it in
/// `docs/diagnostics.md` — CI greps the table against [`DiagCode::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// RAQ001: a derived relation is unreachable from every output.
    UnusedRelation,
    /// RAQ002: a rule's constraints are contradictory; it can never fire.
    NeverFiringRule,
    /// RAQ003: a rule body joins atom groups sharing no variables
    /// (cartesian product).
    CartesianProduct,
    /// RAQ004: a variable inside a negated atom is not bound by any positive
    /// atom (unsafe negation).
    UnboundUnderNegation,
    /// RAQ005: the rules of one IDB derive incompatible types for a column.
    ColumnTypeMismatch,
    /// RAQ006: a rule duplicates (up to variable renaming) an earlier rule of
    /// the same relation.
    DuplicateRule,
    /// RAQ007: an output's entire derivation carries no constant — magic
    /// sets cannot specialize it and the full closure is materialized.
    UnboundOutputHead,
    /// RAQ008: EDB statistics place a large unfiltered relation first in a
    /// rule body (advisory plan lint).
    PlanUnfilteredFirst,
    /// RAQ101: an atom's arity differs from its schema declaration.
    ArityMismatch,
    /// RAQ102: a head variable is not bound by the rule body.
    UnboundHeadVariable,
    /// RAQ103: a variable in a comparison constraint is unbound.
    UnboundConstraintVariable,
    /// RAQ104: an aggregate's input variable is unbound.
    UnboundAggregateInput,
    /// RAQ105: an `.output` relation is never defined.
    UndefinedOutput,
    /// RAQ106: negation occurs inside a recursive cycle (not stratifiable).
    NegationCycle,
    /// RAQ107: aggregation occurs inside a recursive cycle (not
    /// stratifiable).
    AggregationCycle,
}

impl DiagCode {
    /// Every code the toolchain can emit, in code order. CI uses this (via
    /// the `raqcheck` example's `--list-codes` flag) to assert the
    /// diagnostics documentation covers the full set.
    pub const ALL: &'static [DiagCode] = &[
        DiagCode::UnusedRelation,
        DiagCode::NeverFiringRule,
        DiagCode::CartesianProduct,
        DiagCode::UnboundUnderNegation,
        DiagCode::ColumnTypeMismatch,
        DiagCode::DuplicateRule,
        DiagCode::UnboundOutputHead,
        DiagCode::PlanUnfilteredFirst,
        DiagCode::ArityMismatch,
        DiagCode::UnboundHeadVariable,
        DiagCode::UnboundConstraintVariable,
        DiagCode::UnboundAggregateInput,
        DiagCode::UndefinedOutput,
        DiagCode::NegationCycle,
        DiagCode::AggregationCycle,
    ];

    /// The stable `RAQxxx` code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::UnusedRelation => "RAQ001",
            DiagCode::NeverFiringRule => "RAQ002",
            DiagCode::CartesianProduct => "RAQ003",
            DiagCode::UnboundUnderNegation => "RAQ004",
            DiagCode::ColumnTypeMismatch => "RAQ005",
            DiagCode::DuplicateRule => "RAQ006",
            DiagCode::UnboundOutputHead => "RAQ007",
            DiagCode::PlanUnfilteredFirst => "RAQ008",
            DiagCode::ArityMismatch => "RAQ101",
            DiagCode::UnboundHeadVariable => "RAQ102",
            DiagCode::UnboundConstraintVariable => "RAQ103",
            DiagCode::UnboundAggregateInput => "RAQ104",
            DiagCode::UndefinedOutput => "RAQ105",
            DiagCode::NegationCycle => "RAQ106",
            DiagCode::AggregationCycle => "RAQ107",
        }
    }

    /// One-line description of the defect class (the doc-table summary).
    pub fn summary(&self) -> &'static str {
        match self {
            DiagCode::UnusedRelation => "derived relation unreachable from every output",
            DiagCode::NeverFiringRule => "rule can never fire (contradictory constraints)",
            DiagCode::CartesianProduct => "rule body is a cartesian product (no shared variables)",
            DiagCode::UnboundUnderNegation => "variable bound only under negation",
            DiagCode::ColumnTypeMismatch => "column types disagree across rules of one relation",
            DiagCode::DuplicateRule => "rule duplicates an earlier rule (up to renaming)",
            DiagCode::UnboundOutputHead => {
                "output derivation carries no constant; magic sets cannot specialize"
            }
            DiagCode::PlanUnfilteredFirst => {
                "join order places a large unfiltered relation first (stats advisory)"
            }
            DiagCode::ArityMismatch => "atom arity differs from the schema declaration",
            DiagCode::UnboundHeadVariable => "head variable not bound by the body",
            DiagCode::UnboundConstraintVariable => "constraint variable unbound",
            DiagCode::UnboundAggregateInput => "aggregate input variable unbound",
            DiagCode::UndefinedOutput => "output relation never defined",
            DiagCode::NegationCycle => "negation inside a recursive cycle",
            DiagCode::AggregationCycle => "aggregation inside a recursive cycle",
        }
    }

    /// The severity a code carries unless a [`SeverityConfig`] overrides it:
    /// the `RAQ1xx` semantic checks and unsafe negation deny (they have
    /// always been hard errors), every other lint warns.
    pub fn default_severity(&self) -> Severity {
        match self {
            DiagCode::UnusedRelation
            | DiagCode::NeverFiringRule
            | DiagCode::CartesianProduct
            | DiagCode::ColumnTypeMismatch
            | DiagCode::DuplicateRule
            | DiagCode::UnboundOutputHead
            | DiagCode::PlanUnfilteredFirst => Severity::Warn,
            DiagCode::UnboundUnderNegation
            | DiagCode::ArityMismatch
            | DiagCode::UnboundHeadVariable
            | DiagCode::UnboundConstraintVariable
            | DiagCode::UnboundAggregateInput
            | DiagCode::UndefinedOutput
            | DiagCode::NegationCycle
            | DiagCode::AggregationCycle => Severity::Deny,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-code severity overrides, with [`DiagCode::default_severity`] as the
/// baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeverityConfig {
    overrides: BTreeMap<DiagCode, Severity>,
}

impl SeverityConfig {
    /// The default configuration: every code at its default severity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A configuration escalating every code to [`Severity::Deny`] — the
    /// "corpus must lint clean" mode used by CI and the golden tests.
    pub fn deny_all() -> Self {
        let mut c = Self::new();
        for code in DiagCode::ALL {
            c.overrides.insert(*code, Severity::Deny);
        }
        c
    }

    /// Override one code's severity (builder style).
    pub fn set(mut self, code: DiagCode, severity: Severity) -> Self {
        self.overrides.insert(code, severity);
        self
    }

    /// The effective severity of a code under this configuration.
    pub fn severity_of(&self, code: DiagCode) -> Severity {
        self.overrides.get(&code).copied().unwrap_or_else(|| code.default_severity())
    }
}

/// One analyzer or validator finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code identifying the defect class.
    pub code: DiagCode,
    /// Effective severity (default, unless resolved against a
    /// [`SeverityConfig`] via [`Diagnostic::with_severity`]).
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The relation the finding is about, when one is identifiable.
    pub relation: Option<String>,
    /// Index of the offending rule in `DlirProgram::rules`.
    pub rule_index: Option<usize>,
    /// Canonical rendering of the offending rule.
    pub rule: Option<String>,
    /// The surface construct the rule was lowered from (e.g. `MATCH #1`,
    /// `UNWIND`, `RETURN`) when the lowering recorded provenance.
    pub provenance: Option<String>,
    /// What to do about it.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            relation: None,
            rule_index: None,
            rule: None,
            provenance: None,
            suggestion: None,
        }
    }

    /// Attach the relation the finding is about.
    pub fn with_relation(mut self, relation: impl Into<String>) -> Self {
        self.relation = Some(relation.into());
        self
    }

    /// Attach rule provenance: the rule's index, its canonical rendering,
    /// and (when the lowering recorded one) the surface construct it came
    /// from.
    pub fn with_rule(
        mut self,
        index: usize,
        rendering: impl Into<String>,
        provenance: Option<&str>,
    ) -> Self {
        self.rule_index = Some(index);
        self.rule = Some(rendering.into());
        self.provenance = provenance.map(str::to_string);
        self
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Resolve the severity against a configuration.
    pub fn with_severity(mut self, config: &SeverityConfig) -> Self {
        self.severity = config.severity_of(self.code);
        self
    }

    /// True if this diagnostic blocks compilation.
    pub fn is_deny(&self) -> bool {
        self.severity == Severity::Deny
    }

    /// Human-readable rendering:
    ///
    /// ```text
    /// warn[RAQ003]: rule joins 2 unconnected atom groups ...
    ///   --> rule #1 `q(x, y) :- a(x), b(y).` (from MATCH #1)
    ///   help: share a variable between the groups or split the rule
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let (Some(i), Some(rule)) = (self.rule_index, &self.rule) {
            out.push_str(&format!("\n  --> rule #{i} `{rule}`"));
            if let Some(p) = &self.provenance {
                out.push_str(&format!(" (from {p})"));
            }
        } else if let Some(rel) = &self.relation {
            out.push_str(&format!("\n  --> relation `{rel}`"));
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  help: {s}"));
        }
        out
    }

    /// Machine-readable single-line JSON rendering (hand-built — the
    /// workspace is dependency-free). Keys: `code`, `severity`, `message`,
    /// and whichever of `relation`, `rule_index`, `rule`, `provenance`,
    /// `suggestion` are present.
    pub fn machine(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut fields = vec![
            format!("\"code\":\"{}\"", self.code),
            format!("\"severity\":\"{}\"", self.severity),
            format!("\"message\":\"{}\"", esc(&self.message)),
        ];
        if let Some(r) = &self.relation {
            fields.push(format!("\"relation\":\"{}\"", esc(r)));
        }
        if let Some(i) = self.rule_index {
            fields.push(format!("\"rule_index\":{i}"));
        }
        if let Some(r) = &self.rule {
            fields.push(format!("\"rule\":\"{}\"", esc(r)));
        }
        if let Some(p) = &self.provenance {
            fields.push(format!("\"provenance\":\"{}\"", esc(p)));
        }
        if let Some(s) = &self.suggestion {
            fields.push(format!("\"suggestion\":\"{}\"", esc(s)));
        }
        format!("{{{}}}", fields.join(","))
    }

    /// Convert into the semantic error `validate` raises for deny-level
    /// findings. The code travels in the message so existing string-typed
    /// error handling keeps working while callers gain a stable prefix.
    pub fn into_error(self) -> RaqletError {
        RaqletError::Semantic(format!("{}: {}", self.code, self.message))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_documented() {
        let mut seen = std::collections::BTreeSet::new();
        for code in DiagCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert!(!code.summary().is_empty());
        }
        assert_eq!(seen.len(), DiagCode::ALL.len());
    }

    #[test]
    fn default_severities_split_lints_from_errors() {
        assert_eq!(DiagCode::CartesianProduct.default_severity(), Severity::Warn);
        assert_eq!(DiagCode::ArityMismatch.default_severity(), Severity::Deny);
        assert_eq!(DiagCode::UnboundUnderNegation.default_severity(), Severity::Deny);
    }

    #[test]
    fn severity_config_overrides_and_deny_all() {
        let config = SeverityConfig::new().set(DiagCode::CartesianProduct, Severity::Allow);
        assert_eq!(config.severity_of(DiagCode::CartesianProduct), Severity::Allow);
        assert_eq!(config.severity_of(DiagCode::DuplicateRule), Severity::Warn);
        let deny = SeverityConfig::deny_all();
        for code in DiagCode::ALL {
            assert_eq!(deny.severity_of(*code), Severity::Deny);
        }
    }

    #[test]
    fn render_includes_code_rule_and_suggestion() {
        let d = Diagnostic::new(DiagCode::CartesianProduct, "2 unconnected atom groups")
            .with_rule(3, "q(x, y) :- a(x), b(y).", Some("MATCH #1"))
            .with_suggestion("share a variable between the groups");
        let r = d.render();
        assert!(r.starts_with("warn[RAQ003]: 2 unconnected atom groups"), "{r}");
        assert!(r.contains("rule #3 `q(x, y) :- a(x), b(y).` (from MATCH #1)"), "{r}");
        assert!(r.contains("help: share a variable"), "{r}");
    }

    #[test]
    fn machine_rendering_is_escaped_json() {
        let d = Diagnostic::new(DiagCode::NeverFiringRule, "x = \"a\" and x = \"b\"")
            .with_relation("q")
            .with_suggestion("drop the rule");
        let m = d.machine();
        assert!(m.starts_with('{') && m.ends_with('}'), "{m}");
        assert!(m.contains("\"code\":\"RAQ002\""), "{m}");
        assert!(m.contains("\\\"a\\\""), "{m}");
        assert!(m.contains("\"relation\":\"q\""), "{m}");
    }

    #[test]
    fn into_error_carries_the_code() {
        let e = Diagnostic::new(DiagCode::ArityMismatch, "atom `edge` has arity 3").into_error();
        assert_eq!(e.to_string(), "semantic error: RAQ101: atom `edge` has arity 3");
    }

    #[test]
    fn severity_resolution_against_config() {
        let config = SeverityConfig::new().set(DiagCode::CartesianProduct, Severity::Deny);
        let d = Diagnostic::new(DiagCode::CartesianProduct, "x").with_severity(&config);
        assert!(d.is_deny());
    }
}
