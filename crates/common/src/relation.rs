//! In-memory relations and databases over **packed rows**.
//!
//! These are the storage substrate shared by the deductive (Datalog) and
//! relational (SQL) execution engines. A [`Relation`] is a *set* of tuples —
//! all of Raqlet's backends use set semantics, matching the paper's use of
//! `RETURN DISTINCT` / `SELECT DISTINCT` — with hash indexes over join
//! columns that are **persistent**: once built they are *extended* on every
//! insert instead of being invalidated, so a fixpoint loop never pays to
//! rebuild an index over a relation that only grew.
//!
//! Storage is one flat `Vec<u64>` arena per relation: every admitted tuple
//! is packed into fixed-width [`Cell`] words (ints inline, strings as ids in
//! the per-database [`ValueDict`] dictionary — see [`crate::cell`]) and row
//! `r` lives at `r × stride`. There is **no per-row allocation**: dedup,
//! index probes and join keys are word compares over cache-contiguous
//! memory. Every admitted tuple gets a stable row id, deduplication happens
//! through a hash table of row ids keyed by the row's [`hash_cells`] hash,
//! and indexes store row-id posting lists instead of tuple copies. Removed
//! rows (lattice merges replace dominated tuples) are tombstoned by writing
//! [`TOMBSTONE_CELL`] into their first word.
//!
//! The public API stays [`Value`]-based — [`insert`], [`iter`],
//! [`contains`], [`sorted`] encode/decode at the edges — while the engines
//! drive the packed fast path ([`insert_cells`], [`stage_cells`],
//! [`probe_index_cells`], [`iter_rows`]). Cells are meaningful only relative
//! to the dictionary that encoded them; relations created through a
//! [`Database`] share that database's dictionary, and cross-relation packed
//! operations ([`merge`], [`difference`]) take the fast path exactly when
//! both sides share one dictionary.
//!
//! For semi-naive evaluation the visible state is split three ways:
//!
//! * the **full** set — every live row; this is what [`len`], [`iter`],
//!   [`contains`] and the indexes see;
//! * the **delta** — the rows that became visible in the *previous* fixpoint
//!   round (the frontier recursive rules join against);
//! * the **staged** set — tuples derived in the *current* round, invisible
//!   to reads until [`advance`] publishes them.
//!
//! The lifecycle per fixpoint round is: derive into the staging area via
//! [`stage`], then call [`advance`] to publish the staged tuples into the
//! arena (extending every index), make them the new delta, and start an
//! empty staging area.
//!
//! [`insert`]: Relation::insert
//! [`insert_cells`]: Relation::insert_cells
//! [`stage_cells`]: Relation::stage_cells
//! [`probe_index_cells`]: Relation::probe_index_cells
//! [`iter_rows`]: Relation::iter_rows
//! [`merge`]: Relation::merge
//! [`difference`]: Relation::difference
//! [`len`]: Relation::len
//! [`iter`]: Relation::iter
//! [`sorted`]: Relation::sorted
//! [`contains`]: Relation::contains
//! [`stage`]: Relation::stage
//! [`advance`]: Relation::advance
//!
//! ```
//! use raqlet_common::{Relation, Value};
//!
//! let mut edge = Relation::new(2);
//! edge.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
//! edge.insert(vec![Value::Int(1), Value::Int(3)]).unwrap();
//!
//! // Build a persistent index on the first column and probe it.
//! edge.ensure_index(&[0]);
//! assert_eq!(edge.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
//!
//! // Inserting extends the index in place — no rebuild.
//! edge.insert(vec![Value::Int(1), Value::Int(4)]).unwrap();
//! assert_eq!(edge.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 3);
//!
//! // Semi-naive delta lifecycle: stage derivations, then advance the round.
//! let mut tc = Relation::new(2);
//! tc.stage(vec![Value::Int(1), Value::Int(2)]).unwrap();
//! assert_eq!(tc.len(), 0); // staged tuples are not yet visible
//! assert_eq!(tc.advance(), 1);
//! assert_eq!(tc.len(), 1);
//! assert_eq!(tc.delta_len(), 1); // ... but now form the frontier
//! ```

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::cell::{is_tombstone, Cell, ValueDict, NULL_CELL, TOMBSTONE_CELL};
use crate::error::{RaqletError, Result};
use crate::hash::{hash_cells, FxHashMap};
use crate::value::Value;

/// A single row: a fixed-arity vector of values (the decoded, `Value`-level
/// view of a packed row).
pub type Tuple = Vec<Value>;

/// Row id within a relation's arena. Arena slots are never reused, so a
/// `RowId` stays valid (though its row may be tombstoned) for the relation's
/// lifetime.
type RowId = u32;

/// A posting list of row ids that stores the overwhelmingly common
/// zero/one-entry cases inline, avoiding one heap allocation per entry in
/// the dedup table and in selective indexes (which dominates clone cost).
#[derive(Debug, Clone)]
enum IdList {
    One(RowId),
    Many(Vec<RowId>),
}

impl IdList {
    fn push(&mut self, id: RowId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn remove(&mut self, id: RowId) -> bool {
        match self {
            // An empty `One` cannot be represented; the caller removes the
            // whole entry when this returns true.
            IdList::One(first) => *first == id,
            IdList::Many(v) => {
                v.retain(|&p| p != id);
                v.is_empty()
            }
        }
    }

    fn iter(&self) -> std::slice::Iter<'_, RowId> {
        match self {
            IdList::One(first) => std::slice::from_ref(first).iter(),
            IdList::Many(v) => v.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            IdList::One(_) => 0,
            IdList::Many(v) => v.capacity() * size_of::<RowId>(),
        }
    }
}

/// A persistent hash index over one or more columns, mapping the projected
/// packed key to the ids of matching rows. Single-column indexes key on the
/// cell word directly.
#[derive(Debug, Clone)]
enum Index {
    /// Index over exactly one column: keyed by the cell directly.
    Single(usize, FxHashMap<Cell, IdList>),
    /// Index over several columns: keyed by the projected cell vector.
    Multi(Vec<usize>, FxHashMap<Vec<Cell>, IdList>),
}

impl Index {
    fn new(columns: &[usize]) -> Index {
        if columns.len() == 1 {
            Index::Single(columns[0], FxHashMap::default())
        } else {
            Index::Multi(columns.to_vec(), FxHashMap::default())
        }
    }

    /// Add one row to the posting list for its key (`row` is the arity-wide
    /// cell slice).
    fn add(&mut self, id: RowId, row: &[Cell]) {
        match self {
            Index::Single(col, map) => match map.get_mut(&row[*col]) {
                Some(postings) => postings.push(id),
                None => {
                    map.insert(row[*col], IdList::One(id));
                }
            },
            Index::Multi(cols, map) => {
                let key: Vec<Cell> = cols.iter().map(|&c| row[c]).collect();
                match map.get_mut(key.as_slice()) {
                    Some(postings) => postings.push(id),
                    None => {
                        map.insert(key, IdList::One(id));
                    }
                }
            }
        }
    }

    /// The posting list for `key` (projected cells in column order).
    fn get(&self, key: &[Cell]) -> Option<&IdList> {
        match self {
            Index::Single(_, map) => map.get(&key[0]),
            Index::Multi(_, map) => map.get(key),
        }
    }

    /// Drop every posting list (arena compaction rebuilds them with the
    /// renumbered row ids).
    fn clear(&mut self) {
        match self {
            Index::Single(_, map) => map.clear(),
            Index::Multi(_, map) => map.clear(),
        }
    }

    /// Remove one row id from the posting list for `row`'s key.
    fn remove(&mut self, id: RowId, row: &[Cell]) {
        match self {
            Index::Single(col, map) => {
                if let Some(postings) = map.get_mut(&row[*col]) {
                    if postings.remove(id) {
                        map.remove(&row[*col]);
                    }
                }
            }
            Index::Multi(cols, map) => {
                let key: Vec<Cell> = cols.iter().map(|&c| row[c]).collect();
                if let Some(postings) = map.get_mut(key.as_slice()) {
                    if postings.remove(id) {
                        map.remove(key.as_slice());
                    }
                }
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Index::Single(_, map) => {
                map.capacity() * (size_of::<Cell>() + size_of::<IdList>() + 8)
                    + map.values().map(IdList::heap_bytes).sum::<usize>()
            }
            Index::Multi(cols, map) => {
                map.capacity() * (size_of::<Vec<Cell>>() + size_of::<IdList>() + 8 + cols.len() * 8)
                    + map.values().map(IdList::heap_bytes).sum::<usize>()
            }
        }
    }
}

/// A set of tuples of uniform arity, stored as packed cells in one flat
/// append-only arena with persistent hash indexes and semi-naive `full` /
/// `delta` / `staged` state (see the module docs for the lifecycle).
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    /// Words per arena row: `max(arity, 1)` — nullary relations pad each row
    /// with one [`NULL_CELL`] so that row ids, tombstones and the delta
    /// lifecycle work uniformly.
    stride: usize,
    /// The flat row arena: row `r` occupies `cells[r*stride .. (r+1)*stride]`.
    /// A tombstoned row has [`TOMBSTONE_CELL`] in its first word. Slots are
    /// never reused.
    cells: Vec<Cell>,
    /// Number of live (non-tombstoned) rows.
    live: usize,
    /// Deduplication table: packed-row hash → candidate row ids.
    dedup: FxHashMap<u64, IdList>,
    /// The frontier: packed snapshots (stride-wide rows) of the tuples
    /// published by the most recent [`Relation::advance`]. Stored by value so
    /// that mid-round lattice removals of dominated rows cannot mutate the
    /// frontier the current round is joining against.
    delta: Vec<Cell>,
    /// The staging area: stride-wide packed rows derived this round, not yet
    /// published. Deduplicated through `staged_dedup`; rows removed while
    /// staged are tombstoned in place.
    staged: Vec<Cell>,
    /// Dedup for the staging area: packed-row hash → staged row ordinals.
    staged_dedup: FxHashMap<u64, IdList>,
    /// Number of live staged rows.
    staged_live: usize,
    /// Packed rows published mid-round by [`Relation::lattice_insert`] that
    /// the next [`Relation::advance`] must still announce in the delta.
    delta_next: Vec<Cell>,
    /// Persistent hash indexes, keyed by the column positions they cover.
    /// Extended in place on insert, never invalidated.
    indexes: HashMap<Vec<usize>, Index>,
    /// Number of from-scratch index constructions this relation has paid for
    /// (monotonic; cloning carries the count). [`Relation::ensure_index`]
    /// increments it only when it actually builds — warm, prepared
    /// executions can therefore pin "zero rebuilds" in tests.
    index_builds: usize,
    /// The dictionary the cells of this relation were encoded against.
    dict: Arc<ValueDict>,
}

impl Default for Relation {
    fn default() -> Self {
        Relation::new(0)
    }
}

impl Relation {
    /// Create an empty relation with the given arity and its own (fresh)
    /// dictionary. Prefer [`Database::get_or_create`] — or
    /// [`Relation::with_dict`] — when the relation will live alongside
    /// others, so packed rows stay comparable across relations.
    pub fn new(arity: usize) -> Self {
        Relation::with_dict(arity, ValueDict::shared())
    }

    /// Create an empty relation encoding its cells against the given shared
    /// dictionary.
    pub fn with_dict(arity: usize, dict: Arc<ValueDict>) -> Self {
        Relation {
            arity,
            stride: arity.max(1),
            cells: Vec::new(),
            live: 0,
            dedup: FxHashMap::default(),
            delta: Vec::new(),
            staged: Vec::new(),
            staged_dedup: FxHashMap::default(),
            staged_live: 0,
            delta_next: Vec::new(),
            indexes: HashMap::new(),
            index_builds: 0,
            dict,
        }
    }

    /// Create a relation from an iterator of tuples. All tuples must share
    /// the same arity.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Words per arena row: `max(arity, 1)`. Packed-row slices handed out by
    /// [`Relation::delta_cells`] and [`Relation::full_cells`] are
    /// stride-wide; the first `arity` words are the tuple's cells.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The dictionary this relation's cells are encoded against.
    pub fn dict(&self) -> &Arc<ValueDict> {
        &self.dict
    }

    /// Number of live tuples in the full (published) set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the full set holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of arena rows (live + tombstoned).
    fn nrows(&self) -> usize {
        self.cells.len() / self.stride
    }

    /// The arity-wide cell slice of arena row `id` (may be tombstoned).
    #[inline]
    fn row(&self, id: RowId) -> &[Cell] {
        let start = id as usize * self.stride;
        &self.cells[start..start + self.arity]
    }

    /// True if arena row `id` has not been tombstoned.
    #[inline]
    fn row_is_live(&self, id: RowId) -> bool {
        !is_tombstone(self.cells[id as usize * self.stride])
    }

    /// Encode a `Value` tuple into arity-wide cells, growing the dictionary
    /// as needed.
    fn encode_row(&self, tuple: &[Value], out: &mut Vec<Cell>) {
        out.clear();
        out.extend(tuple.iter().map(|v| self.dict.encode_value(v)));
    }

    /// Encode a probe tuple without growing the dictionary; `None` means at
    /// least one value cannot be stored in any relation sharing this
    /// dictionary (so membership is necessarily false).
    fn try_encode_row(&self, tuple: &[Value]) -> Option<Vec<Cell>> {
        tuple.iter().map(|v| self.dict.try_encode_value(v)).collect()
    }

    /// Decode an arity-wide cell slice back to a `Value` tuple.
    fn decode_row(&self, row: &[Cell]) -> Tuple {
        row.iter().map(|&c| self.dict.decode(c)).collect()
    }

    /// The row id of the packed row if it is live in the arena. `row` is
    /// arity-wide and encoded against this relation's dictionary.
    fn find_cells(&self, row: &[Cell]) -> Option<RowId> {
        let ids = self.dedup.get(&hash_cells(row))?;
        ids.iter().copied().find(|&id| self.row_is_live(id) && self.row(id) == row)
    }

    /// Append a (known-new) packed row to the arena, the dedup table and
    /// every index, returning its row id. `row` is arity-wide.
    fn push_row(&mut self, row: &[Cell]) -> RowId {
        debug_assert_eq!(row.len(), self.arity);
        let id = self.nrows() as RowId;
        for index in self.indexes.values_mut() {
            index.add(id, row);
        }
        match self.dedup.entry(hash_cells(row)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdList::One(id));
            }
        }
        self.cells.extend_from_slice(row);
        if self.arity == 0 {
            self.cells.push(NULL_CELL);
        }
        self.live += 1;
        id
    }

    /// Insert a tuple directly into the full set, extending every existing
    /// index. Returns `Ok(true)` if the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(RaqletError::Execution(format!(
                "arity mismatch: relation has arity {}, tuple has arity {}",
                self.arity,
                tuple.len()
            )));
        }
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without arity checking (callers have already validated arity
    /// via the schema).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "arity mismatch in insert_unchecked");
        let mut row = Vec::with_capacity(self.arity);
        self.encode_row(&tuple, &mut row);
        self.insert_cells(&row)
    }

    /// Insert an already-encoded arity-wide packed row (engine/bulk-load hot
    /// path; the cells must come from this relation's dictionary). Returns
    /// true if the row was new.
    #[inline]
    pub fn insert_cells(&mut self, row: &[Cell]) -> bool {
        debug_assert_eq!(row.len(), self.arity, "arity mismatch in insert_cells");
        if self.find_cells(row).is_some() {
            return false;
        }
        self.push_row(row);
        true
    }

    /// Pre-allocate arena and dedup capacity for `additional` more rows —
    /// the persistence bulk-load path calls this with the exact row count
    /// read from a snapshot header so loading never reallocates.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.cells.reserve(additional * self.stride);
        self.dedup.reserve(additional);
    }

    /// Bulk-install an already-encoded, tombstone-free arena into this
    /// fresh (empty, index-free) relation: `cells` becomes the arena
    /// verbatim and the dedup table is built in a single pass — one hash
    /// per row instead of the find-then-push pair every
    /// [`Relation::insert_cells`] pays. This is the snapshot loader's fast
    /// path (cold-open time is dominated by arena reconstruction).
    ///
    /// Returns the id of the first duplicate row, if any; the relation is
    /// partially built in that case and must be discarded (the snapshot
    /// loader treats a duplicate as corruption).
    pub fn load_rows(&mut self, cells: Vec<Cell>) -> Option<usize> {
        debug_assert!(
            self.cells.is_empty() && self.indexes.is_empty(),
            "load_rows needs a fresh relation"
        );
        debug_assert!(self.arity > 0, "nullary relations go through insert_cells");
        debug_assert_eq!(cells.len() % self.stride, 0, "cells must be whole rows");
        let nrows = cells.len() / self.stride;
        self.cells = cells;
        self.dedup.reserve(nrows);
        let (arity, stride) = (self.arity, self.stride);
        let cells = &self.cells;
        for id in 0..nrows {
            let row = &cells[id * stride..id * stride + arity];
            match self.dedup.entry(hash_cells(row)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dup = e
                        .get()
                        .iter()
                        .any(|&p| &cells[p as usize * stride..p as usize * stride + arity] == row);
                    if dup {
                        return Some(id);
                    }
                    e.into_mut().push(id as RowId);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(IdList::One(id as RowId));
                }
            }
        }
        self.live = nrows;
        None
    }

    /// Stage a tuple for the current fixpoint round. The tuple becomes
    /// visible only after [`Relation::advance`]. Returns `Ok(true)` if the
    /// tuple is new (present neither in the full set nor already staged).
    pub fn stage(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(RaqletError::Execution(format!(
                "arity mismatch: relation has arity {}, tuple has arity {}",
                self.arity,
                tuple.len()
            )));
        }
        let mut row = Vec::with_capacity(self.arity);
        self.encode_row(&tuple, &mut row);
        Ok(self.stage_cells(&row))
    }

    /// [`Relation::stage`] for an already-encoded packed row (engine hot
    /// path).
    #[inline]
    pub fn stage_cells(&mut self, row: &[Cell]) -> bool {
        debug_assert_eq!(row.len(), self.arity, "arity mismatch in stage_cells");
        if self.find_cells(row).is_some() {
            return false;
        }
        let hash = hash_cells(row);
        if let Some(ids) = self.staged_dedup.get(&hash) {
            let stride = self.stride;
            if ids.iter().any(|&id| {
                &self.staged[id as usize * stride..id as usize * stride + self.arity] == row
            }) {
                return false;
            }
        }
        let id = (self.staged.len() / self.stride) as RowId;
        self.staged.extend_from_slice(row);
        if self.arity == 0 {
            self.staged.push(NULL_CELL);
        }
        match self.staged_dedup.entry(hash) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdList::One(id));
            }
        }
        self.staged_live += 1;
        true
    }

    /// Number of tuples currently staged (derived this round, unpublished).
    pub fn staged_len(&self) -> usize {
        self.staged_live
    }

    /// Finish a fixpoint round: publish every staged tuple into the full set
    /// (extending all indexes in place), make the round's new rows (staged
    /// plus any mid-round [`Relation::lattice_insert`]s) the new delta, and
    /// clear the staging area. Returns the number of rows in the new delta.
    pub fn advance(&mut self) -> usize {
        let staged = std::mem::take(&mut self.staged);
        self.staged_dedup.clear();
        self.staged_live = 0;
        self.delta = std::mem::take(&mut self.delta_next);
        self.delta.reserve(staged.len());
        let arity = self.arity;
        for row in staged.chunks_exact(self.stride) {
            if is_tombstone(row[0]) {
                continue;
            }
            // `stage` checked membership at staging time, but a direct
            // `insert` may have landed in between; re-check.
            if self.find_cells(&row[..arity]).is_some() {
                continue;
            }
            self.push_row(&row[..arity]);
            self.delta.extend_from_slice(row);
        }
        self.delta.len() / self.stride
    }

    /// Compare two cells under the total value order (used by lattice
    /// merges). Inline integers compare without touching the dictionary.
    fn cmp_cells(&self, a: Cell, b: Cell) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        if let (Some(x), Some(y)) = (crate::cell::inline_int(a), crate::cell::inline_int(b)) {
            return x.cmp(&y);
        }
        self.dict.decode(a).total_cmp(&self.dict.decode(b))
    }

    /// Insert under min/max-lattice semantics: the tuple is admitted only if
    /// its `col` value improves on every stored tuple of the same *group*
    /// (all other columns); dominated stored tuples are removed. Unlike
    /// [`Relation::stage`], an admitted tuple is published into the full set
    /// immediately (so the rest of the round observes the improvement), and
    /// is announced in the delta of the next [`Relation::advance`].
    pub fn lattice_insert(&mut self, tuple: Tuple, col: usize, minimize: bool) -> bool {
        let mut row = Vec::with_capacity(self.arity);
        self.encode_row(&tuple, &mut row);
        self.lattice_insert_cells(&row, col, minimize)
    }

    /// [`Relation::lattice_insert`] for an already-encoded packed row
    /// (engine hot path).
    pub fn lattice_insert_cells(&mut self, row: &[Cell], col: usize, minimize: bool) -> bool {
        debug_assert!(col < self.arity, "lattice column out of range");
        debug_assert_eq!(row.len(), self.arity);
        let group_cols: Vec<usize> = (0..self.arity).filter(|&i| i != col).collect();
        self.ensure_index(&group_cols);
        let key: Vec<Cell> = group_cols.iter().map(|&c| row[c]).collect();
        let mut dominated: Vec<RowId> = Vec::new();
        if let Some(postings) = self.indexes[group_cols.as_slice()].get(&key) {
            for &id in postings.iter() {
                if !self.row_is_live(id) {
                    continue;
                }
                let ord = self.cmp_cells(row[col], self.row(id)[col]);
                let better =
                    if minimize { ord == Ordering::Less } else { ord == Ordering::Greater };
                if better {
                    dominated.push(id);
                } else {
                    // An equal-or-better tuple is already stored.
                    return false;
                }
            }
        }
        for id in dominated {
            let old: Vec<Cell> = self.row(id).to_vec();
            self.remove_row(id);
            retain_rows(&mut self.delta_next, self.stride, |r| &r[..old.len()] != old.as_slice());
        }
        self.push_row(row);
        self.delta_next.extend_from_slice(row);
        if self.arity == 0 {
            self.delta_next.push(NULL_CELL);
        }
        true
    }

    /// The frontier tuples published by the most recent
    /// [`Relation::advance`], decoded.
    pub fn delta(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.delta.chunks_exact(self.stride).map(|row| self.decode_row(&row[..self.arity]))
    }

    /// The frontier as one flat packed slice of stride-wide rows, so callers
    /// can partition it into chunks (parallel delta-driven rule evaluation
    /// splits this slice across worker threads at row boundaries).
    pub fn delta_cells(&self) -> &[Cell] {
        &self.delta
    }

    /// Number of rows in the delta.
    pub fn delta_len(&self) -> usize {
        self.delta.len() / self.stride
    }

    /// True if the delta is empty.
    pub fn delta_is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Drop the delta and staging state (used when a fixpoint finishes so the
    /// relation leaves evaluation in a clean, full-set-only state).
    pub fn clear_rounds(&mut self) {
        self.delta.clear();
        self.staged.clear();
        self.staged_dedup.clear();
        self.staged_live = 0;
        self.delta_next.clear();
    }

    /// Seed the delta with the entire full set (the "round zero" frontier of
    /// a fixpoint that starts from already-loaded facts).
    pub fn seed_delta_from_full(&mut self) {
        let live_cells = self.live * self.stride;
        let Relation { delta, cells, stride, .. } = self;
        delta.clear();
        delta.reserve(live_cells);
        // Copy full stride rows (including any nullary pad).
        for row in cells.chunks_exact(*stride) {
            if !is_tombstone(row[0]) {
                delta.extend_from_slice(row);
            }
        }
    }

    /// The raw arena as one flat slice of stride-wide rows, **including**
    /// tombstoned rows (marked by [`TOMBSTONE_CELL`] in their first word).
    /// Parallel round-zero evaluation partitions this slice across worker
    /// threads; consumers must skip tombstoned rows.
    pub fn full_cells(&self) -> &[Cell] {
        &self.cells
    }

    /// True if the full set contains `tuple`.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        match self.try_encode_row(tuple) {
            Some(row) => self.find_cells(&row).is_some(),
            None => false,
        }
    }

    /// True if the full set contains the packed row (arity-wide, encoded
    /// against this relation's dictionary).
    #[inline]
    pub fn contains_cells(&self, row: &[Cell]) -> bool {
        self.find_cells(row).is_some()
    }

    /// Iterate over the full set in insertion order, decoding each row.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.iter_rows().map(|row| self.decode_row(row))
    }

    /// Iterate over the packed (arity-wide) rows of the full set in
    /// insertion order, skipping tombstones. This is the engines' scan path:
    /// no decoding, no allocation.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Cell]> + '_ {
        self.cells
            .chunks_exact(self.stride)
            .filter(|row| !is_tombstone(row[0]))
            .map(move |row| &row[..self.arity])
    }

    /// All tuples, sorted, for deterministic output and comparisons in tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().collect();
        v.sort();
        v
    }

    /// Set-union with another relation's full set, returning the number of
    /// new tuples. Packed fast path when both relations share a dictionary.
    pub fn merge(&mut self, other: &Relation) -> Result<usize> {
        if other.arity != self.arity && !other.is_empty() {
            return Err(RaqletError::Execution(format!(
                "cannot merge relation of arity {} into relation of arity {}",
                other.arity, self.arity
            )));
        }
        let mut added = 0;
        if Arc::ptr_eq(&self.dict, &other.dict) {
            // Borrow juggling: copy rows out lazily via index ranges to keep
            // the borrow checker happy without cloning the whole arena.
            for id in 0..other.nrows() {
                if !other.row_is_live(id as RowId) {
                    continue;
                }
                let start = id * other.stride;
                let row: &[Cell] = &other.cells[start..start + other.arity];
                if self.insert_cells(row) {
                    added += 1;
                }
            }
        } else {
            for t in other.iter() {
                if self.insert_unchecked(t) {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// The tuples of `self` not present in `other` (the semi-naive "delta"
    /// of the SQL working-table loop). The result shares `self`'s
    /// dictionary.
    pub fn difference(&self, other: &Relation) -> Relation {
        let mut out = Relation::with_dict(self.arity, self.dict.clone());
        if Arc::ptr_eq(&self.dict, &other.dict) {
            for row in self.iter_rows() {
                if !other.contains_cells(row) {
                    out.insert_cells(row);
                }
            }
        } else {
            for t in self.iter() {
                if !other.contains(&t) {
                    out.insert_unchecked(t);
                }
            }
        }
        out
    }

    /// Rebuild the arena without its tombstoned slots, renumbering row ids
    /// and rebuilding the dedup table and every persistent index **in
    /// place** (the same declared column sets; this is maintenance of
    /// existing indexes, so [`Relation::index_build_count`] does not move).
    ///
    /// Arena slots are normally never reused, which makes repeated
    /// retraction + re-derivation (incremental view maintenance) grow the
    /// arena — and every full-set scan — without bound. Compaction restores
    /// `nrows() == len()`. Must only be called between fixpoint rounds
    /// (empty delta/staged state), since those hold row snapshots.
    pub fn compact(&mut self) {
        if self.nrows() == self.live {
            return;
        }
        debug_assert!(
            self.delta.is_empty() && self.staged.is_empty() && self.delta_next.is_empty(),
            "compact during an active fixpoint round"
        );
        let old = std::mem::take(&mut self.cells);
        self.cells = Vec::with_capacity(self.live * self.stride);
        self.dedup.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        self.live = 0;
        for row in old.chunks_exact(self.stride) {
            if !is_tombstone(row[0]) {
                self.push_row(&row[..self.arity]);
            }
        }
    }

    /// Compact when at least half the arena (and a non-trivial slot count)
    /// is tombstone garbage — the amortized-O(1)-per-write policy standing
    /// views use after each maintenance pass.
    pub fn maybe_compact(&mut self) {
        if self.nrows() >= 64 && self.live * 2 <= self.nrows() {
            self.compact();
        }
    }

    /// Tombstone one arena row: drop it from the live set, the dedup table
    /// and every index posting list.
    fn remove_row(&mut self, id: RowId) {
        if !self.row_is_live(id) {
            return;
        }
        let row: Vec<Cell> = self.row(id).to_vec();
        self.live -= 1;
        let hash = hash_cells(&row);
        if let Some(ids) = self.dedup.get_mut(&hash) {
            if ids.remove(id) {
                self.dedup.remove(&hash);
            }
        }
        for index in self.indexes.values_mut() {
            index.remove(id, &row);
        }
        self.cells[id as usize * self.stride] = TOMBSTONE_CELL;
    }

    /// Remove a tuple from the full set, every index, and the staging area
    /// (used by lattice merges that replace a dominated tuple). The delta
    /// holds packed snapshots, so the frontier the current round joins
    /// against is genuinely unaffected. Returns true if the tuple was
    /// present in the full set.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        let Some(row) = self.try_encode_row(tuple) else { return false };
        self.remove_cells(&row)
    }

    /// [`Relation::remove`] for an already-encoded arity-wide packed row (the
    /// incremental-maintenance retraction hot path). Tombstones the arena
    /// row, updates the dedup table and every persistent index in place, and
    /// drops any identical staged row. Returns true if the row was present
    /// in the full set.
    pub fn remove_cells(&mut self, row: &[Cell]) -> bool {
        debug_assert_eq!(row.len(), self.arity, "arity mismatch in remove_cells");
        // Tombstone any matching staged row.
        let hash = hash_cells(row);
        if let Some(ids) = self.staged_dedup.get(&hash) {
            let stride = self.stride;
            let arity = self.arity;
            let hit = ids.iter().copied().find(|&id| {
                let start = id as usize * stride;
                !is_tombstone(self.staged[start]) && &self.staged[start..start + arity] == row
            });
            if let Some(id) = hit {
                self.staged[id as usize * stride] = TOMBSTONE_CELL;
                self.staged_live -= 1;
                if let Some(ids) = self.staged_dedup.get_mut(&hash) {
                    if ids.remove(id) {
                        self.staged_dedup.remove(&hash);
                    }
                }
            }
        }
        match self.find_cells(row) {
            Some(id) => {
                self.remove_row(id);
                true
            }
            None => false,
        }
    }

    /// Build a persistent hash index over the given columns if one does not
    /// already exist. Subsequent inserts extend it in place.
    pub fn ensure_index(&mut self, columns: &[usize]) {
        if self.indexes.contains_key(columns) {
            return;
        }
        self.index_builds += 1;
        let mut index = Index::new(columns);
        for id in 0..self.nrows() {
            if self.row_is_live(id as RowId) {
                index.add(id as RowId, self.row(id as RowId));
            }
        }
        self.indexes.insert(columns.to_vec(), index);
    }

    /// Materialize every index in `column_sets` that does not already exist
    /// (see [`Relation::ensure_index`]). This is the declaration hook for
    /// compile-time index-requirements analysis: the engine's program plan
    /// computes exactly which column sets its join schedules will probe and
    /// declares them here once, up front, instead of relying on lazy builds
    /// on first probe.
    pub fn require_indexes(&mut self, column_sets: &[Vec<usize>]) {
        for columns in column_sets {
            self.ensure_index(columns);
        }
    }

    /// Probe a previously built index (see [`Relation::ensure_index`]) with
    /// a packed key (projected cells in column order). Returns `None` if no
    /// index exists over `columns`; otherwise an iterator over the live
    /// packed rows matching `key`.
    pub fn probe_index_cells<'a>(
        &'a self,
        columns: &[usize],
        key: &[Cell],
    ) -> Option<impl Iterator<Item = &'a [Cell]> + 'a> {
        let index = self.indexes.get(columns)?;
        let postings = index.get(key).map(|l| l.iter()).unwrap_or_else(|| [].iter());
        Some(postings.filter(|&&id| self.row_is_live(id)).map(move |&id| self.row(id)))
    }

    /// Probe a previously built index with `Value`-level key components,
    /// decoding the matching rows. Returns `None` if no index exists over
    /// `columns`; a key containing values this relation has never stored
    /// yields an empty iterator.
    pub fn probe_index<'a>(
        &'a self,
        columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = Tuple> + 'a> {
        let index = self.indexes.get(columns)?;
        let encoded: Option<Vec<Cell>> =
            key.iter().map(|v| self.dict.try_encode_value(v)).collect();
        let postings =
            encoded.and_then(|k| index.get(&k)).map(|l| l.iter()).unwrap_or_else(|| [].iter());
        Some(
            postings
                .filter(|&&id| self.row_is_live(id))
                .map(move |&id| self.decode_row(self.row(id))),
        )
    }

    /// Build (or fetch) a hash index over the given columns and return the
    /// matching tuples for `key`, decoded.
    pub fn probe(&mut self, columns: &[usize], key: &[Value]) -> Vec<Tuple> {
        self.ensure_index(columns);
        // Invariant: `ensure_index` just created (or found) the index, so the
        // probe cannot miss.
        #[allow(clippy::expect_used)]
        self.probe_index(columns, key).expect("index exists after ensure_index").collect()
    }

    /// True if a persistent index over exactly these columns exists.
    pub fn has_index(&self, columns: &[usize]) -> bool {
        self.indexes.contains_key(columns)
    }

    /// Number of persistent indexes currently maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of from-scratch index constructions this relation has paid for
    /// over its lifetime (a clone inherits its source's count). Extending an
    /// index on insert does not count; only [`Relation::ensure_index`] calls
    /// that actually build do.
    pub fn index_build_count(&self) -> usize {
        self.index_builds
    }

    /// Project the relation onto the given column positions (with
    /// deduplication, since relations are sets). Pure cell copying — no
    /// decode; the result shares this relation's dictionary.
    pub fn project(&self, columns: &[usize]) -> Relation {
        let mut out = Relation::with_dict(columns.len(), self.dict.clone());
        let mut projected: Vec<Cell> = Vec::with_capacity(columns.len());
        for row in self.iter_rows() {
            projected.clear();
            projected.extend(columns.iter().map(|&c| row[c]));
            out.insert_cells(&projected);
        }
        out
    }

    /// Keep only tuples satisfying `pred` (which sees the decoded tuple).
    /// The result shares this relation's dictionary.
    pub fn filter<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Relation {
        let mut out = Relation::with_dict(self.arity, self.dict.clone());
        for row in self.iter_rows() {
            if pred(&self.decode_row(row)) {
                out.insert_cells(row);
            }
        }
        out
    }

    /// Re-encode this relation's rows against `dict`, preserving the column
    /// sets of its persistent indexes (rebuilt, so the build counter grows).
    /// Round (delta/staged) state is not carried over.
    pub fn rebind(&self, dict: Arc<ValueDict>) -> Relation {
        let mut out = Relation::with_dict(self.arity, dict);
        for t in self.iter() {
            out.insert_unchecked(t);
        }
        for columns in self.indexes.keys() {
            out.ensure_index(columns);
        }
        out
    }

    /// Approximate heap footprint in bytes: the cell arena, round state, the
    /// dedup table, every persistent index, and this relation's share of the
    /// value dictionary (the dictionary's footprint divided by the number of
    /// live handles to it).
    pub fn heap_bytes(&self) -> usize {
        let vecs = (self.cells.capacity()
            + self.delta.capacity()
            + self.staged.capacity()
            + self.delta_next.capacity())
            * size_of::<Cell>();
        let dedup = self.dedup.capacity() * (8 + size_of::<IdList>() + 8)
            + self.dedup.values().map(IdList::heap_bytes).sum::<usize>();
        let staged_dedup = self.staged_dedup.capacity() * (8 + size_of::<IdList>() + 8)
            + self.staged_dedup.values().map(IdList::heap_bytes).sum::<usize>();
        let dict_share = self.dict.heap_bytes() / Arc::strong_count(&self.dict).max(1);
        vecs + dedup + staged_dedup + self.index_heap_bytes() + dict_share
    }

    /// Approximate heap footprint of the persistent hash indexes alone (a
    /// subset of [`Relation::heap_bytes`]), so benchmarks can report index
    /// overhead separately from arena storage.
    pub fn index_heap_bytes(&self) -> usize {
        self.indexes
            .iter()
            .map(|(cols, idx)| cols.capacity() * size_of::<usize>() + idx.heap_bytes())
            .sum()
    }
}

/// Retain only the stride-wide rows of `rows` satisfying `pred` (compacting
/// in place).
fn retain_rows<F: Fn(&[Cell]) -> bool>(rows: &mut Vec<Cell>, stride: usize, pred: F) {
    let mut write = 0;
    let mut read = 0;
    while read + stride <= rows.len() {
        let keep = pred(&rows[read..read + stride]);
        if keep {
            if write != read {
                rows.copy_within(read..read + stride, write);
            }
            write += stride;
        }
        read += stride;
    }
    rows.truncate(write);
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.arity != other.arity || self.live != other.live {
            return false;
        }
        if Arc::ptr_eq(&self.dict, &other.dict) {
            self.iter_rows().all(|row| other.contains_cells(row))
        } else {
            self.iter().all(|t| other.contains(&t))
        }
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.sorted() {
            let row = t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\t");
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

/// A named collection of relations: the extensional database handed to the
/// engines, and also the container for computed IDB results. All relations
/// created through the database share one [`ValueDict`], so their packed
/// rows are directly comparable (and joinable) at the cell level.
#[derive(Debug, Clone)]
pub struct Database {
    relations: HashMap<String, Relation>,
    dict: Arc<ValueDict>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Database {
    /// Create an empty database with a fresh value dictionary.
    pub fn new() -> Self {
        Database { relations: HashMap::new(), dict: ValueDict::shared() }
    }

    /// Create an empty database sharing an existing dictionary (evaluation
    /// working sets share the extensional database's dictionary so packed
    /// rows move between them verbatim).
    pub fn with_dict(dict: Arc<ValueDict>) -> Self {
        Database { relations: HashMap::new(), dict }
    }

    /// The value dictionary shared by this database's relations.
    pub fn dict(&self) -> &Arc<ValueDict> {
        &self.dict
    }

    /// Insert or replace a relation under `name`. A relation encoded against
    /// a different dictionary is re-encoded (see [`Relation::rebind`]) so
    /// that every stored relation shares this database's dictionary.
    pub fn set(&mut self, name: impl Into<String>, relation: Relation) {
        let relation = if Arc::ptr_eq(relation.dict(), &self.dict) {
            relation
        } else {
            relation.rebind(self.dict.clone())
        };
        self.relations.insert(name.into(), relation);
    }

    /// Fetch a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable access to a relation by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Remove a relation, returning it if present (prepared executions drop
    /// the derived relations of a run while keeping the warm base set).
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Total from-scratch index constructions across all stored relations
    /// (see [`Relation::index_build_count`]).
    pub fn index_builds(&self) -> usize {
        self.relations.values().map(|r| r.index_build_count()).sum()
    }

    /// Fetch a relation by name, returning an execution error if absent.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| RaqletError::execution(format!("relation `{name}` not loaded")))
    }

    /// Mutable access, creating an empty relation of the given arity (bound
    /// to this database's dictionary) if the name is not yet present.
    pub fn get_or_create(&mut self, name: &str, arity: usize) -> &mut Relation {
        self.relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::with_dict(arity, self.dict.clone()))
    }

    /// Insert a single fact into the named relation (creating it on demand).
    pub fn insert_fact(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        let arity = tuple.len();
        self.get_or_create(name, arity).insert(tuple)
    }

    /// Iterate over `(name, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Iterate over `(name, relation)` pairs mutably (unspecified order).
    /// The persistence layer compacts every arena through this before a
    /// snapshot export.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Relation)> {
        self.relations.iter_mut()
    }

    /// Names of all stored relations, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Approximate heap footprint in bytes: every relation's arena, round
    /// state and indexes, plus the shared value dictionary (counted once).
    pub fn heap_bytes(&self) -> usize {
        let relations: usize = self
            .relations
            .values()
            .map(|r| r.heap_bytes() - r.dict().heap_bytes() / Arc::strong_count(r.dict()).max(1))
            .sum();
        relations + self.dict.heap_bytes()
    }

    /// Approximate heap footprint of persistent indexes across all stored
    /// relations (see [`Relation::index_heap_bytes`]).
    pub fn index_heap_bytes(&self) -> usize {
        self.relations.values().map(|r| r.index_heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])).unwrap());
        assert!(!r.insert(t(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1])).is_err());
        assert!(r.insert(t(&[1, 2, 3])).is_err());
    }

    #[test]
    fn merge_counts_new_tuples_only() {
        let mut a = Relation::from_tuples(2, vec![t(&[1, 2]), t(&[3, 4])]).unwrap();
        let b = Relation::from_tuples(2, vec![t(&[3, 4]), t(&[5, 6])]).unwrap();
        let added = a.merge(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_rejects_arity_mismatch_unless_empty() {
        let mut a = Relation::new(2);
        let empty = Relation::new(3);
        assert!(a.merge(&empty).is_ok());
        let b = Relation::from_tuples(3, vec![t(&[1, 2, 3])]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn difference_computes_semi_naive_delta() {
        let new = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let old = Relation::from_tuples(1, vec![t(&[2])]).unwrap();
        let delta = new.difference(&old);
        assert_eq!(delta.sorted(), vec![t(&[1]), t(&[3])]);
    }

    #[test]
    fn probe_returns_matching_tuples() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 11]), t(&[2, 20])]).unwrap();
        let hits = r.probe(&[0], &[Value::Int(1)]).len();
        assert_eq!(hits, 2);
        let misses = r.probe(&[0], &[Value::Int(99)]);
        assert!(misses.is_empty());
    }

    #[test]
    fn probe_index_is_extended_by_inserts_not_invalidated() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        assert_eq!(r.index_count(), 1);
        r.insert(t(&[1, 11])).unwrap();
        // The index is still there and already covers the new tuple.
        assert_eq!(r.index_count(), 1);
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
    }

    #[test]
    fn probe_index_without_ensure_returns_none() {
        let r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        assert!(r.probe_index(&[0], &[Value::Int(1)]).is_none());
    }

    #[test]
    fn probe_index_with_never_seen_values_is_empty_and_grows_nothing() {
        let mut r = Relation::from_tuples(2, vec![vec![Value::str("a"), Value::Int(1)]]).unwrap();
        r.ensure_index(&[0]);
        let before = r.dict().len();
        assert_eq!(r.probe_index(&[0], &[Value::str("never-stored")]).unwrap().count(), 0);
        assert!(!r.contains(&[Value::str("never-stored"), Value::Int(1)]));
        assert_eq!(r.dict().len(), before, "probing must not grow the dictionary");
    }

    #[test]
    fn multi_column_indexes_probe_by_projected_key() {
        let mut r =
            Relation::from_tuples(3, vec![t(&[1, 2, 30]), t(&[1, 2, 31]), t(&[1, 3, 32])]).unwrap();
        r.ensure_index(&[0, 1]);
        let hits = r.probe_index(&[0, 1], &[Value::Int(1), Value::Int(2)]).unwrap().count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn stage_and_advance_follow_the_delta_lifecycle() {
        let mut r = Relation::new(1);
        r.insert(t(&[1])).unwrap();
        // Staging an existing tuple is a no-op; staging a new one is not.
        assert!(!r.stage(t(&[1])).unwrap());
        assert!(r.stage(t(&[2])).unwrap());
        assert!(!r.stage(t(&[2])).unwrap());
        assert_eq!(r.staged_len(), 1);
        // Staged tuples are invisible until advance.
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&t(&[2])));
        assert_eq!(r.advance(), 1);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[2])));
        assert_eq!(r.delta().collect::<Vec<_>>(), vec![t(&[2])]);
        // The next advance with nothing staged empties the delta.
        assert_eq!(r.advance(), 0);
        assert!(r.delta_is_empty());
    }

    #[test]
    fn advance_extends_existing_indexes() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        r.ensure_index(&[0]);
        r.stage(t(&[1, 11])).unwrap();
        r.advance();
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
    }

    #[test]
    fn advance_skips_tuples_inserted_directly_in_between() {
        let mut r = Relation::new(1);
        r.stage(t(&[7])).unwrap();
        r.insert(t(&[7])).unwrap();
        // The tuple is already published; the delta must not re-announce it.
        assert_eq!(r.advance(), 0);
        assert!(r.delta_is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_drops_tuple_from_full_and_indexes() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 11])]).unwrap();
        r.ensure_index(&[0]);
        assert!(r.remove(&t(&[1, 10])));
        assert!(!r.remove(&t(&[1, 10])));
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 1);
        assert!(!r.contains(&t(&[1, 10])));
    }

    #[test]
    fn remove_also_unstages() {
        let mut r = Relation::new(1);
        r.stage(t(&[5])).unwrap();
        assert_eq!(r.staged_len(), 1);
        r.remove(&t(&[5]));
        assert_eq!(r.staged_len(), 0);
        assert_eq!(r.advance(), 0);
    }

    #[test]
    fn compact_drops_tombstones_without_counting_as_index_builds() {
        let tuples: Vec<Tuple> = (0..100).map(|i| t(&[i, i + 1000])).collect();
        let mut r = Relation::from_tuples(2, tuples).unwrap();
        r.ensure_index(&[0]);
        let builds = r.index_build_count();
        for i in 0..80 {
            assert!(r.remove(&t(&[i, i + 1000])));
        }
        let garbage = r.heap_bytes();
        r.maybe_compact();
        assert!(r.heap_bytes() < garbage, "compaction must shrink the arena");
        assert_eq!(r.len(), 20);
        assert_eq!(r.index_build_count(), builds, "postings are rebuilt in place, not re-built");
        for i in 80..100 {
            assert!(r.contains(&t(&[i, i + 1000])));
            assert_eq!(r.probe_index(&[0], &[Value::Int(i)]).unwrap().count(), 1);
        }
        assert_eq!(r.probe_index(&[0], &[Value::Int(0)]).unwrap().count(), 0);
        // Renumbered row ids stay consistent with later writes and removals.
        assert!(r.insert(t(&[0, 1000])).unwrap());
        assert!(r.remove(&t(&[99, 1099])));
        assert_eq!(r.sorted().len(), 20);
    }

    #[test]
    fn maybe_compact_leaves_mostly_live_relations_alone() {
        let tuples: Vec<Tuple> = (0..100).map(|i| t(&[i])).collect();
        let mut r = Relation::from_tuples(1, tuples).unwrap();
        for i in 0..10 {
            r.remove(&t(&[i]));
        }
        let before = r.heap_bytes();
        r.maybe_compact(); // only 10% garbage: not worth rewriting the arena
        assert_eq!(r.heap_bytes(), before);
        assert_eq!(r.len(), 90);
    }

    #[test]
    fn lattice_insert_keeps_only_the_best_tuple_per_group() {
        let mut r = Relation::new(3);
        assert!(r.lattice_insert(t(&[1, 2, 9]), 2, true));
        assert!(r.lattice_insert(t(&[1, 2, 5]), 2, true)); // improves
        assert!(!r.lattice_insert(t(&[1, 2, 7]), 2, true)); // dominated
        assert!(r.lattice_insert(t(&[3, 4, 7]), 2, true)); // different group
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2, 5])));
        assert!(!r.contains(&t(&[1, 2, 9])));
        // Both surviving tuples (but not the replaced one) form the delta.
        assert_eq!(r.advance(), 2);
        let mut delta: Vec<Tuple> = r.delta().collect();
        delta.sort();
        assert_eq!(delta, vec![t(&[1, 2, 5]), t(&[3, 4, 7])]);
    }

    #[test]
    fn lattice_removals_do_not_mutate_the_current_delta() {
        let mut r = Relation::new(3);
        r.lattice_insert(t(&[1, 2, 9]), 2, true);
        r.advance();
        assert_eq!(r.delta().collect::<Vec<_>>(), vec![t(&[1, 2, 9])]);
        // Mid-round improvement replaces the stored tuple, but the frontier
        // the current round is joining against must still see the snapshot.
        assert!(r.lattice_insert(t(&[1, 2, 5]), 2, true));
        assert!(!r.contains(&t(&[1, 2, 9])));
        assert_eq!(r.delta().collect::<Vec<_>>(), vec![t(&[1, 2, 9])]);
        // The next round announces only the improvement.
        assert_eq!(r.advance(), 1);
        assert_eq!(r.delta().collect::<Vec<_>>(), vec![t(&[1, 2, 5])]);
    }

    #[test]
    fn lattice_insert_max_keeps_largest() {
        let mut r = Relation::new(2);
        assert!(r.lattice_insert(t(&[1, 5]), 1, false));
        assert!(r.lattice_insert(t(&[1, 9]), 1, false));
        assert!(!r.lattice_insert(t(&[1, 2]), 1, false));
        assert_eq!(r.sorted(), vec![t(&[1, 9])]);
    }

    #[test]
    fn seed_delta_from_full_copies_every_tuple() {
        let mut r = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]).unwrap();
        r.seed_delta_from_full();
        assert_eq!(r.delta_len(), 2);
        r.clear_rounds();
        assert!(r.delta_is_empty());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn project_deduplicates() {
        let r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 20])]).unwrap();
        let p = r.project(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn filter_keeps_matching_tuples() {
        let r = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let f = r.filter(|row| row[0].as_int().unwrap() >= 2);
        assert_eq!(f.sorted(), vec![t(&[2]), t(&[3])]);
    }

    #[test]
    fn relations_compare_as_sets() {
        let a = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]).unwrap();
        let b = Relation::from_tuples(1, vec![t(&[2]), t(&[1])]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn relations_with_distinct_dictionaries_still_compare_by_value() {
        let a =
            Relation::from_tuples(1, vec![vec![Value::str("x")], vec![Value::str("y")]]).unwrap();
        let b =
            Relation::from_tuples(1, vec![vec![Value::str("y")], vec![Value::str("x")]]).unwrap();
        assert!(!Arc::ptr_eq(a.dict(), b.dict()));
        assert_eq!(a, b);
    }

    #[test]
    fn staged_tuples_do_not_affect_equality() {
        let mut a = Relation::from_tuples(1, vec![t(&[1])]).unwrap();
        let b = Relation::from_tuples(1, vec![t(&[1])]).unwrap();
        a.stage(t(&[2])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_sorted_and_tab_separated() {
        let r = Relation::from_tuples(2, vec![t(&[2, 20]), t(&[1, 10])]).unwrap();
        assert_eq!(r.to_string(), "1\t10\n2\t20\n");
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let r = Relation::from_tuples(2, vec![t(&[2, 20]), t(&[1, 10])]).unwrap();
        let rows: Vec<Tuple> = r.iter().collect();
        assert_eq!(rows, vec![t(&[2, 20]), t(&[1, 10])]);
    }

    #[test]
    fn nullary_relations_hold_at_most_one_row() {
        let mut r = Relation::new(0);
        assert!(r.insert(vec![]).unwrap());
        assert!(!r.insert(vec![]).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![Vec::<Value>::new()]);
        assert!(r.remove(&[]));
        assert!(r.is_empty());
        // And the delta lifecycle still works.
        assert!(r.stage(vec![]).unwrap());
        assert_eq!(r.advance(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.delta_len(), 1);
    }

    #[test]
    fn mixed_value_types_round_trip_through_packing() {
        let tuple = vec![
            Value::Int(i64::MIN),
            Value::str("Ada"),
            Value::Bool(true),
            Value::Null,
            Value::Int(i64::MAX),
        ];
        let mut r = Relation::new(5);
        assert!(r.insert(tuple.clone()).unwrap());
        assert!(!r.insert(tuple.clone()).unwrap());
        assert!(r.contains(&tuple));
        assert_eq!(r.iter().next().unwrap(), tuple);
    }

    #[test]
    fn heap_bytes_reports_nonzero_for_populated_relations() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 2]), t(&[3, 4])]).unwrap();
        r.ensure_index(&[0]);
        assert!(r.heap_bytes() > 0);
    }

    #[test]
    fn database_basic_operations() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert_fact("edge", t(&[1, 2])).unwrap();
        db.insert_fact("edge", t(&[2, 3])).unwrap();
        assert_eq!(db.get("edge").unwrap().len(), 2);
        assert_eq!(db.names(), vec!["edge".to_string()]);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.require("missing").is_err());
        assert!(db.heap_bytes() > 0);
    }

    #[test]
    fn database_relations_share_the_dictionary() {
        let mut db = Database::new();
        db.insert_fact("a", vec![Value::str("x")]).unwrap();
        db.insert_fact("b", vec![Value::str("x")]).unwrap();
        assert!(Arc::ptr_eq(db.get("a").unwrap().dict(), db.get("b").unwrap().dict()));
        // One interned string, not two.
        assert_eq!(db.dict().len(), 1);
    }

    #[test]
    fn set_rebinds_foreign_dictionary_relations() {
        let mut db = Database::new();
        db.insert_fact("a", vec![Value::str("x")]).unwrap();
        // A standalone relation with its own dictionary.
        let mut foreign = Relation::new(1);
        foreign.insert(vec![Value::str("x")]).unwrap();
        foreign.ensure_index(&[0]);
        db.set("b", foreign);
        let b = db.get("b").unwrap();
        assert!(Arc::ptr_eq(b.dict(), db.dict()));
        assert!(b.contains(&[Value::str("x")]));
        assert!(b.has_index(&[0]));
        // Cell-level equality across relations now holds.
        let row_a: Vec<u64> = db.get("a").unwrap().iter_rows().next().unwrap().to_vec();
        assert!(db.get("b").unwrap().contains_cells(&row_a));
    }

    #[test]
    fn get_or_create_reuses_existing_relation() {
        let mut db = Database::new();
        db.insert_fact("r", t(&[1])).unwrap();
        let r = db.get_or_create("r", 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn get_mut_allows_in_place_index_builds() {
        let mut db = Database::new();
        db.insert_fact("r", t(&[1, 2])).unwrap();
        db.get_mut("r").unwrap().ensure_index(&[0]);
        assert_eq!(db.get("r").unwrap().probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 1);
    }
}
