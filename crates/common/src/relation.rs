//! In-memory relations and databases.
//!
//! These are the storage substrate shared by the deductive (Datalog) and
//! relational (SQL) execution engines. A [`Relation`] is a *set* of tuples —
//! all of Raqlet's backends use set semantics, matching the paper's use of
//! `RETURN DISTINCT` / `SELECT DISTINCT` — with hash indexes over join
//! columns that are **persistent**: once built they are *extended* on every
//! insert instead of being invalidated, so a fixpoint loop never pays to
//! rebuild an index over a relation that only grew.
//!
//! Storage is an append-only **row arena**: every admitted tuple gets a
//! stable row id, deduplication happens through a hash table of row ids, and
//! indexes store row-id posting lists instead of tuple copies. Each tuple is
//! therefore stored exactly once no matter how many indexes cover it, and
//! building or extending an index never clones a tuple. Removed rows (lattice
//! merges replace dominated tuples) leave a tombstone; stale posting-list
//! entries are skipped on probe.
//!
//! For semi-naive evaluation the visible state is split three ways:
//!
//! * the **full** set — every live row; this is what [`len`], [`iter`],
//!   [`contains`] and the indexes see;
//! * the **delta** — the rows that became visible in the *previous* fixpoint
//!   round (the frontier recursive rules join against);
//! * the **staged** set — tuples derived in the *current* round, invisible
//!   to reads until [`advance`] publishes them.
//!
//! The lifecycle per fixpoint round is: derive into the staging area via
//! [`stage`], then call [`advance`] to publish the staged tuples into the
//! arena (extending every index), make them the new delta, and start an
//! empty staging area.
//!
//! [`len`]: Relation::len
//! [`iter`]: Relation::iter
//! [`contains`]: Relation::contains
//! [`stage`]: Relation::stage
//! [`advance`]: Relation::advance
//!
//! ```
//! use raqlet_common::{Relation, Value};
//!
//! let mut edge = Relation::new(2);
//! edge.insert(vec![Value::Int(1), Value::Int(2)]).unwrap();
//! edge.insert(vec![Value::Int(1), Value::Int(3)]).unwrap();
//!
//! // Build a persistent index on the first column and probe it.
//! edge.ensure_index(&[0]);
//! assert_eq!(edge.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
//!
//! // Inserting extends the index in place — no rebuild.
//! edge.insert(vec![Value::Int(1), Value::Int(4)]).unwrap();
//! assert_eq!(edge.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 3);
//!
//! // Semi-naive delta lifecycle: stage derivations, then advance the round.
//! let mut tc = Relation::new(2);
//! tc.stage(vec![Value::Int(1), Value::Int(2)]).unwrap();
//! assert_eq!(tc.len(), 0); // staged tuples are not yet visible
//! assert_eq!(tc.advance(), 1);
//! assert_eq!(tc.len(), 1);
//! assert_eq!(tc.delta_len(), 1); // ... but now form the frontier
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{RaqletError, Result};
use crate::value::Value;

/// A single row: a fixed-arity vector of values.
pub type Tuple = Vec<Value>;

/// Row id within a relation's arena. Arena slots are never reused, so a
/// `RowId` stays valid (though its row may be tombstoned) for the relation's
/// lifetime.
type RowId = u32;

/// A posting list of row ids that stores the overwhelmingly common
/// zero/one-entry cases inline, avoiding one heap allocation per entry in
/// the dedup table and in selective indexes (which dominates clone cost).
#[derive(Debug, Clone)]
enum IdList {
    One(RowId),
    Many(Vec<RowId>),
}

impl IdList {
    fn push(&mut self, id: RowId) {
        match self {
            IdList::One(first) => *self = IdList::Many(vec![*first, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    fn remove(&mut self, id: RowId) -> bool {
        match self {
            // An empty `One` cannot be represented; the caller removes the
            // whole entry when this returns true.
            IdList::One(first) => *first == id,
            IdList::Many(v) => {
                v.retain(|&p| p != id);
                v.is_empty()
            }
        }
    }

    fn iter(&self) -> std::slice::Iter<'_, RowId> {
        match self {
            IdList::One(first) => std::slice::from_ref(first).iter(),
            IdList::Many(v) => v.iter(),
        }
    }
}

/// A persistent hash index over one or more columns, mapping the projected
/// key to the ids of matching rows. Single-column indexes avoid allocating a
/// key vector per entry.
#[derive(Debug, Clone)]
enum Index {
    /// Index over exactly one column: keyed by the column value directly.
    Single(usize, HashMap<Value, IdList>),
    /// Index over several columns: keyed by the projected value vector.
    Multi(Vec<usize>, HashMap<Vec<Value>, IdList>),
}

impl Index {
    fn new(columns: &[usize]) -> Index {
        if columns.len() == 1 {
            Index::Single(columns[0], HashMap::new())
        } else {
            Index::Multi(columns.to_vec(), HashMap::new())
        }
    }

    /// Add one row to the posting list for its key.
    fn add(&mut self, id: RowId, tuple: &[Value]) {
        match self {
            Index::Single(col, map) => match map.get_mut(&tuple[*col]) {
                Some(postings) => postings.push(id),
                None => {
                    map.insert(tuple[*col].clone(), IdList::One(id));
                }
            },
            Index::Multi(cols, map) => {
                // Look up by slice to avoid allocating a key vector unless
                // the key is new.
                let mut probe_key: Vec<Value> = Vec::with_capacity(cols.len());
                probe_key.extend(cols.iter().map(|&c| tuple[c].clone()));
                match map.get_mut(probe_key.as_slice()) {
                    Some(postings) => postings.push(id),
                    None => {
                        map.insert(probe_key, IdList::One(id));
                    }
                }
            }
        }
    }

    /// The posting list for `key` (projected values in column order).
    fn get(&self, key: &[Value]) -> Option<&IdList> {
        match self {
            Index::Single(_, map) => map.get(&key[0]),
            Index::Multi(_, map) => map.get(key),
        }
    }

    /// Remove one row id from the posting list for `tuple`'s key.
    fn remove(&mut self, id: RowId, tuple: &[Value]) {
        match self {
            Index::Single(col, map) => {
                if let Some(postings) = map.get_mut(&tuple[*col]) {
                    if postings.remove(id) {
                        map.remove(&tuple[*col]);
                    }
                }
            }
            Index::Multi(cols, map) => {
                let key: Vec<Value> = cols.iter().map(|&c| tuple[c].clone()).collect();
                if let Some(postings) = map.get_mut(key.as_slice()) {
                    if postings.remove(id) {
                        map.remove(key.as_slice());
                    }
                }
            }
        }
    }
}

/// A set of tuples of uniform arity, stored in an append-only row arena with
/// persistent hash indexes and semi-naive `full` / `delta` / `staged` state
/// (see the module docs for the lifecycle).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    /// The row arena. `None` marks a tombstone (row removed by a lattice
    /// merge). Slots are never reused.
    rows: Vec<Option<Tuple>>,
    /// Number of live (non-tombstoned) rows.
    live: usize,
    /// Deduplication table: tuple hash → candidate row ids.
    dedup: HashMap<u64, IdList>,
    /// The frontier: snapshots of the tuples published by the most recent
    /// [`Relation::advance`]. Stored by value so that mid-round lattice
    /// removals of dominated rows cannot mutate the frontier the current
    /// round is joining against.
    delta: Vec<Tuple>,
    /// The staging area: tuples derived this round, not yet published.
    staged: HashSet<Tuple>,
    /// Tuples published mid-round by [`Relation::lattice_insert`] that the
    /// next [`Relation::advance`] must still announce in the delta.
    delta_next: Vec<Tuple>,
    /// Persistent hash indexes, keyed by the column positions they cover.
    /// Extended in place on insert, never invalidated.
    indexes: HashMap<Vec<usize>, Index>,
    /// Number of from-scratch index constructions this relation has paid for
    /// (monotonic; cloning carries the count). [`Relation::ensure_index`]
    /// increments it only when it actually builds — warm, prepared
    /// executions can therefore pin "zero rebuilds" in tests.
    index_builds: usize,
}

fn tuple_hash(tuple: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    tuple.hash(&mut h);
    h.finish()
}

impl Relation {
    /// Create an empty relation with the given arity.
    pub fn new(arity: usize) -> Self {
        Relation { arity, ..Default::default() }
    }

    /// Create a relation from an iterator of tuples. All tuples must share
    /// the same arity.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live tuples in the full (published) set.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the full set holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The row id of `tuple` if it is live in the arena.
    fn find(&self, tuple: &[Value]) -> Option<RowId> {
        let ids = self.dedup.get(&tuple_hash(tuple))?;
        ids.iter().copied().find(|&id| self.rows[id as usize].as_deref() == Some(tuple))
    }

    /// Append a (known-new) tuple to the arena, the dedup table and every
    /// index, returning its row id.
    fn push_row(&mut self, tuple: Tuple) -> RowId {
        let id = self.rows.len() as RowId;
        for index in self.indexes.values_mut() {
            index.add(id, &tuple);
        }
        match self.dedup.entry(tuple_hash(&tuple)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(id),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(IdList::One(id));
            }
        }
        self.rows.push(Some(tuple));
        self.live += 1;
        id
    }

    /// Insert a tuple directly into the full set, extending every existing
    /// index. Returns `Ok(true)` if the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(RaqletError::Execution(format!(
                "arity mismatch: relation has arity {}, tuple has arity {}",
                self.arity,
                tuple.len()
            )));
        }
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without arity checking (hot path in the engines; callers have
    /// already validated arity via the schema).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "arity mismatch in insert_unchecked");
        if self.find(&tuple).is_some() {
            return false;
        }
        self.push_row(tuple);
        true
    }

    /// Stage a tuple for the current fixpoint round. The tuple becomes
    /// visible only after [`Relation::advance`]. Returns `Ok(true)` if the
    /// tuple is new (present neither in the full set nor already staged).
    pub fn stage(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(RaqletError::Execution(format!(
                "arity mismatch: relation has arity {}, tuple has arity {}",
                self.arity,
                tuple.len()
            )));
        }
        Ok(self.stage_unchecked(tuple))
    }

    /// [`Relation::stage`] without arity checking (engine hot path).
    pub fn stage_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "arity mismatch in stage_unchecked");
        if self.find(&tuple).is_some() {
            return false;
        }
        self.staged.insert(tuple)
    }

    /// Number of tuples currently staged (derived this round, unpublished).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Finish a fixpoint round: publish every staged tuple into the full set
    /// (extending all indexes in place), make the round's new rows (staged
    /// plus any mid-round [`Relation::lattice_insert`]s) the new delta, and
    /// clear the staging area. Returns the number of rows in the new delta.
    pub fn advance(&mut self) -> usize {
        let staged = std::mem::take(&mut self.staged);
        self.delta = std::mem::take(&mut self.delta_next);
        self.delta.reserve(staged.len());
        for tuple in staged {
            // `stage` checked membership at staging time, but a direct
            // `insert` may have landed in between; re-check.
            if self.find(&tuple).is_some() {
                continue;
            }
            self.push_row(tuple.clone());
            self.delta.push(tuple);
        }
        self.delta.len()
    }

    /// Insert under min/max-lattice semantics: the tuple is admitted only if
    /// its `col` value improves on every stored tuple of the same *group*
    /// (all other columns); dominated stored tuples are removed. Unlike
    /// [`Relation::stage`], an admitted tuple is published into the full set
    /// immediately (so the rest of the round observes the improvement), and
    /// is announced in the delta of the next [`Relation::advance`].
    pub fn lattice_insert(&mut self, tuple: Tuple, col: usize, minimize: bool) -> bool {
        debug_assert!(col < self.arity, "lattice column out of range");
        let group_cols: Vec<usize> = (0..self.arity).filter(|&i| i != col).collect();
        self.ensure_index(&group_cols);
        let key: Vec<Value> = group_cols.iter().map(|&c| tuple[c].clone()).collect();
        let mut dominated: Vec<RowId> = Vec::new();
        if let Some(postings) = self.indexes[group_cols.as_slice()].get(&key) {
            for &id in postings.iter() {
                let Some(old) = self.rows[id as usize].as_ref() else { continue };
                let better = if minimize { tuple[col] < old[col] } else { tuple[col] > old[col] };
                if better {
                    dominated.push(id);
                } else {
                    // An equal-or-better tuple is already stored.
                    return false;
                }
            }
        }
        for id in dominated {
            let old = self.rows[id as usize].clone();
            self.remove_row(id);
            if let Some(old) = old {
                self.delta_next.retain(|t| *t != old);
            }
        }
        self.push_row(tuple.clone());
        self.delta_next.push(tuple);
        true
    }

    /// The frontier tuples published by the most recent
    /// [`Relation::advance`].
    pub fn delta(&self) -> impl Iterator<Item = &Tuple> {
        self.delta.iter()
    }

    /// The frontier as a contiguous slice, so callers can partition it into
    /// chunks (parallel delta-driven rule evaluation splits this slice
    /// across worker threads).
    pub fn delta_rows(&self) -> &[Tuple] {
        &self.delta
    }

    /// Number of rows in the delta.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// True if the delta is empty.
    pub fn delta_is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Drop the delta and staging state (used when a fixpoint finishes so the
    /// relation leaves evaluation in a clean, full-set-only state).
    pub fn clear_rounds(&mut self) {
        self.delta.clear();
        self.staged.clear();
        self.delta_next.clear();
    }

    /// Seed the delta with the entire full set (the "round zero" frontier of
    /// a fixpoint that starts from already-loaded facts).
    pub fn seed_delta_from_full(&mut self) {
        self.delta = self.iter().cloned().collect();
    }

    /// True if the full set contains `tuple`.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.find(tuple).is_some()
    }

    /// Iterate over the full set in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().filter_map(|r| r.as_ref())
    }

    /// All tuples, sorted, for deterministic output and comparisons in tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set-union with another relation's full set, returning the number of
    /// new tuples.
    pub fn merge(&mut self, other: &Relation) -> Result<usize> {
        if other.arity != self.arity && !other.is_empty() {
            return Err(RaqletError::Execution(format!(
                "cannot merge relation of arity {} into relation of arity {}",
                other.arity, self.arity
            )));
        }
        let mut added = 0;
        for t in other.iter() {
            if self.insert_unchecked(t.clone()) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// The tuples of `self` not present in `other` (the semi-naive "delta"
    /// of the SQL working-table loop).
    pub fn difference(&self, other: &Relation) -> Relation {
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if !other.contains(t) {
                out.insert_unchecked(t.clone());
            }
        }
        out
    }

    /// Tombstone one arena row: drop it from the live set, the dedup table
    /// and every index posting list.
    fn remove_row(&mut self, id: RowId) {
        let Some(tuple) = self.rows[id as usize].take() else { return };
        self.live -= 1;
        let hash = tuple_hash(&tuple);
        if let Some(ids) = self.dedup.get_mut(&hash) {
            if ids.remove(id) {
                self.dedup.remove(&hash);
            }
        }
        for index in self.indexes.values_mut() {
            index.remove(id, &tuple);
        }
    }

    /// Remove a tuple from the full set, every index, and the staging area
    /// (used by lattice merges that replace a dominated tuple). The delta
    /// holds tuple snapshots, so the frontier the current round joins
    /// against is genuinely unaffected. Returns true if the tuple was
    /// present in the full set.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        self.staged.remove(tuple);
        match self.find(tuple) {
            Some(id) => {
                self.remove_row(id);
                true
            }
            None => false,
        }
    }

    /// Build a persistent hash index over the given columns if one does not
    /// already exist. Subsequent inserts extend it in place.
    pub fn ensure_index(&mut self, columns: &[usize]) {
        if self.indexes.contains_key(columns) {
            return;
        }
        self.index_builds += 1;
        let mut index = Index::new(columns);
        for (id, row) in self.rows.iter().enumerate() {
            if let Some(tuple) = row {
                index.add(id as RowId, tuple);
            }
        }
        self.indexes.insert(columns.to_vec(), index);
    }

    /// Probe a previously built index (see [`Relation::ensure_index`]).
    /// Returns `None` if no index exists over `columns`; otherwise an
    /// iterator over the live rows matching `key` (projected values in
    /// column order).
    pub fn probe_index<'a>(
        &'a self,
        columns: &[usize],
        key: &[Value],
    ) -> Option<impl Iterator<Item = &'a Tuple>> {
        let index = self.indexes.get(columns)?;
        let postings = index.get(key).map(|l| l.iter()).unwrap_or_else(|| [].iter());
        Some(postings.filter_map(|&id| self.rows[id as usize].as_ref()))
    }

    /// Build (or fetch) a hash index over the given columns and return the
    /// matching live tuples for `key`.
    pub fn probe(&mut self, columns: &[usize], key: &[Value]) -> Vec<&Tuple> {
        self.ensure_index(columns);
        self.probe_index(columns, key).expect("index exists after ensure_index").collect()
    }

    /// True if a persistent index over exactly these columns exists.
    pub fn has_index(&self, columns: &[usize]) -> bool {
        self.indexes.contains_key(columns)
    }

    /// Number of persistent indexes currently maintained.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of from-scratch index constructions this relation has paid for
    /// over its lifetime (a clone inherits its source's count). Extending an
    /// index on insert does not count; only [`Relation::ensure_index`] calls
    /// that actually build do.
    pub fn index_build_count(&self) -> usize {
        self.index_builds
    }

    /// Project the relation onto the given column positions (with
    /// deduplication, since relations are sets).
    pub fn project(&self, columns: &[usize]) -> Relation {
        let mut out = Relation::new(columns.len());
        for t in self.iter() {
            let projected: Tuple = columns.iter().map(|&c| t[c].clone()).collect();
            out.insert_unchecked(projected);
        }
        out
    }

    /// Keep only tuples satisfying `pred`.
    pub fn filter<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Relation {
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if pred(t) {
                out.insert_unchecked(t.clone());
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.live == other.live
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.sorted() {
            let row = t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\t");
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

/// A named collection of relations: the extensional database handed to the
/// engines, and also the container for computed IDB results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a relation under `name`.
    pub fn set(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Fetch a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable access to a relation by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Remove a relation, returning it if present (prepared executions drop
    /// the derived relations of a run while keeping the warm base set).
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Total from-scratch index constructions across all stored relations
    /// (see [`Relation::index_build_count`]).
    pub fn index_builds(&self) -> usize {
        self.relations.values().map(|r| r.index_build_count()).sum()
    }

    /// Fetch a relation by name, returning an execution error if absent.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| RaqletError::execution(format!("relation `{name}` not loaded")))
    }

    /// Mutable access, creating an empty relation of the given arity if the
    /// name is not yet present.
    pub fn get_or_create(&mut self, name: &str, arity: usize) -> &mut Relation {
        self.relations.entry(name.to_string()).or_insert_with(|| Relation::new(arity))
    }

    /// Insert a single fact into the named relation (creating it on demand).
    pub fn insert_fact(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        let arity = tuple.len();
        self.get_or_create(name, arity).insert(tuple)
    }

    /// Iterate over `(name, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Names of all stored relations, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])).unwrap());
        assert!(!r.insert(t(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1])).is_err());
        assert!(r.insert(t(&[1, 2, 3])).is_err());
    }

    #[test]
    fn merge_counts_new_tuples_only() {
        let mut a = Relation::from_tuples(2, vec![t(&[1, 2]), t(&[3, 4])]).unwrap();
        let b = Relation::from_tuples(2, vec![t(&[3, 4]), t(&[5, 6])]).unwrap();
        let added = a.merge(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_rejects_arity_mismatch_unless_empty() {
        let mut a = Relation::new(2);
        let empty = Relation::new(3);
        assert!(a.merge(&empty).is_ok());
        let b = Relation::from_tuples(3, vec![t(&[1, 2, 3])]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn difference_computes_semi_naive_delta() {
        let new = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let old = Relation::from_tuples(1, vec![t(&[2])]).unwrap();
        let delta = new.difference(&old);
        assert_eq!(delta.sorted(), vec![t(&[1]), t(&[3])]);
    }

    #[test]
    fn probe_returns_matching_tuples() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 11]), t(&[2, 20])]).unwrap();
        let hits = r.probe(&[0], &[Value::Int(1)]).len();
        assert_eq!(hits, 2);
        let misses = r.probe(&[0], &[Value::Int(99)]);
        assert!(misses.is_empty());
    }

    #[test]
    fn probe_index_is_extended_by_inserts_not_invalidated() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        assert_eq!(r.index_count(), 1);
        r.insert(t(&[1, 11])).unwrap();
        // The index is still there and already covers the new tuple.
        assert_eq!(r.index_count(), 1);
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
    }

    #[test]
    fn probe_index_without_ensure_returns_none() {
        let r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        assert!(r.probe_index(&[0], &[Value::Int(1)]).is_none());
    }

    #[test]
    fn multi_column_indexes_probe_by_projected_key() {
        let mut r =
            Relation::from_tuples(3, vec![t(&[1, 2, 30]), t(&[1, 2, 31]), t(&[1, 3, 32])]).unwrap();
        r.ensure_index(&[0, 1]);
        let hits = r.probe_index(&[0, 1], &[Value::Int(1), Value::Int(2)]).unwrap().count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn stage_and_advance_follow_the_delta_lifecycle() {
        let mut r = Relation::new(1);
        r.insert(t(&[1])).unwrap();
        // Staging an existing tuple is a no-op; staging a new one is not.
        assert!(!r.stage(t(&[1])).unwrap());
        assert!(r.stage(t(&[2])).unwrap());
        assert!(!r.stage(t(&[2])).unwrap());
        assert_eq!(r.staged_len(), 1);
        // Staged tuples are invisible until advance.
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&t(&[2])));
        assert_eq!(r.advance(), 1);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[2])));
        assert_eq!(r.delta().cloned().collect::<Vec<_>>(), vec![t(&[2])]);
        // The next advance with nothing staged empties the delta.
        assert_eq!(r.advance(), 0);
        assert!(r.delta_is_empty());
    }

    #[test]
    fn advance_extends_existing_indexes() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        r.ensure_index(&[0]);
        r.stage(t(&[1, 11])).unwrap();
        r.advance();
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 2);
    }

    #[test]
    fn advance_skips_tuples_inserted_directly_in_between() {
        let mut r = Relation::new(1);
        r.stage(t(&[7])).unwrap();
        r.insert(t(&[7])).unwrap();
        // The tuple is already published; the delta must not re-announce it.
        assert_eq!(r.advance(), 0);
        assert!(r.delta_is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_drops_tuple_from_full_and_indexes() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 11])]).unwrap();
        r.ensure_index(&[0]);
        assert!(r.remove(&t(&[1, 10])));
        assert!(!r.remove(&t(&[1, 10])));
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 1);
        assert!(!r.contains(&t(&[1, 10])));
    }

    #[test]
    fn lattice_insert_keeps_only_the_best_tuple_per_group() {
        let mut r = Relation::new(3);
        assert!(r.lattice_insert(t(&[1, 2, 9]), 2, true));
        assert!(r.lattice_insert(t(&[1, 2, 5]), 2, true)); // improves
        assert!(!r.lattice_insert(t(&[1, 2, 7]), 2, true)); // dominated
        assert!(r.lattice_insert(t(&[3, 4, 7]), 2, true)); // different group
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2, 5])));
        assert!(!r.contains(&t(&[1, 2, 9])));
        // Both surviving tuples (but not the replaced one) form the delta.
        assert_eq!(r.advance(), 2);
        let mut delta: Vec<Tuple> = r.delta().cloned().collect();
        delta.sort();
        assert_eq!(delta, vec![t(&[1, 2, 5]), t(&[3, 4, 7])]);
    }

    #[test]
    fn lattice_removals_do_not_mutate_the_current_delta() {
        let mut r = Relation::new(3);
        r.lattice_insert(t(&[1, 2, 9]), 2, true);
        r.advance();
        assert_eq!(r.delta().cloned().collect::<Vec<_>>(), vec![t(&[1, 2, 9])]);
        // Mid-round improvement replaces the stored tuple, but the frontier
        // the current round is joining against must still see the snapshot.
        assert!(r.lattice_insert(t(&[1, 2, 5]), 2, true));
        assert!(!r.contains(&t(&[1, 2, 9])));
        assert_eq!(r.delta().cloned().collect::<Vec<_>>(), vec![t(&[1, 2, 9])]);
        // The next round announces only the improvement.
        assert_eq!(r.advance(), 1);
        assert_eq!(r.delta().cloned().collect::<Vec<_>>(), vec![t(&[1, 2, 5])]);
    }

    #[test]
    fn lattice_insert_max_keeps_largest() {
        let mut r = Relation::new(2);
        assert!(r.lattice_insert(t(&[1, 5]), 1, false));
        assert!(r.lattice_insert(t(&[1, 9]), 1, false));
        assert!(!r.lattice_insert(t(&[1, 2]), 1, false));
        assert_eq!(r.sorted(), vec![t(&[1, 9])]);
    }

    #[test]
    fn seed_delta_from_full_copies_every_tuple() {
        let mut r = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]).unwrap();
        r.seed_delta_from_full();
        assert_eq!(r.delta_len(), 2);
        r.clear_rounds();
        assert!(r.delta_is_empty());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn project_deduplicates() {
        let r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 20])]).unwrap();
        let p = r.project(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn filter_keeps_matching_tuples() {
        let r = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let f = r.filter(|row| row[0].as_int().unwrap() >= 2);
        assert_eq!(f.sorted(), vec![t(&[2]), t(&[3])]);
    }

    #[test]
    fn relations_compare_as_sets() {
        let a = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]).unwrap();
        let b = Relation::from_tuples(1, vec![t(&[2]), t(&[1])]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn staged_tuples_do_not_affect_equality() {
        let mut a = Relation::from_tuples(1, vec![t(&[1])]).unwrap();
        let b = Relation::from_tuples(1, vec![t(&[1])]).unwrap();
        a.stage(t(&[2])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_sorted_and_tab_separated() {
        let r = Relation::from_tuples(2, vec![t(&[2, 20]), t(&[1, 10])]).unwrap();
        assert_eq!(r.to_string(), "1\t10\n2\t20\n");
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let r = Relation::from_tuples(2, vec![t(&[2, 20]), t(&[1, 10])]).unwrap();
        let rows: Vec<&Tuple> = r.iter().collect();
        assert_eq!(rows, vec![&t(&[2, 20]), &t(&[1, 10])]);
    }

    #[test]
    fn database_basic_operations() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert_fact("edge", t(&[1, 2])).unwrap();
        db.insert_fact("edge", t(&[2, 3])).unwrap();
        assert_eq!(db.get("edge").unwrap().len(), 2);
        assert_eq!(db.names(), vec!["edge".to_string()]);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.require("missing").is_err());
    }

    #[test]
    fn get_or_create_reuses_existing_relation() {
        let mut db = Database::new();
        db.insert_fact("r", t(&[1])).unwrap();
        let r = db.get_or_create("r", 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn get_mut_allows_in_place_index_builds() {
        let mut db = Database::new();
        db.insert_fact("r", t(&[1, 2])).unwrap();
        db.get_mut("r").unwrap().ensure_index(&[0]);
        assert_eq!(db.get("r").unwrap().probe_index(&[0], &[Value::Int(1)]).unwrap().count(), 1);
    }
}
