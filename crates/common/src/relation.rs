//! In-memory relations and databases.
//!
//! These are the storage substrate shared by the deductive (Datalog) and
//! relational (SQL) execution engines. A [`Relation`] is a *set* of tuples —
//! all of Raqlet's backends use set semantics, matching the paper's use of
//! `RETURN DISTINCT` / `SELECT DISTINCT` — with optional hash indexes built
//! on demand for join columns.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::{RaqletError, Result};
use crate::value::Value;

/// A single row: a fixed-arity vector of values.
pub type Tuple = Vec<Value>;

/// A set of tuples of uniform arity, with lazily built hash indexes.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Tuple>,
    /// Hash indexes keyed by the column positions they cover. Values map the
    /// projected key to the matching tuples. Indexes are invalidated (cleared)
    /// on insertion.
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<Tuple>>>,
}

impl Relation {
    /// Create an empty relation with the given arity.
    pub fn new(arity: usize) -> Self {
        Relation { arity, tuples: HashSet::new(), indexes: HashMap::new() }
    }

    /// Create a relation from an iterator of tuples. All tuples must share
    /// the same arity.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Arity (number of columns).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(RaqletError::Execution(format!(
                "arity mismatch: relation has arity {}, tuple has arity {}",
                self.arity,
                tuple.len()
            )));
        }
        let inserted = self.tuples.insert(tuple);
        if inserted {
            self.indexes.clear();
        }
        Ok(inserted)
    }

    /// Insert without arity checking (hot path in the engines; callers have
    /// already validated arity via the schema).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.len(), self.arity, "arity mismatch in insert_unchecked");
        let inserted = self.tuples.insert(tuple);
        if inserted {
            self.indexes.clear();
        }
        inserted
    }

    /// True if the relation contains `tuple`.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted, for deterministic output and comparisons in tests.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set-union with another relation, returning the number of new tuples.
    pub fn merge(&mut self, other: &Relation) -> Result<usize> {
        if other.arity != self.arity && !other.is_empty() {
            return Err(RaqletError::Execution(format!(
                "cannot merge relation of arity {} into relation of arity {}",
                other.arity, self.arity
            )));
        }
        let before = self.len();
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
        if self.len() != before {
            self.indexes.clear();
        }
        Ok(self.len() - before)
    }

    /// The tuples of `other` not present in `self` (the semi-naive "delta").
    pub fn difference(&self, other: &Relation) -> Relation {
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if !other.contains(t) {
                out.tuples.insert(t.clone());
            }
        }
        out
    }

    /// Build (or fetch) a hash index over the given columns and return the
    /// matching tuples for `key`.
    pub fn probe(&mut self, columns: &[usize], key: &[Value]) -> &[Tuple] {
        static EMPTY: Vec<Tuple> = Vec::new();
        let cols = columns.to_vec();
        if let Entry::Vacant(e) = self.indexes.entry(cols.clone()) {
            let mut index: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
            for t in &self.tuples {
                let k: Vec<Value> = columns.iter().map(|&c| t[c].clone()).collect();
                index.entry(k).or_default().push(t.clone());
            }
            e.insert(index);
        }
        self.indexes.get(&cols).and_then(|idx| idx.get(key)).map(|v| v.as_slice()).unwrap_or(&EMPTY)
    }

    /// Project the relation onto the given column positions (with
    /// deduplication, since relations are sets).
    pub fn project(&self, columns: &[usize]) -> Relation {
        let mut out = Relation::new(columns.len());
        for t in self.iter() {
            let projected: Tuple = columns.iter().map(|&c| t[c].clone()).collect();
            out.tuples.insert(projected);
        }
        out
    }

    /// Keep only tuples satisfying `pred`.
    pub fn filter<F: Fn(&Tuple) -> bool>(&self, pred: F) -> Relation {
        let mut out = Relation::new(self.arity);
        for t in self.iter() {
            if pred(t) {
                out.tuples.insert(t.clone());
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.sorted() {
            let row = t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\t");
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

/// A named collection of relations: the extensional database handed to the
/// engines, and also the container for computed IDB results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a relation under `name`.
    pub fn set(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Fetch a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Fetch a relation by name, returning an execution error if absent.
    pub fn require(&self, name: &str) -> Result<&Relation> {
        self.get(name)
            .ok_or_else(|| RaqletError::execution(format!("relation `{name}` not loaded")))
    }

    /// Mutable access, creating an empty relation of the given arity if the
    /// name is not yet present.
    pub fn get_or_create(&mut self, name: &str, arity: usize) -> &mut Relation {
        self.relations.entry(name.to_string()).or_insert_with(|| Relation::new(arity))
    }

    /// Insert a single fact into the named relation (creating it on demand).
    pub fn insert_fact(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        let arity = tuple.len();
        self.get_or_create(name, arity).insert(tuple)
    }

    /// Iterate over `(name, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Names of all stored relations, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])).unwrap());
        assert!(!r.insert(t(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1])).is_err());
        assert!(r.insert(t(&[1, 2, 3])).is_err());
    }

    #[test]
    fn merge_counts_new_tuples_only() {
        let mut a = Relation::from_tuples(2, vec![t(&[1, 2]), t(&[3, 4])]).unwrap();
        let b = Relation::from_tuples(2, vec![t(&[3, 4]), t(&[5, 6])]).unwrap();
        let added = a.merge(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn merge_rejects_arity_mismatch_unless_empty() {
        let mut a = Relation::new(2);
        let empty = Relation::new(3);
        assert!(a.merge(&empty).is_ok());
        let b = Relation::from_tuples(3, vec![t(&[1, 2, 3])]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn difference_computes_semi_naive_delta() {
        let new = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let old = Relation::from_tuples(1, vec![t(&[2])]).unwrap();
        let delta = new.difference(&old);
        assert_eq!(delta.sorted(), vec![t(&[1]), t(&[3])]);
    }

    #[test]
    fn probe_returns_matching_tuples() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 11]), t(&[2, 20])]).unwrap();
        let hits = r.probe(&[0], &[Value::Int(1)]).to_vec();
        assert_eq!(hits.len(), 2);
        let misses = r.probe(&[0], &[Value::Int(99)]);
        assert!(misses.is_empty());
    }

    #[test]
    fn probe_index_is_invalidated_by_inserts() {
        let mut r = Relation::from_tuples(2, vec![t(&[1, 10])]).unwrap();
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 1);
        r.insert(t(&[1, 11])).unwrap();
        assert_eq!(r.probe(&[0], &[Value::Int(1)]).len(), 2);
    }

    #[test]
    fn project_deduplicates() {
        let r = Relation::from_tuples(2, vec![t(&[1, 10]), t(&[1, 20])]).unwrap();
        let p = r.project(&[0]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn filter_keeps_matching_tuples() {
        let r = Relation::from_tuples(1, vec![t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let f = r.filter(|row| row[0].as_int().unwrap() >= 2);
        assert_eq!(f.sorted(), vec![t(&[2]), t(&[3])]);
    }

    #[test]
    fn relations_compare_as_sets() {
        let a = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]).unwrap();
        let b = Relation::from_tuples(1, vec![t(&[2]), t(&[1])]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_sorted_and_tab_separated() {
        let r = Relation::from_tuples(2, vec![t(&[2, 20]), t(&[1, 10])]).unwrap();
        assert_eq!(r.to_string(), "1\t10\n2\t20\n");
    }

    #[test]
    fn database_basic_operations() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert_fact("edge", t(&[1, 2])).unwrap();
        db.insert_fact("edge", t(&[2, 3])).unwrap();
        assert_eq!(db.get("edge").unwrap().len(), 2);
        assert_eq!(db.names(), vec!["edge".to_string()]);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.require("missing").is_err());
    }

    #[test]
    fn get_or_create_reuses_existing_relation() {
        let mut db = Database::new();
        db.insert_fact("r", t(&[1])).unwrap();
        let r = db.get_or_create("r", 1);
        assert_eq!(r.len(), 1);
    }
}
