//! Small newtype identifiers used across the IRs and engines.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a node in a property graph store.
    NodeId,
    "n"
);
define_id!(
    /// Identifies an edge in a property graph store.
    EdgeId,
    "e"
);
define_id!(
    /// Identifies a rule inside a DLIR program.
    RuleId,
    "r"
);
define_id!(
    /// Identifies a stratum produced by stratification.
    StratumId,
    "s"
);

/// A monotonically increasing generator for fresh identifiers, used by the
/// compiler to invent variable names (e.g. the `x1` edge variable in Figure 3)
/// without colliding with user-written names.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Create a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the next integer.
    pub fn next_id(&mut self) -> u32 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Return a fresh name with the given prefix, e.g. `x1`, `x2`, ...
    /// The first generated name is `<prefix>1` to match the paper's figures.
    pub fn fresh(&mut self, prefix: &str) -> String {
        let v = self.next_id() + 1;
        format!("{prefix}{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(0).to_string(), "e0");
        assert_eq!(RuleId(7).to_string(), "r7");
        assert_eq!(StratumId(1).to_string(), "s1");
    }

    #[test]
    fn ids_convert_from_usize() {
        let id: NodeId = 5usize.into();
        assert_eq!(id, NodeId(5));
        assert_eq!(id.index(), 5);
    }

    #[test]
    fn idgen_produces_sequential_fresh_names() {
        let mut g = IdGen::new();
        assert_eq!(g.fresh("x"), "x1");
        assert_eq!(g.fresh("x"), "x2");
        assert_eq!(g.fresh("v"), "v3");
    }

    #[test]
    fn idgen_next_id_starts_at_zero() {
        let mut g = IdGen::new();
        assert_eq!(g.next_id(), 0);
        assert_eq!(g.next_id(), 1);
    }
}
