//! Common error type shared by all Raqlet crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = RaqletError> = std::result::Result<T, E>;

/// Errors produced anywhere in the Raqlet pipeline.
///
/// The variants are organised by pipeline stage so that callers can surface
/// the right kind of diagnostic (parse error vs. semantic error vs. backend
/// limitation) without needing stage-specific error types everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaqletError {
    /// Lexing failed (unexpected character, unterminated string, ...).
    Lex {
        /// What the lexer could not make sense of.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        column: u32,
    },
    /// Parsing failed (unexpected token, missing clause, ...).
    Parse {
        /// What the parser expected or found instead.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        column: u32,
    },
    /// A name (label, property, relation, variable) could not be resolved
    /// against the active schema or rule set.
    UnknownName {
        /// The syntactic category of the name (e.g. "label", "property").
        kind: &'static str,
        /// The unresolved name itself.
        name: String,
    },
    /// The query is well-formed but uses a feature Raqlet does not support.
    Unsupported(String),
    /// A semantic check failed during lowering (type mismatch, unbound
    /// variable, unsafe rule, ...).
    Semantic(String),
    /// Static analysis rejected the query for the chosen backend
    /// (e.g. mutual recursion targeted at a recursive-CTE backend).
    BackendRejected {
        /// The backend that cannot run the query.
        backend: String,
        /// Why the capability check failed.
        reason: String,
    },
    /// An optimization pass detected an internal inconsistency.
    Optimization(String),
    /// Execution of a query against one of the built-in engines failed.
    Execution(String),
    /// Schema violation (duplicate relation, arity mismatch, ...).
    Schema(String),
    /// Catch-all for internal invariant violations. Seeing this is a bug.
    Internal(String),
}

impl RaqletError {
    /// Construct a parse error with position information.
    pub fn parse(message: impl Into<String>, line: u32, column: u32) -> Self {
        RaqletError::Parse { message: message.into(), line, column }
    }

    /// Construct a lex error with position information.
    pub fn lex(message: impl Into<String>, line: u32, column: u32) -> Self {
        RaqletError::Lex { message: message.into(), line, column }
    }

    /// Construct a semantic error.
    pub fn semantic(message: impl Into<String>) -> Self {
        RaqletError::Semantic(message.into())
    }

    /// Construct an unsupported-feature error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        RaqletError::Unsupported(message.into())
    }

    /// Construct an execution error.
    pub fn execution(message: impl Into<String>) -> Self {
        RaqletError::Execution(message.into())
    }

    /// Construct an internal error (invariant violation).
    pub fn internal(message: impl Into<String>) -> Self {
        RaqletError::Internal(message.into())
    }

    /// Construct a schema error.
    pub fn schema(message: impl Into<String>) -> Self {
        RaqletError::Schema(message.into())
    }

    /// True if this error originated in the frontend (lexer or parser).
    pub fn is_syntax_error(&self) -> bool {
        matches!(self, RaqletError::Lex { .. } | RaqletError::Parse { .. })
    }
}

impl fmt::Display for RaqletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaqletError::Lex { message, line, column } => {
                write!(f, "lex error at {line}:{column}: {message}")
            }
            RaqletError::Parse { message, line, column } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            RaqletError::UnknownName { kind, name } => write!(f, "unknown {kind}: `{name}`"),
            RaqletError::Unsupported(m) => write!(f, "unsupported feature: {m}"),
            RaqletError::Semantic(m) => write!(f, "semantic error: {m}"),
            RaqletError::BackendRejected { backend, reason } => {
                write!(f, "query rejected for backend `{backend}`: {reason}")
            }
            RaqletError::Optimization(m) => write!(f, "optimization error: {m}"),
            RaqletError::Execution(m) => write!(f, "execution error: {m}"),
            RaqletError::Schema(m) => write!(f, "schema error: {m}"),
            RaqletError::Internal(m) => write!(f, "internal error (please report): {m}"),
        }
    }
}

impl std::error::Error for RaqletError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_for_parse_errors() {
        let e = RaqletError::parse("expected RETURN", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("expected RETURN"), "{s}");
    }

    #[test]
    fn display_includes_position_for_lex_errors() {
        let e = RaqletError::lex("unterminated string", 1, 7);
        assert_eq!(e.to_string(), "lex error at 1:7: unterminated string");
    }

    #[test]
    fn is_syntax_error_distinguishes_frontend_errors() {
        assert!(RaqletError::parse("x", 1, 1).is_syntax_error());
        assert!(RaqletError::lex("x", 1, 1).is_syntax_error());
        assert!(!RaqletError::semantic("x").is_syntax_error());
        assert!(!RaqletError::execution("x").is_syntax_error());
    }

    #[test]
    fn unknown_name_display() {
        let e = RaqletError::UnknownName { kind: "label", name: "Persn".into() };
        assert_eq!(e.to_string(), "unknown label: `Persn`");
    }

    #[test]
    fn backend_rejected_display_names_backend() {
        let e = RaqletError::BackendRejected {
            backend: "recursive-sql".into(),
            reason: "mutual recursion is not supported".into(),
        };
        assert!(e.to_string().contains("recursive-sql"));
        assert!(e.to_string().contains("mutual recursion"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RaqletError::semantic("a"), RaqletError::semantic("a"));
        assert_ne!(RaqletError::semantic("a"), RaqletError::semantic("b"));
    }
}
