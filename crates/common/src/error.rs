//! Common error type shared by all Raqlet crates.

use std::fmt;
use std::time::Duration;

use crate::stats::EvalStats;

/// Convenience alias used across the workspace.
pub type Result<T, E = RaqletError> = std::result::Result<T, E>;

/// Errors produced anywhere in the Raqlet pipeline.
///
/// The variants are organised by pipeline stage so that callers can surface
/// the right kind of diagnostic (parse error vs. semantic error vs. backend
/// limitation) without needing stage-specific error types everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaqletError {
    /// Lexing failed (unexpected character, unterminated string, ...).
    Lex {
        /// What the lexer could not make sense of.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        column: u32,
    },
    /// Parsing failed (unexpected token, missing clause, ...).
    Parse {
        /// What the parser expected or found instead.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        column: u32,
    },
    /// A name (label, property, relation, variable) could not be resolved
    /// against the active schema or rule set.
    UnknownName {
        /// The syntactic category of the name (e.g. "label", "property").
        kind: &'static str,
        /// The unresolved name itself.
        name: String,
    },
    /// The query is well-formed but uses a feature Raqlet does not support.
    Unsupported(String),
    /// A semantic check failed during lowering (type mismatch, unbound
    /// variable, unsafe rule, ...).
    Semantic(String),
    /// Static analysis rejected the query for the chosen backend
    /// (e.g. mutual recursion targeted at a recursive-CTE backend).
    BackendRejected {
        /// The backend that cannot run the query.
        backend: String,
        /// Why the capability check failed.
        reason: String,
    },
    /// An optimization pass detected an internal inconsistency.
    Optimization(String),
    /// Execution of a query against one of the built-in engines failed.
    Execution(String),
    /// Schema violation (duplicate relation, arity mismatch, ...).
    Schema(String),
    /// A filesystem operation performed by the durability layer failed.
    ///
    /// Carries structured context instead of a `std::io::Error` so the error
    /// stays `Clone + Eq` like every other variant; the OS message (or the
    /// injected-fault description, under crash testing) is preserved in
    /// `message`.
    Io {
        /// The operation that failed (`"create"`, `"write"`, `"fsync"`,
        /// `"rename"`, `"truncate"`, `"read"`, `"open"`, `"remove"`).
        op: &'static str,
        /// The file (or directory) the operation targeted.
        path: String,
        /// The underlying OS error or injected-fault description.
        message: String,
    },
    /// On-disk data failed validation during snapshot load or WAL recovery:
    /// bad magic, version/checksum mismatch, truncated section, impossible
    /// length, or a decoded value that violates a format invariant.
    Corrupt {
        /// The file in which the corruption was detected.
        path: String,
        /// The section being decoded when the check failed (`"header"`,
        /// `"dict"`, `"relation \`edge\`"`, `"frame"`).
        section: String,
        /// Byte offset (from the start of the file) at which the check
        /// failed.
        offset: u64,
        /// What the check expected versus what it found.
        message: String,
    },
    /// The query guard's wall-clock deadline expired before evaluation
    /// finished. Carries the counters accumulated up to the trip point.
    Timeout {
        /// Wall-clock time elapsed when the trip was observed, in
        /// milliseconds (rounded up so a sub-millisecond trip reads as 1).
        elapsed_ms: u64,
        /// The requested deadline, in milliseconds.
        limit_ms: u64,
        /// Partial evaluation counters at the trip point (boxed to keep the
        /// common error variants pointer-sized).
        stats: Box<EvalStats>,
    },
    /// A query-guard resource budget (derived tuples or heap bytes) was
    /// exhausted. Carries the counters accumulated up to the trip point.
    BudgetExceeded {
        /// Which budget tripped: `"tuples"` or `"heap_bytes"`.
        resource: &'static str,
        /// The measured consumption at the trip point.
        used: u64,
        /// The armed budget.
        limit: u64,
        /// Partial evaluation counters at the trip point.
        stats: Box<EvalStats>,
    },
    /// The query's cooperative cancellation token was tripped. Carries the
    /// counters accumulated up to the trip point.
    Cancelled {
        /// Partial evaluation counters at the trip point.
        stats: Box<EvalStats>,
    },
    /// Catch-all for internal invariant violations. Seeing this is a bug.
    Internal(String),
}

impl RaqletError {
    /// Construct a parse error with position information.
    pub fn parse(message: impl Into<String>, line: u32, column: u32) -> Self {
        RaqletError::Parse { message: message.into(), line, column }
    }

    /// Construct a lex error with position information.
    pub fn lex(message: impl Into<String>, line: u32, column: u32) -> Self {
        RaqletError::Lex { message: message.into(), line, column }
    }

    /// Construct a semantic error.
    pub fn semantic(message: impl Into<String>) -> Self {
        RaqletError::Semantic(message.into())
    }

    /// Construct an unsupported-feature error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        RaqletError::Unsupported(message.into())
    }

    /// Construct an execution error.
    pub fn execution(message: impl Into<String>) -> Self {
        RaqletError::Execution(message.into())
    }

    /// Construct an internal error (invariant violation).
    pub fn internal(message: impl Into<String>) -> Self {
        RaqletError::Internal(message.into())
    }

    /// Construct a schema error.
    pub fn schema(message: impl Into<String>) -> Self {
        RaqletError::Schema(message.into())
    }

    /// Construct an I/O error with operation and path context.
    pub fn io(op: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        RaqletError::Io { op, path: path.into(), message: message.into() }
    }

    /// Construct a corruption error with file, section and offset context.
    pub fn corrupt(
        path: impl Into<String>,
        section: impl Into<String>,
        offset: u64,
        message: impl Into<String>,
    ) -> Self {
        RaqletError::Corrupt {
            path: path.into(),
            section: section.into(),
            offset,
            message: message.into(),
        }
    }

    /// True if this error came from the durability layer — either the
    /// filesystem failed ([`Io`](Self::Io)) or on-disk data failed
    /// validation ([`Corrupt`](Self::Corrupt)).
    pub fn is_storage_error(&self) -> bool {
        matches!(self, RaqletError::Io { .. } | RaqletError::Corrupt { .. })
    }

    /// Construct a timeout error from elapsed/limit durations (stats empty;
    /// engines attach them via [`with_partial_stats`](Self::with_partial_stats)).
    pub fn timeout(elapsed: Duration, limit: Duration) -> Self {
        RaqletError::Timeout {
            elapsed_ms: (elapsed.as_millis() as u64).max(1),
            limit_ms: limit.as_millis() as u64,
            stats: Box::default(),
        }
    }

    /// Construct a budget-exceeded error (stats empty; engines attach them
    /// via [`with_partial_stats`](Self::with_partial_stats)).
    pub fn budget_exceeded(resource: &'static str, used: u64, limit: u64) -> Self {
        RaqletError::BudgetExceeded { resource, used, limit, stats: Box::default() }
    }

    /// Construct a cancellation error (stats empty; engines attach them via
    /// [`with_partial_stats`](Self::with_partial_stats)).
    pub fn cancelled() -> Self {
        RaqletError::Cancelled { stats: Box::default() }
    }

    /// True if this error originated in the frontend (lexer or parser).
    pub fn is_syntax_error(&self) -> bool {
        matches!(self, RaqletError::Lex { .. } | RaqletError::Parse { .. })
    }

    /// True if this is a query-guard trip ([`Timeout`](Self::Timeout),
    /// [`BudgetExceeded`](Self::BudgetExceeded), or
    /// [`Cancelled`](Self::Cancelled)): the query exceeded an armed limit
    /// rather than being invalid, so retrying with a larger allowance is
    /// meaningful.
    pub fn is_guard_trip(&self) -> bool {
        matches!(
            self,
            RaqletError::Timeout { .. }
                | RaqletError::BudgetExceeded { .. }
                | RaqletError::Cancelled { .. }
        )
    }

    /// The partial evaluation counters carried by a guard-trip error.
    pub fn partial_stats(&self) -> Option<&EvalStats> {
        match self {
            RaqletError::Timeout { stats, .. }
            | RaqletError::BudgetExceeded { stats, .. }
            | RaqletError::Cancelled { stats, .. } => Some(stats),
            _ => None,
        }
    }

    /// Attach partial evaluation counters to a guard-trip error.
    ///
    /// Checkpoints deep in the engines cannot see the run's counters, so
    /// they raise trips with empty stats; each engine's entry point calls
    /// this on the way out. Non-trip errors pass through unchanged.
    pub fn with_partial_stats(mut self, partial: &EvalStats) -> Self {
        if let RaqletError::Timeout { stats, .. }
        | RaqletError::BudgetExceeded { stats, .. }
        | RaqletError::Cancelled { stats } = &mut self
        {
            **stats = partial.clone();
        }
        self
    }
}

impl fmt::Display for RaqletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaqletError::Lex { message, line, column } => {
                write!(f, "lex error at {line}:{column}: {message}")
            }
            RaqletError::Parse { message, line, column } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            RaqletError::UnknownName { kind, name } => write!(f, "unknown {kind}: `{name}`"),
            RaqletError::Unsupported(m) => write!(f, "unsupported feature: {m}"),
            RaqletError::Semantic(m) => write!(f, "semantic error: {m}"),
            RaqletError::BackendRejected { backend, reason } => {
                write!(f, "query rejected for backend `{backend}`: {reason}")
            }
            RaqletError::Optimization(m) => write!(f, "optimization error: {m}"),
            RaqletError::Execution(m) => write!(f, "execution error: {m}"),
            RaqletError::Schema(m) => write!(f, "schema error: {m}"),
            RaqletError::Io { op, path, message } => {
                write!(f, "i/o error: {op} on `{path}`: {message}")
            }
            RaqletError::Corrupt { path, section, offset, message } => {
                write!(f, "corrupt store file `{path}`: {section} at byte {offset}: {message}")
            }
            RaqletError::Timeout { elapsed_ms, limit_ms, .. } => {
                write!(f, "query timed out after {elapsed_ms}ms (deadline {limit_ms}ms)")
            }
            RaqletError::BudgetExceeded { resource, used, limit, .. } => {
                write!(f, "query exceeded its {resource} budget: used {used} of {limit}")
            }
            RaqletError::Cancelled { .. } => write!(f, "query cancelled"),
            RaqletError::Internal(m) => write!(f, "internal error (please report): {m}"),
        }
    }
}

impl std::error::Error for RaqletError {}

/// Extract a human-readable message from a panic payload (the `Box<dyn Any>`
/// returned by `std::thread::JoinHandle::join` or `std::panic::catch_unwind`).
///
/// Used by the engines to convert a caught worker panic into a structured
/// [`RaqletError::Internal`] instead of unwinding through scoped threads.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_for_parse_errors() {
        let e = RaqletError::parse("expected RETURN", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("expected RETURN"), "{s}");
    }

    #[test]
    fn display_includes_position_for_lex_errors() {
        let e = RaqletError::lex("unterminated string", 1, 7);
        assert_eq!(e.to_string(), "lex error at 1:7: unterminated string");
    }

    #[test]
    fn is_syntax_error_distinguishes_frontend_errors() {
        assert!(RaqletError::parse("x", 1, 1).is_syntax_error());
        assert!(RaqletError::lex("x", 1, 1).is_syntax_error());
        assert!(!RaqletError::semantic("x").is_syntax_error());
        assert!(!RaqletError::execution("x").is_syntax_error());
    }

    #[test]
    fn unknown_name_display() {
        let e = RaqletError::UnknownName { kind: "label", name: "Persn".into() };
        assert_eq!(e.to_string(), "unknown label: `Persn`");
    }

    #[test]
    fn backend_rejected_display_names_backend() {
        let e = RaqletError::BackendRejected {
            backend: "recursive-sql".into(),
            reason: "mutual recursion is not supported".into(),
        };
        assert!(e.to_string().contains("recursive-sql"));
        assert!(e.to_string().contains("mutual recursion"));
    }

    #[test]
    fn io_and_corrupt_errors_carry_full_source_context() {
        let io = RaqletError::io("fsync", "/data/wal.raq", "No space left on device");
        assert!(io.is_storage_error());
        assert_eq!(io.to_string(), "i/o error: fsync on `/data/wal.raq`: No space left on device");

        let corrupt = RaqletError::corrupt(
            "/data/snapshot.raq",
            "relation `edge`",
            4096,
            "checksum mismatch",
        );
        assert!(corrupt.is_storage_error());
        let s = corrupt.to_string();
        assert!(s.contains("/data/snapshot.raq"), "{s}");
        assert!(s.contains("relation `edge`"), "{s}");
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains("checksum mismatch"), "{s}");

        assert!(!RaqletError::execution("x").is_storage_error());
        assert!(!io.is_guard_trip());
        assert!(!corrupt.is_syntax_error());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RaqletError::semantic("a"), RaqletError::semantic("a"));
        assert_ne!(RaqletError::semantic("a"), RaqletError::semantic("b"));
    }

    #[test]
    fn guard_trips_are_recognised_and_carry_stats() {
        let partial = EvalStats { iterations: 7, tuples_derived: 1234, ..EvalStats::default() };

        let timeout = RaqletError::timeout(Duration::from_millis(120), Duration::from_millis(100))
            .with_partial_stats(&partial);
        assert!(timeout.is_guard_trip());
        assert_eq!(timeout.partial_stats().unwrap().iterations, 7);
        assert!(timeout.to_string().contains("120ms"), "{timeout}");
        assert!(timeout.to_string().contains("100ms"), "{timeout}");

        let budget = RaqletError::budget_exceeded("tuples", 1500, 1000);
        assert!(budget.is_guard_trip());
        assert!(budget.to_string().contains("1500"), "{budget}");

        let cancelled = RaqletError::cancelled().with_partial_stats(&partial);
        assert!(cancelled.is_guard_trip());
        assert_eq!(cancelled.partial_stats().unwrap().tuples_derived, 1234);

        assert!(!RaqletError::execution("x").is_guard_trip());
        assert_eq!(RaqletError::execution("x").partial_stats(), None);
    }

    #[test]
    fn with_partial_stats_is_a_no_op_on_other_variants() {
        let partial = EvalStats { iterations: 3, ..EvalStats::default() };
        let e = RaqletError::semantic("nope").with_partial_stats(&partial);
        assert_eq!(e, RaqletError::semantic("nope"));
    }

    #[test]
    fn sub_millisecond_timeouts_report_at_least_one_ms() {
        let e = RaqletError::timeout(Duration::from_micros(50), Duration::ZERO);
        match e {
            RaqletError::Timeout { elapsed_ms, .. } => assert_eq!(elapsed_ms, 1),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let static_payload = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(static_payload.as_ref()), "static str");
        let n = 42;
        let string_payload = std::panic::catch_unwind(move || panic!("formatted {n}")).unwrap_err();
        assert_eq!(panic_message(string_payload.as_ref()), "formatted 42");
        let opaque = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(opaque.as_ref()), "opaque panic payload");
    }
}
