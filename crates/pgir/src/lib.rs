//! # raqlet-pgir
//!
//! PGIR — the Property Graph Intermediate Representation — and the lowering
//! from the Cypher AST into it.
//!
//! PGIR is the first IR in Raqlet's pipeline (`Cypher → PGIR → DLIR → SQIR`).
//! It is inspired by GPC (the Graph Pattern Calculus) but extended with the
//! core Cypher features the LDBC SNB read workload needs: aggregation,
//! variable-length paths and shortest-path patterns. A PGIR query is a
//! sequence of clause constructs (`MATCH`, `WHERE`, `WITH`, `RETURN`) whose
//! contents are fully normalised (see [`ir`] and [`lower`]).

// Robustness: non-test code must not unwrap/expect its way into a panic on a
// reachable path — every justified exception carries an `#[allow]` with its
// invariant spelled out. Tests keep the ergonomic forms.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ir;
pub mod lower;

pub use ir::*;
pub use lower::{lower_query, LowerOptions};

/// Parse a Cypher query and lower it to PGIR in one step.
pub fn cypher_to_pgir(src: &str, opts: &LowerOptions) -> raqlet_common::Result<PgirQuery> {
    let ast = raqlet_cypher::parse(src)?;
    lower_query(&ast, opts)
}
