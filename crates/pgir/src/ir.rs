//! PGIR definitions.
//!
//! PGIR (Property Graph IR) represents a query as an ordered sequence of
//! *clause constructs* — `MATCH`, `WHERE`, `WITH`, `RETURN` — whose contents
//! are fully normalised pattern and expression trees (Figure 3b of the
//! paper). Normalisation performed by the lowering means that at this level:
//!
//! * every node and edge pattern has a variable (compiler-generated `x1`,
//!   `x2`, ... when the query left them anonymous);
//! * inline property constraints (`{id: 42}`) have been extracted into
//!   `WHERE` constructs;
//! * every edge is stored source→target with a `directed` flag instead of the
//!   three surface directions;
//! * `ORDER BY`/`SKIP`/`LIMIT` have been dropped and the final projection is
//!   `DISTINCT`, matching the paper's set-semantics normalisation.

use std::fmt;

use raqlet_common::Value;

/// A normalised PGIR query: an ordered sequence of clause constructs.
#[derive(Debug, Clone, PartialEq)]
pub struct PgirQuery {
    /// Clause constructs in evaluation order.
    pub clauses: Vec<PgirClause>,
}

impl PgirQuery {
    /// The final RETURN construct.
    pub fn return_construct(&self) -> Option<&ReturnConstruct> {
        self.clauses.iter().rev().find_map(|c| match c {
            PgirClause::Return(r) => Some(r),
            _ => None,
        })
    }

    /// True if any pattern is a variable-length or shortest-path pattern.
    pub fn is_recursive(&self) -> bool {
        self.clauses.iter().any(|c| match c {
            PgirClause::Match(m) => {
                m.patterns.iter().any(|p| matches!(p, PatternElem::Path(_) | PatternElem::Chain(_)))
            }
            _ => false,
        })
    }

    /// Count clause constructs of each kind: (match, where, with, return).
    /// `UNWIND` constructs are not counted (use [`PgirQuery::unwind_count`]).
    pub fn clause_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for c in &self.clauses {
            match c {
                PgirClause::Match(_) => counts.0 += 1,
                PgirClause::Where(_) => counts.1 += 1,
                PgirClause::With(_) => counts.2 += 1,
                PgirClause::Return(_) => counts.3 += 1,
                PgirClause::Unwind(_) => {}
            }
        }
        counts
    }

    /// Number of `UNWIND` constructs.
    pub fn unwind_count(&self) -> usize {
        self.clauses.iter().filter(|c| matches!(c, PgirClause::Unwind(_))).count()
    }
}

/// A PGIR clause construct (a grey box in Figure 3b).
#[derive(Debug, Clone, PartialEq)]
pub enum PgirClause {
    /// Graph pattern matching.
    Match(MatchConstruct),
    /// A filter over the variables bound so far.
    Where(WhereConstruct),
    /// Intermediate projection (possibly aggregating).
    With(WithConstruct),
    /// Final projection.
    Return(ReturnConstruct),
    /// `UNWIND <list> AS x`, normalised to a constant list: each incoming row
    /// is extended with one binding of `alias` per list element.
    Unwind(UnwindConstruct),
}

/// An `UNWIND` construct over a constant list.
#[derive(Debug, Clone, PartialEq)]
pub struct UnwindConstruct {
    /// The variable each element is bound to.
    pub alias: String,
    /// The list elements (parameters already substituted).
    pub values: Vec<Value>,
}

/// A `MATCH` construct: a conjunction of pattern elements.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchConstruct {
    /// True for `OPTIONAL MATCH`.
    pub optional: bool,
    /// The pattern elements matched by this construct.
    pub patterns: Vec<PatternElem>,
}

/// One element of a `MATCH` construct.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElem {
    /// An isolated node pattern (a `MATCH` with no relationship).
    Node(NodePat),
    /// A single-hop edge pattern.
    Edge(EdgePat),
    /// A variable-length or shortest-path pattern (recursive after lowering).
    Path(PathPat),
    /// A shortest path over a multi-hop pattern: per-step path segments whose
    /// hop counts are summed and minimised per (source, final target) pair.
    Chain(ChainPat),
}

impl PatternElem {
    /// The variables this pattern element binds.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            PatternElem::Node(n) => vec![n.var.clone()],
            PatternElem::Edge(e) => vec![e.src.var.clone(), e.var.clone(), e.dst.var.clone()],
            PatternElem::Path(p) => vec![p.src.var.clone(), p.dst.var.clone()],
            // Intermediate nodes of a chain are existential: only the two
            // endpoints remain visible to later clauses.
            PatternElem::Chain(c) => vec![c.src.var.clone(), c.dst().var.clone()],
        }
    }
}

/// A node pattern: a variable plus an optional label.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePat {
    /// Binding variable (always present after normalisation).
    pub var: String,
    /// Node label, if constrained.
    pub label: Option<String>,
}

impl NodePat {
    /// Convenience constructor.
    pub fn new(var: impl Into<String>, label: Option<&str>) -> Self {
        NodePat { var: var.into(), label: label.map(|s| s.to_string()) }
    }
}

/// A single-hop edge pattern `(src)-[var:label]->(dst)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePat {
    /// Edge binding variable (always present after normalisation, e.g. `x1`).
    pub var: String,
    /// Edge label alternatives (`[:A|B]` keeps both; empty = unconstrained).
    /// The DLIR lowering expands alternatives into one rule body per
    /// resolvable edge EDB (a union).
    pub labels: Vec<String>,
    /// True if the edge must be traversed in its stored direction only.
    pub directed: bool,
    /// Source node pattern (the stored direction's source).
    pub src: NodePat,
    /// Target node pattern.
    pub dst: NodePat,
}

/// Which flavour of shortest path a path pattern requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathSemantics {
    /// Plain reachability within the hop bounds.
    Reachability,
    /// Shortest path (hop count) between the endpoints.
    Shortest,
    /// All shortest paths (same hop count as the shortest).
    AllShortest,
}

/// A variable-length / shortest-path pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPat {
    /// Binding variable for the path (generated when anonymous).
    pub var: String,
    /// Edge label alternatives applied to every hop (`[:A|B*]` lets each hop
    /// traverse either type; empty = unconstrained, rejected by DLIR).
    pub labels: Vec<String>,
    /// True if hops must follow the stored edge direction.
    pub directed: bool,
    /// Source node pattern.
    pub src: NodePat,
    /// Target node pattern.
    pub dst: NodePat,
    /// Minimum number of hops (Cypher default 1; 0 permits `src = dst`).
    pub min_hops: u32,
    /// Maximum number of hops; `None` = unbounded.
    pub max_hops: Option<u32>,
    /// Reachability vs. shortest-path semantics.
    pub semantics: PathSemantics,
}

/// One step of a multi-hop shortest-path chain: a (possibly variable-length)
/// relationship segment leading to `node`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStep {
    /// Edge label alternatives for every hop of this step.
    pub labels: Vec<String>,
    /// True if hops must follow a stored edge direction.
    pub directed: bool,
    /// True when the stored direction runs reading-order (previous node →
    /// `node`); false for `<-[...]-` steps. Irrelevant when undirected.
    pub forward: bool,
    /// The node this step leads to (the chain's target for the last step;
    /// an existential intermediate otherwise).
    pub node: NodePat,
    /// Minimum hops for this step (a plain relationship is `1..1`).
    pub min_hops: u32,
    /// Maximum hops; `None` = unbounded.
    pub max_hops: Option<u32>,
}

/// A `shortestPath` over a multi-hop pattern. The total path length is the
/// sum of the per-step hop counts, minimised per (source, final target) pair;
/// intermediate nodes are existentially quantified.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPat {
    /// Binding variable for the path (generated when anonymous).
    pub var: String,
    /// The leftmost node pattern.
    pub src: NodePat,
    /// The steps, left to right (always at least two — single-step shortest
    /// paths stay [`PathPat`]s).
    pub steps: Vec<ChainStep>,
    /// Shortest vs. all-shortest semantics (never plain reachability).
    pub semantics: PathSemantics,
}

impl ChainPat {
    /// The final target node pattern (the last step's node).
    pub fn dst(&self) -> &NodePat {
        // Invariant: lowering only builds `ChainPat`s with >= 2 steps (a
        // single-step chain stays a plain `PathPat`).
        #[allow(clippy::expect_used)]
        &self.steps.last().expect("chain patterns have at least one step").node
    }
}

/// A `WHERE` construct.
#[derive(Debug, Clone, PartialEq)]
pub struct WhereConstruct {
    /// The predicate, a conjunction of the extracted inline property
    /// constraints and the user's `WHERE` expression.
    pub predicate: PgirExpr,
}

/// A `WITH` construct (intermediate projection).
#[derive(Debug, Clone, PartialEq)]
pub struct WithConstruct {
    /// True if duplicates are eliminated at this step.
    pub distinct: bool,
    /// Projected items.
    pub items: Vec<OutputItem>,
    /// Post-projection filter (from `WITH ... WHERE ...`).
    pub having: Option<PgirExpr>,
}

/// A `RETURN` construct (final projection).
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnConstruct {
    /// True if duplicates are eliminated (always true after normalisation).
    pub distinct: bool,
    /// Output items in order.
    pub items: Vec<OutputItem>,
}

/// One projected item with its output name.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputItem {
    /// The projected expression.
    pub expr: PgirExpr,
    /// Output column name (explicit alias or derived).
    pub alias: String,
}

impl OutputItem {
    /// Convenience constructor.
    pub fn new(expr: PgirExpr, alias: impl Into<String>) -> Self {
        OutputItem { expr, alias: alias.into() }
    }
}

/// Aggregation functions representable in PGIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    Collect,
}

impl AggFunc {
    /// Parse a Cypher aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            "collect" => Some(AggFunc::Collect),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::Collect => "collect",
        }
    }
}

/// Comparison operators in PGIR predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The SQL / Datalog spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with its operands swapped.
    pub fn flipped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Arithmetic operators in PGIR expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// A normalised PGIR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PgirExpr {
    /// Reference to a bound variable (node, edge, path or projected alias).
    Var(String),
    /// Property access on a bound variable.
    Property { var: String, prop: String },
    /// A constant.
    Const(Value),
    /// Comparison between two expressions.
    Cmp { op: CmpOp, lhs: Box<PgirExpr>, rhs: Box<PgirExpr> },
    /// Conjunction.
    And(Box<PgirExpr>, Box<PgirExpr>),
    /// Disjunction.
    Or(Box<PgirExpr>, Box<PgirExpr>),
    /// Negation.
    Not(Box<PgirExpr>),
    /// Membership in a constant list.
    InList { expr: Box<PgirExpr>, list: Vec<Value> },
    /// Arithmetic.
    Arith { op: ArithOp, lhs: Box<PgirExpr>, rhs: Box<PgirExpr> },
    /// Aggregate application; `arg` is `None` for `count(*)`.
    Aggregate { func: AggFunc, distinct: bool, arg: Option<Box<PgirExpr>> },
}

impl PgirExpr {
    /// Property access helper.
    pub fn prop(var: &str, prop: &str) -> PgirExpr {
        PgirExpr::Property { var: var.to_string(), prop: prop.to_string() }
    }

    /// Integer constant helper.
    pub fn int(v: i64) -> PgirExpr {
        PgirExpr::Const(Value::Int(v))
    }

    /// Equality comparison helper.
    pub fn eq(lhs: PgirExpr, rhs: PgirExpr) -> PgirExpr {
        PgirExpr::Cmp { op: CmpOp::Eq, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Conjunction of a list of predicates (`None` if the list is empty).
    pub fn conjunction(mut preds: Vec<PgirExpr>) -> Option<PgirExpr> {
        let first = if preds.is_empty() { return None } else { preds.remove(0) };
        Some(preds.into_iter().fold(first, |acc, p| PgirExpr::And(Box::new(acc), Box::new(p))))
    }

    /// Split a predicate into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&PgirExpr> {
        match self {
            PgirExpr::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// True if this expression contains an aggregate anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            PgirExpr::Aggregate { .. } => true,
            PgirExpr::Cmp { lhs, rhs, .. } | PgirExpr::Arith { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            PgirExpr::And(a, b) | PgirExpr::Or(a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            PgirExpr::Not(e) => e.contains_aggregate(),
            PgirExpr::InList { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Variables referenced by this expression.
    pub fn referenced_vars(&self, out: &mut Vec<String>) {
        match self {
            PgirExpr::Var(v) | PgirExpr::Property { var: v, .. } => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            PgirExpr::Cmp { lhs, rhs, .. } | PgirExpr::Arith { lhs, rhs, .. } => {
                lhs.referenced_vars(out);
                rhs.referenced_vars(out);
            }
            PgirExpr::And(a, b) | PgirExpr::Or(a, b) => {
                a.referenced_vars(out);
                b.referenced_vars(out);
            }
            PgirExpr::Not(e) => e.referenced_vars(out),
            PgirExpr::InList { expr, .. } => expr.referenced_vars(out),
            PgirExpr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.referenced_vars(out);
                }
            }
            PgirExpr::Const(_) => {}
        }
    }
}

impl fmt::Display for PgirExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgirExpr::Var(v) => write!(f, "{v}"),
            PgirExpr::Property { var, prop } => write!(f, "{var}.{prop}"),
            PgirExpr::Const(Value::Str(s)) => write!(f, "'{s}'"),
            PgirExpr::Const(v) => write!(f, "{v}"),
            PgirExpr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {} {rhs}", op.symbol()),
            PgirExpr::And(a, b) => write!(f, "({a} AND {b})"),
            PgirExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            PgirExpr::Not(e) => write!(f, "NOT ({e})"),
            PgirExpr::InList { expr, list } => {
                let items = list.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
                write!(f, "{expr} IN [{items}]")
            }
            PgirExpr::Arith { op, lhs, rhs } => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                    ArithOp::Mod => "%",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            PgirExpr::Aggregate { func, distinct, arg } => {
                let inner = match arg {
                    Some(a) => a.to_string(),
                    None => "*".to_string(),
                };
                if *distinct {
                    write!(f, "{}(DISTINCT {inner})", func.name())
                } else {
                    write!(f, "{}({inner})", func.name())
                }
            }
        }
    }
}

/// Render a label-alternative list for the compact display (`_` when
/// unconstrained, `A|B` otherwise).
fn labels_display(labels: &[String]) -> String {
    if labels.is_empty() {
        "_".to_string()
    } else {
        labels.join("|")
    }
}

impl fmt::Display for PgirQuery {
    /// A compact textual rendering of the clause-construct sequence, used by
    /// the Figure 3b example binary and in tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            match clause {
                PgirClause::Match(m) => {
                    let kw = if m.optional { "OPTIONAL MATCH" } else { "MATCH" };
                    writeln!(f, "{kw}")?;
                    for p in &m.patterns {
                        match p {
                            PatternElem::Node(n) => writeln!(
                                f,
                                "  node({}, {})",
                                n.var,
                                n.label.as_deref().unwrap_or("_")
                            )?,
                            PatternElem::Edge(e) => writeln!(
                                f,
                                "  edge({}, {}, {}, src=node({}, {}), dst=node({}, {}))",
                                labels_display(&e.labels),
                                e.var,
                                if e.directed { "directed" } else { "undirected" },
                                e.src.var,
                                e.src.label.as_deref().unwrap_or("_"),
                                e.dst.var,
                                e.dst.label.as_deref().unwrap_or("_"),
                            )?,
                            PatternElem::Path(p) => writeln!(
                                f,
                                "  path({}, {}, {:?}, {}..{}, src=node({}, {}), dst=node({}, {}))",
                                labels_display(&p.labels),
                                p.var,
                                p.semantics,
                                p.min_hops,
                                p.max_hops.map(|m| m.to_string()).unwrap_or_else(|| "*".into()),
                                p.src.var,
                                p.src.label.as_deref().unwrap_or("_"),
                                p.dst.var,
                                p.dst.label.as_deref().unwrap_or("_"),
                            )?,
                            PatternElem::Chain(c) => {
                                write!(
                                    f,
                                    "  chain({}, {:?}, node({}, {})",
                                    c.var,
                                    c.semantics,
                                    c.src.var,
                                    c.src.label.as_deref().unwrap_or("_"),
                                )?;
                                for step in &c.steps {
                                    write!(
                                        f,
                                        " -[{}*{}..{}]- node({}, {})",
                                        labels_display(&step.labels),
                                        step.min_hops,
                                        step.max_hops
                                            .map(|m| m.to_string())
                                            .unwrap_or_else(|| "*".into()),
                                        step.node.var,
                                        step.node.label.as_deref().unwrap_or("_"),
                                    )?;
                                }
                                writeln!(f, ")")?;
                            }
                        }
                    }
                }
                PgirClause::Where(w) => {
                    writeln!(f, "WHERE")?;
                    writeln!(f, "  {}", w.predicate)?;
                }
                PgirClause::With(w) => {
                    writeln!(f, "WITH{}", if w.distinct { " DISTINCT" } else { "" })?;
                    for item in &w.items {
                        writeln!(f, "  {} AS {}", item.expr, item.alias)?;
                    }
                    if let Some(h) = &w.having {
                        writeln!(f, "  HAVING {h}")?;
                    }
                }
                PgirClause::Return(r) => {
                    writeln!(f, "RETURN{}", if r.distinct { " DISTINCT" } else { "" })?;
                    for item in &r.items {
                        writeln!(f, "  {} AS {}", item.expr, item.alias)?;
                    }
                }
                PgirClause::Unwind(u) => {
                    let items =
                        u.values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
                    writeln!(f, "UNWIND [{items}] AS {}", u.alias)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_of_empty_list_is_none() {
        assert_eq!(PgirExpr::conjunction(vec![]), None);
    }

    #[test]
    fn conjunction_and_conjuncts_round_trip() {
        let preds = vec![
            PgirExpr::eq(PgirExpr::prop("n", "id"), PgirExpr::int(42)),
            PgirExpr::eq(PgirExpr::prop("p", "id"), PgirExpr::Var("cityId".into())),
            PgirExpr::Cmp {
                op: CmpOp::Gt,
                lhs: Box::new(PgirExpr::prop("n", "age")),
                rhs: Box::new(PgirExpr::int(18)),
            },
        ];
        let conj = PgirExpr::conjunction(preds.clone()).unwrap();
        let parts = conj.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(*parts[0], preds[0]);
        assert_eq!(*parts[2], preds[2]);
    }

    #[test]
    fn cmp_flip_is_an_involution_on_strict_ops() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.flipped().flipped(), CmpOp::Lt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn referenced_vars_are_deduplicated() {
        let e = PgirExpr::And(
            Box::new(PgirExpr::eq(PgirExpr::prop("n", "id"), PgirExpr::int(1))),
            Box::new(PgirExpr::eq(PgirExpr::prop("n", "age"), PgirExpr::Var("m".into()))),
        );
        let mut vars = Vec::new();
        e.referenced_vars(&mut vars);
        assert_eq!(vars, vec!["n".to_string(), "m".to_string()]);
    }

    #[test]
    fn aggregate_detection() {
        let agg = PgirExpr::Aggregate { func: AggFunc::Count, distinct: false, arg: None };
        assert!(agg.contains_aggregate());
        assert!(!PgirExpr::prop("n", "id").contains_aggregate());
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn display_of_expressions_is_readable() {
        let e = PgirExpr::eq(PgirExpr::prop("n", "id"), PgirExpr::int(42));
        assert_eq!(e.to_string(), "n.id = 42");
        let agg = PgirExpr::Aggregate {
            func: AggFunc::Count,
            distinct: true,
            arg: Some(Box::new(PgirExpr::Var("x".into()))),
        };
        assert_eq!(agg.to_string(), "count(DISTINCT x)");
    }

    #[test]
    fn pattern_bound_vars() {
        let edge = PatternElem::Edge(EdgePat {
            var: "x1".into(),
            labels: vec!["KNOWS".into()],
            directed: true,
            src: NodePat::new("a", Some("Person")),
            dst: NodePat::new("b", Some("Person")),
        });
        assert_eq!(edge.bound_vars(), vec!["a", "x1", "b"]);
    }
}
