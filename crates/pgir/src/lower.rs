//! Cypher AST → PGIR lowering.
//!
//! This is the "Cypher to PGIR Translation" stage of the paper (Section 3):
//! the input query is normalised and decomposed into PGIR expressions
//! (patterns, filters, aliases), which are mapped to clause constructs.

use std::collections::HashMap;
use std::collections::HashSet;

use raqlet_common::ids::IdGen;
use raqlet_common::{RaqletError, Result, Value};
use raqlet_cypher::ast as cy;

use crate::ir::*;

/// Options controlling the lowering.
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Bindings for `$parameters` appearing in the query.
    pub params: HashMap<String, Value>,
    /// Keep `ORDER BY` / `SKIP` / `LIMIT` instead of erroring. They are
    /// always *dropped* from the produced PGIR (the paper's set-semantics
    /// normalisation); setting this to `false` makes their presence an error
    /// instead, for callers that need strict semantics preservation.
    pub allow_order_and_limit: bool,
}

impl LowerOptions {
    /// Default options: parameters empty, ORDER BY/LIMIT silently dropped.
    pub fn new() -> Self {
        LowerOptions { params: HashMap::new(), allow_order_and_limit: true }
    }

    /// Bind a query parameter.
    pub fn with_param(mut self, name: &str, value: Value) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }
}

/// Lower a parsed Cypher query to PGIR.
pub fn lower_query(query: &cy::Query, opts: &LowerOptions) -> Result<PgirQuery> {
    Lowerer::new(opts, query).run(query)
}

struct Lowerer<'a> {
    opts: &'a LowerOptions,
    ids: IdGen,
    used_vars: HashSet<String>,
}

impl<'a> Lowerer<'a> {
    fn new(opts: &'a LowerOptions, query: &cy::Query) -> Self {
        let mut used_vars = HashSet::new();
        collect_user_vars(query, &mut used_vars);
        Lowerer { opts, ids: IdGen::new(), used_vars }
    }

    fn fresh_var(&mut self) -> String {
        loop {
            let candidate = self.ids.fresh("x");
            if self.used_vars.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    fn run(&mut self, query: &cy::Query) -> Result<PgirQuery> {
        let mut clauses = Vec::new();
        for clause in &query.clauses {
            match clause {
                cy::Clause::Match(m) => self.lower_match(m, &mut clauses)?,
                cy::Clause::With(p) => clauses.push(PgirClause::With(self.lower_with(p)?)),
                cy::Clause::Return(p) => clauses.push(PgirClause::Return(self.lower_return(p)?)),
                cy::Clause::Unwind { expr, alias } => {
                    clauses.push(PgirClause::Unwind(self.lower_unwind(expr, alias)?))
                }
            }
        }
        Ok(PgirQuery { clauses })
    }

    /// Lower `UNWIND <list> AS alias`. The list must normalise to constants
    /// (literals or bound parameters) so every backend can materialise it.
    fn lower_unwind(&mut self, expr: &cy::Expr, alias: &str) -> Result<UnwindConstruct> {
        let values = match expr {
            cy::Expr::List(items) => {
                items.iter().map(|e| self.constant_value(e)).collect::<Result<Vec<_>>>()?
            }
            other => {
                return Err(RaqletError::unsupported(format!(
                    "UNWIND requires a literal list, got `{other}`"
                )))
            }
        };
        self.used_vars.insert(alias.to_string());
        Ok(UnwindConstruct { alias: alias.to_string(), values })
    }

    fn lower_match(&mut self, m: &cy::MatchClause, out: &mut Vec<PgirClause>) -> Result<()> {
        let mut patterns = Vec::new();
        let mut predicates = Vec::new();

        for pattern in &m.patterns {
            self.lower_path_pattern(pattern, &mut patterns, &mut predicates)?;
        }

        out.push(PgirClause::Match(MatchConstruct { optional: m.optional, patterns }));

        if let Some(w) = &m.where_clause {
            predicates.push(self.lower_expr(w)?);
        }
        if let Some(pred) = PgirExpr::conjunction(predicates) {
            out.push(PgirClause::Where(WhereConstruct { predicate: pred }));
        }
        Ok(())
    }

    fn lower_path_pattern(
        &mut self,
        pattern: &cy::PathPattern,
        patterns: &mut Vec<PatternElem>,
        predicates: &mut Vec<PgirExpr>,
    ) -> Result<()> {
        let start = self.lower_node(&pattern.start, predicates)?;

        if pattern.steps.is_empty() {
            if pattern.shortest.is_some() {
                return Err(RaqletError::semantic("shortestPath requires a relationship pattern"));
            }
            patterns.push(PatternElem::Node(start));
            return Ok(());
        }

        if let Some(kind) = pattern.shortest {
            if pattern.steps.len() > 1 {
                let chain = self.lower_chain(pattern, kind, start, predicates)?;
                patterns.push(PatternElem::Chain(chain));
                return Ok(());
            }
        }

        let mut prev = start;
        for (rel, node) in &pattern.steps {
            let next = self.lower_node(node, predicates)?;
            let elem = self.lower_rel(
                rel,
                pattern.shortest,
                pattern.path_var.as_deref().filter(|_| pattern.steps.len() == 1),
                prev.clone(),
                next.clone(),
                predicates,
            )?;
            patterns.push(elem);
            prev = next;
        }
        Ok(())
    }

    /// Lower a `shortestPath` over a multi-hop pattern into a chain: one
    /// [`ChainStep`] per relationship, hop counts summed and minimised by the
    /// DLIR lowering / engines. Intermediate nodes are existential, so
    /// constraints that would re-expose them (inline properties, relationship
    /// variables) are rejected.
    fn lower_chain(
        &mut self,
        pattern: &cy::PathPattern,
        kind: cy::ShortestKind,
        start: NodePat,
        predicates: &mut Vec<PgirExpr>,
    ) -> Result<ChainPat> {
        let mut steps = Vec::with_capacity(pattern.steps.len());
        let last = pattern.steps.len() - 1;
        for (i, (rel, node)) in pattern.steps.iter().enumerate() {
            if rel.var.is_some() || !rel.properties.is_empty() {
                return Err(RaqletError::unsupported(
                    "relationship variables and properties inside a multi-hop shortestPath",
                ));
            }
            if i < last && !node.properties.is_empty() {
                return Err(RaqletError::unsupported(
                    "inline properties on intermediate nodes of a multi-hop shortestPath",
                ));
            }
            let (min_hops, max_hops) = match rel.length {
                Some(len) => (len.min_hops(), len.max),
                None => (1, Some(1)),
            };
            if let Some(max) = max_hops {
                if min_hops > max {
                    return Err(RaqletError::semantic(format!(
                        "variable-length bounds `*{min_hops}..{max}` can never match"
                    )));
                }
            }
            if min_hops > 1 {
                return Err(RaqletError::semantic(
                    "shortestPath with a minimum hop count above 1 is not supported: the \
                     shortest path per endpoint pair may be shorter than the requested minimum",
                ));
            }
            let (directed, forward) = match rel.direction {
                cy::Direction::Outgoing => (true, true),
                cy::Direction::Incoming => (true, false),
                cy::Direction::Undirected => (false, true),
            };
            steps.push(ChainStep {
                labels: rel.types.clone(),
                directed,
                forward,
                node: self.lower_node(node, predicates)?,
                min_hops,
                max_hops,
            });
        }
        let var = match &pattern.path_var {
            Some(p) => p.clone(),
            None => self.fresh_var(),
        };
        let semantics = match kind {
            cy::ShortestKind::Single => PathSemantics::Shortest,
            cy::ShortestKind::All => PathSemantics::AllShortest,
        };
        Ok(ChainPat { var, src: start, steps, semantics })
    }

    fn lower_node(
        &mut self,
        node: &cy::NodePattern,
        predicates: &mut Vec<PgirExpr>,
    ) -> Result<NodePat> {
        let var = match &node.var {
            Some(v) => v.clone(),
            None => self.fresh_var(),
        };
        if node.labels.len() > 1 {
            return Err(RaqletError::unsupported("multiple labels on one node pattern"));
        }
        for (prop, value) in &node.properties {
            let rhs = self.lower_expr(value)?;
            predicates.push(PgirExpr::eq(PgirExpr::prop(&var, prop), rhs));
        }
        Ok(NodePat { var, label: node.labels.first().cloned() })
    }

    fn lower_rel(
        &mut self,
        rel: &cy::RelPattern,
        shortest: Option<cy::ShortestKind>,
        path_var: Option<&str>,
        prev: NodePat,
        next: NodePat,
        predicates: &mut Vec<PgirExpr>,
    ) -> Result<PatternElem> {
        // A path pattern's binding is, in preference order, the user's path
        // variable (`p = shortestPath(...)`, the name the unparser renders),
        // the relationship variable, or a fresh name. Plain edges never take
        // the path variable.
        let is_path = rel.length.is_some() || shortest.is_some();
        let var = match (is_path, path_var, &rel.var) {
            (true, Some(p), _) => p.to_string(),
            (_, _, Some(v)) => v.clone(),
            (_, _, None) => self.fresh_var(),
        };
        let labels = rel.types.clone();
        if labels.len() > 1 && !rel.properties.is_empty() {
            return Err(RaqletError::unsupported(
                "inline properties on a relationship with alternative types (`:A|B`)",
            ));
        }
        for (prop, value) in &rel.properties {
            let rhs = self.lower_expr(value)?;
            predicates.push(PgirExpr::eq(PgirExpr::prop(&var, prop), rhs));
        }

        // Normalise direction: store src -> dst in the edge's stored
        // direction; `Incoming` swaps the endpoints.
        let (src, dst, directed) = match rel.direction {
            cy::Direction::Outgoing => (prev, next, true),
            cy::Direction::Incoming => (next, prev, true),
            cy::Direction::Undirected => (prev, next, false),
        };

        if !is_path {
            return Ok(PatternElem::Edge(EdgePat { var, labels, directed, src, dst }));
        }

        let (min_hops, max_hops) = match rel.length {
            Some(len) => (len.min_hops(), len.max),
            None => (1, None),
        };
        if let Some(max) = max_hops {
            if min_hops > max {
                return Err(RaqletError::semantic(format!(
                    "variable-length bounds `*{min_hops}..{max}` can never match"
                )));
            }
        }
        let semantics = match shortest {
            Some(cy::ShortestKind::Single) => PathSemantics::Shortest,
            Some(cy::ShortestKind::All) => PathSemantics::AllShortest,
            None => PathSemantics::Reachability,
        };
        if !matches!(semantics, PathSemantics::Reachability) && min_hops > 1 {
            // The auxiliary IDB keeps the *globally* minimal length per
            // endpoint pair (the min lattice), so a `shortestPath` whose
            // pattern demands `*2..` would silently drop pairs whose true
            // shortest path has one hop instead of returning their shortest
            // path of length >= 2. Reject rather than answer wrongly.
            return Err(RaqletError::semantic(
                "shortestPath with a minimum hop count above 1 is not supported: the \
                 shortest path per endpoint pair may be shorter than the requested minimum",
            ));
        }
        Ok(PatternElem::Path(PathPat {
            var,
            labels,
            directed,
            src,
            dst,
            min_hops,
            max_hops,
            semantics,
        }))
    }

    fn lower_with(&mut self, p: &cy::Projection) -> Result<WithConstruct> {
        self.check_order_and_limit(p)?;
        let items = self.lower_items(&p.items)?;
        let having = match &p.where_clause {
            Some(w) => Some(self.lower_expr(w)?),
            None => None,
        };
        Ok(WithConstruct { distinct: p.distinct, items, having })
    }

    fn lower_return(&mut self, p: &cy::Projection) -> Result<ReturnConstruct> {
        self.check_order_and_limit(p)?;
        let items = self.lower_items(&p.items)?;
        // Set semantics: the paper replaces RETURN with RETURN DISTINCT so the
        // translated queries agree across backends.
        Ok(ReturnConstruct { distinct: true, items })
    }

    fn check_order_and_limit(&self, p: &cy::Projection) -> Result<()> {
        if !self.opts.allow_order_and_limit
            && (!p.order_by.is_empty() || p.skip.is_some() || p.limit.is_some())
        {
            return Err(RaqletError::unsupported(
                "ORDER BY / SKIP / LIMIT are dropped by Raqlet; pass allow_order_and_limit to accept",
            ));
        }
        Ok(())
    }

    fn lower_items(&mut self, items: &[cy::ReturnItem]) -> Result<Vec<OutputItem>> {
        items
            .iter()
            .map(|item| {
                if matches!(&item.expr, cy::Expr::Var(v) if v == "*") {
                    return Err(RaqletError::unsupported("RETURN * is not supported"));
                }
                let expr = self.lower_expr(&item.expr)?;
                Ok(OutputItem { expr, alias: item.output_name() })
            })
            .collect()
    }

    fn lower_expr(&mut self, expr: &cy::Expr) -> Result<PgirExpr> {
        match expr {
            cy::Expr::Var(v) => Ok(PgirExpr::Var(v.clone())),
            cy::Expr::Property(base, prop) => match base.as_ref() {
                cy::Expr::Var(v) => Ok(PgirExpr::prop(v, prop)),
                other => Err(RaqletError::unsupported(format!(
                    "property access on non-variable expression `{other}`"
                ))),
            },
            cy::Expr::Literal(v) => Ok(PgirExpr::Const(v.clone())),
            cy::Expr::Parameter(name) => match self.opts.params.get(name) {
                Some(v) => Ok(PgirExpr::Const(v.clone())),
                None => Err(RaqletError::semantic(format!("unbound query parameter `${name}`"))),
            },
            cy::Expr::List(items) => {
                let values =
                    items.iter().map(|e| self.constant_value(e)).collect::<Result<Vec<_>>>()?;
                // A bare list outside IN is represented as an InList over a
                // dummy; callers only produce lists as the RHS of IN, which is
                // handled in the Binary arm below, so reaching here is a
                // semantic error.
                Err(RaqletError::unsupported(format!(
                    "list literal outside of IN (got {} items)",
                    values.len()
                )))
            }
            cy::Expr::Unary(cy::UnaryOp::Not, e) => {
                Ok(PgirExpr::Not(Box::new(self.lower_expr(e)?)))
            }
            cy::Expr::Unary(cy::UnaryOp::Neg, e) => match self.lower_expr(e)? {
                PgirExpr::Const(Value::Int(i)) => Ok(PgirExpr::int(-i)),
                other => Ok(PgirExpr::Arith {
                    op: ArithOp::Sub,
                    lhs: Box::new(PgirExpr::int(0)),
                    rhs: Box::new(other),
                }),
            },
            cy::Expr::Binary(op, lhs, rhs) => self.lower_binary(*op, lhs, rhs),
            cy::Expr::FunctionCall { name, distinct, args } => {
                let Some(func) = AggFunc::from_name(name) else {
                    return Err(RaqletError::unsupported(format!("function `{name}`")));
                };
                if args.len() > 1 {
                    return Err(RaqletError::semantic(format!(
                        "aggregate `{name}` takes at most one argument"
                    )));
                }
                let arg = match args.first() {
                    Some(a) => Some(Box::new(self.lower_expr(a)?)),
                    None => None,
                };
                Ok(PgirExpr::Aggregate { func, distinct: *distinct, arg })
            }
        }
    }

    fn lower_binary(
        &mut self,
        op: cy::BinaryOp,
        lhs: &cy::Expr,
        rhs: &cy::Expr,
    ) -> Result<PgirExpr> {
        use cy::BinaryOp as B;
        let cmp = |this: &mut Self, op| -> Result<PgirExpr> {
            Ok(PgirExpr::Cmp {
                op,
                lhs: Box::new(this.lower_expr(lhs)?),
                rhs: Box::new(this.lower_expr(rhs)?),
            })
        };
        match op {
            B::And => {
                Ok(PgirExpr::And(Box::new(self.lower_expr(lhs)?), Box::new(self.lower_expr(rhs)?)))
            }
            B::Or => {
                Ok(PgirExpr::Or(Box::new(self.lower_expr(lhs)?), Box::new(self.lower_expr(rhs)?)))
            }
            B::Eq => cmp(self, CmpOp::Eq),
            B::Neq => cmp(self, CmpOp::Neq),
            B::Lt => cmp(self, CmpOp::Lt),
            B::Le => cmp(self, CmpOp::Le),
            B::Gt => cmp(self, CmpOp::Gt),
            B::Ge => cmp(self, CmpOp::Ge),
            B::In => {
                let expr = self.lower_expr(lhs)?;
                let values = match rhs {
                    cy::Expr::List(items) => {
                        items.iter().map(|e| self.constant_value(e)).collect::<Result<Vec<_>>>()?
                    }
                    other => {
                        return Err(RaqletError::unsupported(format!(
                            "IN requires a literal list, got `{other}`"
                        )))
                    }
                };
                Ok(PgirExpr::InList { expr: Box::new(expr), list: values })
            }
            B::Add | B::Sub | B::Mul | B::Div | B::Mod => {
                let arith = match op {
                    B::Add => ArithOp::Add,
                    B::Sub => ArithOp::Sub,
                    B::Mul => ArithOp::Mul,
                    B::Div => ArithOp::Div,
                    _ => ArithOp::Mod,
                };
                Ok(PgirExpr::Arith {
                    op: arith,
                    lhs: Box::new(self.lower_expr(lhs)?),
                    rhs: Box::new(self.lower_expr(rhs)?),
                })
            }
        }
    }

    fn constant_value(&mut self, e: &cy::Expr) -> Result<Value> {
        match self.lower_expr(e)? {
            PgirExpr::Const(v) => Ok(v),
            other => Err(RaqletError::semantic(format!("expected a constant, got `{other}`"))),
        }
    }
}

fn collect_user_vars(query: &cy::Query, out: &mut HashSet<String>) {
    for clause in &query.clauses {
        match clause {
            cy::Clause::Match(m) => {
                for p in &m.patterns {
                    if let Some(v) = &p.path_var {
                        out.insert(v.clone());
                    }
                    for n in p.nodes() {
                        if let Some(v) = &n.var {
                            out.insert(v.clone());
                        }
                    }
                    for (r, _) in &p.steps {
                        if let Some(v) = &r.var {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            cy::Clause::Unwind { alias, .. } => {
                out.insert(alias.clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet_cypher::parse;

    const FIGURE3A: &str = "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City)\n\
                            RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";

    fn lower(src: &str) -> PgirQuery {
        lower_query(&parse(src).unwrap(), &LowerOptions::new()).unwrap()
    }

    #[test]
    fn running_example_produces_match_where_return() {
        let q = lower(FIGURE3A);
        // Figure 3b: MATCH, WHERE, RETURN.
        assert_eq!(q.clause_counts(), (1, 1, 0, 1));

        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns.len(), 1);
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!("expected edge pattern") };
        assert_eq!(e.labels, vec!["IS_LOCATED_IN"]);
        assert!(e.directed);
        assert_eq!(e.src.var, "n");
        assert_eq!(e.src.label.as_deref(), Some("Person"));
        assert_eq!(e.dst.var, "p");
        assert_eq!(e.dst.label.as_deref(), Some("City"));
        // The edge variable is compiler generated (x1 in the paper).
        assert_eq!(e.var, "x1");

        let PgirClause::Where(w) = &q.clauses[1] else { panic!() };
        assert_eq!(w.predicate, PgirExpr::eq(PgirExpr::prop("n", "id"), PgirExpr::int(42)));

        let PgirClause::Return(r) = &q.clauses[2] else { panic!() };
        assert!(r.distinct);
        assert_eq!(r.items[0].alias, "firstName");
        assert_eq!(r.items[1].alias, "cityId");
    }

    #[test]
    fn return_is_forced_distinct_for_set_semantics() {
        let q = lower("MATCH (n:Person) RETURN n.id AS id");
        let r = q.return_construct().unwrap();
        assert!(r.distinct);
    }

    #[test]
    fn incoming_edges_are_normalised_by_swapping_endpoints() {
        let q = lower("MATCH (a:City)<-[:IS_LOCATED_IN]-(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!() };
        // Stored direction is Person -> City even though the query reads
        // City <- Person.
        assert_eq!(e.src.var, "b");
        assert_eq!(e.dst.var, "a");
        assert!(e.directed);
    }

    #[test]
    fn undirected_edges_keep_reading_order_but_are_flagged() {
        let q = lower("MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!() };
        assert!(!e.directed);
        assert_eq!(e.src.var, "a");
    }

    #[test]
    fn anonymous_nodes_and_edges_get_fresh_variables() {
        let q = lower("MATCH (:Person)-[:KNOWS]->() RETURN 1 AS one");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!() };
        assert!(e.src.var.starts_with('x'));
        assert!(e.dst.var.starts_with('x'));
        assert!(e.var.starts_with('x'));
        // All three generated names are distinct.
        assert_ne!(e.src.var, e.dst.var);
        assert_ne!(e.src.var, e.var);
    }

    #[test]
    fn fresh_variables_avoid_user_variables() {
        // The user already uses `x1`; generated names must not collide.
        let q = lower("MATCH (x1:Person)-[:KNOWS]->(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!() };
        assert_ne!(e.var, "x1");
    }

    #[test]
    fn variable_length_lowered_to_path_pattern() {
        let q = lower("MATCH (a:Person {id: 1})-[:KNOWS*1..3]->(b:Person) RETURN b.id AS id");
        assert!(q.is_recursive());
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Path(p) = &m.patterns[0] else { panic!() };
        assert_eq!(p.min_hops, 1);
        assert_eq!(p.max_hops, Some(3));
        assert_eq!(p.semantics, PathSemantics::Reachability);
        assert_eq!(p.labels, vec!["KNOWS"]);
    }

    #[test]
    fn shortest_path_lowered_to_path_pattern_with_shortest_semantics() {
        let q = lower(
            "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) \
             RETURN b.id AS id",
        );
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Path(p) = &m.patterns[0] else { panic!() };
        assert_eq!(p.semantics, PathSemantics::Shortest);
        assert!(!p.directed);
        assert_eq!(p.max_hops, None);
    }

    #[test]
    fn user_path_variable_is_preserved_on_path_patterns() {
        // `p = shortestPath(...)` must keep binding `p` — it is the name the
        // unparser renders, so regenerating it breaks round-trip stability.
        let q = lower(
            "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person {id:2})) \
             RETURN b.id AS id",
        );
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Path(path) = &m.patterns[0] else { panic!() };
        assert_eq!(path.var, "p");

        // The relationship variable still wins when there is no path variable,
        // and anonymous paths get a fresh name.
        let q = lower("MATCH (a:Person)-[r:KNOWS*]->(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Path(path) = &m.patterns[0] else { panic!() };
        assert_eq!(path.var, "r");

        let q = lower("MATCH (a:Person)-[:KNOWS*]->(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Path(path) = &m.patterns[0] else { panic!() };
        assert_eq!(path.var, "x1");
    }

    #[test]
    fn inline_properties_become_where_predicates() {
        let q = lower("MATCH (n:Person {id: 42, firstName: 'Bob'}) RETURN n.id AS id");
        let PgirClause::Where(w) = &q.clauses[1] else { panic!() };
        let conjuncts = w.predicate.conjuncts();
        assert_eq!(conjuncts.len(), 2);
    }

    #[test]
    fn match_where_merges_with_pattern_predicates() {
        let q = lower("MATCH (n:Person {id: 42}) WHERE n.age > 18 RETURN n.id AS id");
        let PgirClause::Where(w) = &q.clauses[1] else { panic!() };
        assert_eq!(w.predicate.conjuncts().len(), 2);
    }

    #[test]
    fn with_aggregation_is_lowered() {
        let q = lower(
            "MATCH (p:Person)-[:KNOWS]->(f:Person) WITH f, count(p) AS cnt \
             RETURN f.id AS id, cnt AS cnt",
        );
        let PgirClause::With(w) = &q.clauses[1] else { panic!() };
        assert_eq!(w.items.len(), 2);
        assert!(w.items[1].expr.contains_aggregate());
    }

    #[test]
    fn parameters_are_substituted() {
        let opts = LowerOptions::new().with_param("personId", Value::Int(7));
        let ast = parse("MATCH (n:Person {id: $personId}) RETURN n.id AS id").unwrap();
        let q = lower_query(&ast, &opts).unwrap();
        let PgirClause::Where(w) = &q.clauses[1] else { panic!() };
        assert_eq!(w.predicate, PgirExpr::eq(PgirExpr::prop("n", "id"), PgirExpr::int(7)));
    }

    #[test]
    fn unbound_parameters_are_an_error() {
        let ast = parse("MATCH (n:Person {id: $personId}) RETURN n.id AS id").unwrap();
        let err = lower_query(&ast, &LowerOptions::new()).unwrap_err();
        assert!(err.to_string().contains("personId"));
    }

    #[test]
    fn order_by_and_limit_are_dropped_by_default() {
        let q = lower("MATCH (n:Person) RETURN n.id AS id ORDER BY id LIMIT 10");
        // No trace of ordering in PGIR.
        assert_eq!(q.clause_counts(), (1, 0, 0, 1));
    }

    #[test]
    fn order_by_can_be_rejected_in_strict_mode() {
        let mut opts = LowerOptions::new();
        opts.allow_order_and_limit = false;
        let ast = parse("MATCH (n:Person) RETURN n.id AS id ORDER BY id").unwrap();
        assert!(lower_query(&ast, &opts).is_err());
    }

    #[test]
    fn in_list_predicates_are_lowered() {
        let q = lower("MATCH (n:Person) WHERE n.id IN [1, 2, 3] RETURN n.id AS id");
        let PgirClause::Where(w) = &q.clauses[1] else { panic!() };
        let PgirExpr::InList { list, .. } = &w.predicate else { panic!() };
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn unknown_functions_are_unsupported() {
        let ast = parse("MATCH (n) RETURN length(n) AS l").unwrap();
        let err = lower_query(&ast, &LowerOptions::new()).unwrap_err();
        assert!(matches!(err, RaqletError::Unsupported(_)));
    }

    #[test]
    fn multi_hop_patterns_produce_one_edge_per_hop() {
        let q = lower(
            "MATCH (m:Message)-[:HAS_CREATOR]->(p:Person)-[:IS_LOCATED_IN]->(c:City) \
             RETURN c.name AS name",
        );
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        assert_eq!(m.patterns.len(), 2);
        // The two edges share the middle node variable `p`.
        let PatternElem::Edge(e1) = &m.patterns[0] else { panic!() };
        let PatternElem::Edge(e2) = &m.patterns[1] else { panic!() };
        assert_eq!(e1.dst.var, "p");
        assert_eq!(e2.src.var, "p");
    }

    #[test]
    fn unwind_lowers_to_a_constant_list_construct() {
        let q = lower("UNWIND [1, 2, 3] AS x RETURN x AS x");
        let PgirClause::Unwind(u) = &q.clauses[0] else { panic!("expected UNWIND") };
        assert_eq!(u.alias, "x");
        assert_eq!(u.values, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(q.unwind_count(), 1);
    }

    #[test]
    fn unwind_parameters_are_substituted_into_the_list() {
        let opts = LowerOptions::new().with_param("ids", Value::Int(7));
        let ast = parse("UNWIND [$ids, 9] AS x RETURN x AS x").unwrap();
        let q = lower_query(&ast, &opts).unwrap();
        let PgirClause::Unwind(u) = &q.clauses[0] else { panic!() };
        assert_eq!(u.values, vec![Value::Int(7), Value::Int(9)]);
    }

    #[test]
    fn unwind_of_non_list_expressions_is_rejected() {
        let ast = parse("MATCH (n:Person) UNWIND n.id AS x RETURN x").unwrap();
        assert!(matches!(
            lower_query(&ast, &LowerOptions::new()),
            Err(RaqletError::Unsupported(_))
        ));
    }

    #[test]
    fn alternative_relationship_types_are_kept_as_label_alternatives() {
        let q = lower("MATCH (a:Person)-[:LIKES|KNOWS]->(b:Person) RETURN b.id AS id");
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Edge(e) = &m.patterns[0] else { panic!() };
        assert_eq!(e.labels, vec!["LIKES", "KNOWS"]);
    }

    #[test]
    fn multi_hop_shortest_path_lowers_to_a_chain() {
        let q = lower(
            "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-(b:Person)-[:IS_LOCATED_IN]->(c:City)) \
             RETURN c.id AS id",
        );
        assert!(q.is_recursive());
        let PgirClause::Match(m) = &q.clauses[0] else { panic!() };
        let PatternElem::Chain(chain) = &m.patterns[0] else { panic!("expected chain") };
        assert_eq!(chain.var, "p");
        assert_eq!(chain.src.var, "a");
        assert_eq!(chain.steps.len(), 2);
        assert_eq!(chain.steps[0].labels, vec!["KNOWS"]);
        assert!(!chain.steps[0].directed);
        assert_eq!(chain.steps[0].max_hops, None);
        assert_eq!(chain.steps[1].labels, vec!["IS_LOCATED_IN"]);
        assert!(chain.steps[1].directed && chain.steps[1].forward);
        assert_eq!((chain.steps[1].min_hops, chain.steps[1].max_hops), (1, Some(1)));
        assert_eq!(chain.dst().var, "c");
        assert_eq!(chain.semantics, PathSemantics::Shortest);
    }

    #[test]
    fn empty_variable_length_bounds_are_rejected() {
        for src in [
            "MATCH (a:Person)-[:KNOWS*2..1]->(b:Person) RETURN b.id AS id",
            "MATCH p = shortestPath((a:Person)-[:KNOWS*1..0]-(b:Person)-[:KNOWS]-(c:Person)) \
             RETURN c.id AS id",
        ] {
            let ast = parse(src).unwrap();
            let err = lower_query(&ast, &LowerOptions::new()).unwrap_err();
            assert!(matches!(err, RaqletError::Semantic(_)), "{src}: {err}");
        }
    }

    #[test]
    fn shortest_path_with_min_hops_above_one_is_a_semantic_error() {
        // The min lattice keeps the global minimum per pair, so `*2..` under
        // shortestPath cannot be answered faithfully — it must error.
        for src in [
            "MATCH p = shortestPath((a:Person)-[:KNOWS*2..]-(b:Person)) RETURN b.id AS id",
            "MATCH p = shortestPath((a:Person)-[:KNOWS*2..3]-(b:Person)-[:KNOWS]-(c:Person)) \
             RETURN c.id AS id",
        ] {
            let ast = parse(src).unwrap();
            let err = lower_query(&ast, &LowerOptions::new()).unwrap_err();
            assert!(matches!(err, RaqletError::Semantic(_)), "{src}: {err}");
        }
    }

    #[test]
    fn optional_match_flag_is_preserved() {
        let q = lower("MATCH (p:Person) OPTIONAL MATCH (p)-[:KNOWS]->(f:Person) RETURN p.id AS id");
        let PgirClause::Match(m1) = &q.clauses[1] else { panic!() };
        assert!(m1.optional);
    }
}
