//! # Raqlet
//!
//! Raqlet is a source-to-source compilation framework for **recursive
//! queries**, reproducing the system described in *"Raqlet: Cross-Paradigm
//! Compilation for Recursive Queries"* (CIDR 2026). A query written in
//! Cypher is lowered through a stack of intermediate representations —
//! PGIR → DLIR → SQIR — analysed and optimized at the DLIR level, and then
//! either unparsed to Soufflé Datalog / SQL text or executed directly on the
//! bundled in-memory engines (Datalog, SQL, property graph).
//!
//! ```
//! use raqlet::{Raqlet, CompileOptions, OptLevel, SqlDialect};
//!
//! let schema = "CREATE GRAPH {
//!     (personType : Person { id INT, firstName STRING }),
//!     (cityType : City { id INT, name STRING }),
//!     (:personType)-[loc: isLocatedIn { id INT }]->(:cityType)
//! }";
//! let raqlet = Raqlet::from_pg_schema(schema).unwrap();
//! let query = "MATCH (n:Person {id: 42})-[:IS_LOCATED_IN]->(p:City)
//!              RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";
//! let compiled = raqlet.compile(query, &CompileOptions::new(OptLevel::Full)).unwrap();
//!
//! // Cross-paradigm outputs:
//! let datalog = compiled.to_souffle();
//! let sql = compiled.to_sql(SqlDialect::DuckDb).unwrap();
//! assert!(datalog.contains(".output Return"));
//! assert!(sql.contains("SELECT DISTINCT"));
//! ```

use std::collections::HashMap;

pub use raqlet_analysis::{
    analyze, check_backend, AnalysisReport, BackendCapabilities, DiagCode, Diagnostic, EdbStats,
    Linearity, Monotonicity, RaqCheck, Severity, SeverityConfig,
};
pub use raqlet_common::{
    CancellationToken, Database, EvalStats, QueryGuard, RaqletError, Relation, Result, Value,
};
pub use raqlet_cypher::parse_pg_schema;
pub use raqlet_dlir::{DlirProgram, LoweredQuery};
pub use raqlet_engine::{
    DatalogConfig, DatalogEngine, EdbDelta, EvalStrategy, GraphEngine, PreparedDatabase,
    PropertyGraph, SqlEngine, SqlProfile, TableCatalog,
};
pub use raqlet_opt::{OptLevel, OptimizedProgram, PassConfig, TargetBackend};
pub use raqlet_pgir::{LowerOptions, PgirQuery};
pub use raqlet_sqir::{SqirQuery, SqlLowerOptions};
pub use raqlet_storage::{
    counting_hook, CrashSchedule, DurableDatabase, IoFault, IoFaultHook, IoOp, StoreOptions,
    ViewSpec,
};
pub use raqlet_unparse::{to_cypher, to_souffle, to_sql, SouffleOptions, SqlDialect};

use raqlet_common::schema::{DlSchema, PgSchema};

/// Options controlling a single compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Optimization level applied to the DLIR program.
    pub opt_level: OptLevel,
    /// Bindings for `$parameters` in the query.
    pub params: HashMap<String, Value>,
    /// Options for the DLIR → SQIR lowering (recursion depth bound).
    pub sql: SqlLowerOptions,
}

impl CompileOptions {
    /// Options with the given optimization level and no parameters.
    pub fn new(opt_level: OptLevel) -> Self {
        CompileOptions { opt_level, ..Default::default() }
    }

    /// Bind a query parameter.
    pub fn with_param(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.params.insert(name.to_string(), value.into());
        self
    }
}

/// The Raqlet compiler, instantiated for one property-graph schema.
#[derive(Debug, Clone)]
pub struct Raqlet {
    pg_schema: PgSchema,
    dl_schema: DlSchema,
}

impl Raqlet {
    /// Build a compiler from PG-Schema text (`CREATE GRAPH { ... }`).
    pub fn from_pg_schema(schema_text: &str) -> Result<Self> {
        let pg_schema = raqlet_cypher::parse_pg_schema(schema_text)?;
        let dl_schema = raqlet_dlir::generate_dl_schema(&pg_schema)?;
        Ok(Raqlet { pg_schema, dl_schema })
    }

    /// Build a compiler from an already-parsed PG-Schema.
    pub fn from_parsed_schema(pg_schema: PgSchema) -> Result<Self> {
        let dl_schema = raqlet_dlir::generate_dl_schema(&pg_schema)?;
        Ok(Raqlet { pg_schema, dl_schema })
    }

    /// The property-graph schema this compiler was built from.
    pub fn pg_schema(&self) -> &PgSchema {
        &self.pg_schema
    }

    /// The generated Datalog schema (Figure 2b).
    pub fn dl_schema(&self) -> &DlSchema {
        &self.dl_schema
    }

    /// Compile a Cypher query through the full pipeline.
    pub fn compile(&self, cypher: &str, options: &CompileOptions) -> Result<CompiledQuery> {
        // Cypher -> PGIR.
        let mut lower_options = LowerOptions::new();
        lower_options.params = options.params.clone();
        let pgir = raqlet_pgir::cypher_to_pgir(cypher, &lower_options)?;

        // PGIR -> DLIR.
        let lowered =
            raqlet_dlir::lower_pgir_with_schema(&self.pg_schema, self.dl_schema.clone(), &pgir)?;
        raqlet_dlir::validate(&lowered.program)?;

        // Static analysis on the unoptimized program.
        let analysis = raqlet_analysis::analyze(&lowered.program);

        // Optimization — once per backend family. The Datalog-targeted
        // program (also used for the Soufflé unparse) keeps every pass; the
        // SQL-targeted one skips magic sets, which are pathological under
        // recursive-CTE working-table evaluation (see
        // [`raqlet_opt::TargetBackend`]).
        let optimized =
            raqlet_opt::optimize_for(&lowered.program, options.opt_level, TargetBackend::Any)?;
        let sql_optimized =
            raqlet_opt::optimize_for(&lowered.program, options.opt_level, TargetBackend::Sql)?;

        Ok(CompiledQuery {
            cypher: cypher.to_string(),
            pgir,
            unoptimized: lowered.program.clone(),
            optimized,
            sql_optimized,
            analysis,
            output: lowered.output,
            output_columns: lowered.output_columns,
            sql_options: options.sql.clone(),
        })
    }
}

/// A fully compiled query: every IR plus analysis results, ready to be
/// unparsed for an external engine or executed on the bundled ones.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The original Cypher text.
    pub cypher: String,
    /// The PGIR form (Figure 3b).
    pub pgir: PgirQuery,
    /// The unoptimized DLIR program (Figure 3c/3d).
    pub unoptimized: DlirProgram,
    /// The optimized DLIR program plus pass statistics (Figure 4), targeted
    /// at Datalog-style backends (every pass of the level).
    pub optimized: OptimizedProgram,
    /// The program optimized for SQL backends (magic sets skipped — see
    /// [`raqlet_opt::TargetBackend::Sql`]).
    pub sql_optimized: OptimizedProgram,
    /// The static-analysis report (Section 4).
    pub analysis: AnalysisReport,
    /// Name of the output relation (`Return`).
    pub output: String,
    /// Output column names in order.
    pub output_columns: Vec<String>,
    sql_options: SqlLowerOptions,
}

impl CompiledQuery {
    /// The optimized DLIR program (Datalog-targeted).
    pub fn dlir(&self) -> &DlirProgram {
        &self.optimized.program
    }

    /// The optimized DLIR program targeted at SQL backends.
    pub fn dlir_for_sql(&self) -> &DlirProgram {
        &self.sql_optimized.program
    }

    /// The Soufflé Datalog rendering of the optimized program (Figure 3d).
    pub fn to_souffle(&self) -> String {
        raqlet_unparse::to_souffle(self.dlir(), &SouffleOptions::default())
    }

    /// The Soufflé Datalog rendering of the *unoptimized* program.
    pub fn to_souffle_unoptimized(&self) -> String {
        raqlet_unparse::to_souffle(&self.unoptimized, &SouffleOptions::default())
    }

    /// The SQIR form of the optimized program (Figure 3e's structure),
    /// lowered from the SQL-targeted optimization.
    pub fn sqir(&self) -> Result<SqirQuery> {
        raqlet_sqir::lower_to_sqir(self.dlir_for_sql(), &self.output, &self.sql_options)
    }

    /// The SQL text of the optimized program in the given dialect.
    pub fn to_sql(&self, dialect: SqlDialect) -> Result<String> {
        Ok(raqlet_unparse::to_sql(&self.sqir()?, dialect))
    }

    /// The SQL text of the unoptimized program.
    pub fn to_sql_unoptimized(&self, dialect: SqlDialect) -> Result<String> {
        let sqir = raqlet_sqir::lower_to_sqir(&self.unoptimized, &self.output, &self.sql_options)?;
        Ok(raqlet_unparse::to_sql(&sqir, dialect))
    }

    /// The Cypher rendering of the normalised PGIR (round-trip output).
    pub fn to_cypher(&self) -> String {
        raqlet_unparse::to_cypher(&self.pgir)
    }

    /// Check the compiled query against a backend's capabilities.
    pub fn check_backend(&self, caps: &BackendCapabilities) -> Result<AnalysisReport> {
        raqlet_analysis::check_backend(self.dlir(), caps)
    }

    /// Run the `raqcheck` static analyzer over the unoptimized program with
    /// default severities. Lints run on the *unoptimized* DLIR so findings
    /// map back to the query as written, before optimizer rewrites mask or
    /// remove the offending rules. See `docs/diagnostics.md`.
    pub fn check(&self) -> Vec<Diagnostic> {
        RaqCheck::new().check(&self.unoptimized)
    }

    /// [`CompiledQuery::check`] with a caller-configured analyzer (custom
    /// severities and/or EDB statistics for the advisory plan lints).
    pub fn check_with(&self, checker: &RaqCheck) -> Vec<Diagnostic> {
        checker.check(&self.unoptimized)
    }

    /// Execute on the bundled Datalog engine (the Soufflé stand-in).
    pub fn execute_datalog(&self, db: &Database) -> Result<Relation> {
        DatalogEngine::new().run_output(self.dlir(), db, &self.output)
    }

    /// [`CompiledQuery::execute_datalog`] under an execution [`QueryGuard`]:
    /// the guard's deadline, tuple/heap budgets and cancellation token are
    /// checked at every engine checkpoint, and a trip surfaces as
    /// [`RaqletError::Timeout`], [`RaqletError::BudgetExceeded`] or
    /// [`RaqletError::Cancelled`] carrying partial [`EvalStats`]. `db` is
    /// never modified either way.
    pub fn execute_datalog_guarded(&self, db: &Database, guard: &QueryGuard) -> Result<Relation> {
        Ok(DatalogEngine::new().evaluate_guarded(self.dlir(), db, guard)?.relation(&self.output))
    }

    /// Execute the *unoptimized* program on the Datalog engine.
    pub fn execute_datalog_unoptimized(&self, db: &Database) -> Result<Relation> {
        DatalogEngine::new().run_output(&self.unoptimized, db, &self.output)
    }

    /// Execute on a warm [`PreparedDatabase`], reusing its row arenas and
    /// persistent indexes instead of cloning and reindexing the EDB per
    /// call. Successive executions of compiled queries against the same
    /// prepared set skip the cold-start tax entirely.
    pub fn execute_datalog_prepared(&self, prepared: &mut PreparedDatabase) -> Result<Relation> {
        prepared.run(self.dlir(), &self.output)
    }

    /// [`CompiledQuery::execute_datalog_prepared`] under an execution
    /// [`QueryGuard`]. Failure is atomic: an errored, tripped, or panicking
    /// run leaves the warm working set exactly as it was before the call
    /// (see [`PreparedDatabase::run_guarded`]).
    pub fn execute_datalog_prepared_guarded(
        &self,
        prepared: &mut PreparedDatabase,
        guard: &QueryGuard,
    ) -> Result<Relation> {
        prepared.run_guarded(self.dlir(), &self.output, guard)
    }

    /// Execute on the bundled SQL engine with the given profile.
    pub fn execute_sql(&self, db: &Database, profile: SqlProfile) -> Result<Relation> {
        let sqir = self.sqir()?;
        let catalog = TableCatalog::from_schema(&self.dlir_for_sql().schema);
        let engine = SqlEngine { profile };
        Ok(engine.execute(&sqir, db, &catalog)?.rows)
    }

    /// [`CompiledQuery::execute_sql`] under an execution [`QueryGuard`],
    /// checked before each CTE and at every recursive-CTE fixpoint round.
    pub fn execute_sql_guarded(
        &self,
        db: &Database,
        profile: SqlProfile,
        guard: &QueryGuard,
    ) -> Result<Relation> {
        let sqir = self.sqir()?;
        let catalog = TableCatalog::from_schema(&self.dlir_for_sql().schema);
        let engine = SqlEngine { profile };
        Ok(engine.execute_guarded(&sqir, db, &catalog, guard)?.rows)
    }

    /// Execute the *unoptimized* program on the SQL engine.
    pub fn execute_sql_unoptimized(&self, db: &Database, profile: SqlProfile) -> Result<Relation> {
        let sqir = raqlet_sqir::lower_to_sqir(&self.unoptimized, &self.output, &self.sql_options)?;
        let catalog = TableCatalog::from_schema(&self.unoptimized.schema);
        let engine = SqlEngine { profile };
        Ok(engine.execute(&sqir, db, &catalog)?.rows)
    }

    /// Execute the original (normalised) query on the property-graph engine
    /// (the Neo4j stand-in).
    pub fn execute_graph(&self, graph: &PropertyGraph) -> Result<Relation> {
        Ok(GraphEngine::new().execute(&self.pgir, graph)?.rows)
    }

    /// [`CompiledQuery::execute_graph`] under an execution [`QueryGuard`],
    /// checked before every clause and once per binding row during pattern
    /// expansion.
    pub fn execute_graph_guarded(
        &self,
        graph: &PropertyGraph,
        guard: &QueryGuard,
    ) -> Result<Relation> {
        Ok(GraphEngine::new().execute_guarded(&self.pgir, graph, guard)?.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "CREATE GRAPH {\n\
        (personType : Person { id INT, firstName STRING, locationIP STRING }),\n\
        (cityType : City { id INT, name STRING }),\n\
        (:personType)-[locationType: isLocatedIn { id INT }]->(:cityType),\n\
        (:personType)-[knowsType: knows { id INT }]->(:personType)\n\
    }";

    const RUNNING_EXAMPLE: &str = "MATCH (n:Person {id:42})-[:IS_LOCATED_IN]->(p:City)\n\
         RETURN DISTINCT n.firstName AS firstName, p.id AS cityId";

    fn sample_db() -> Database {
        let mut db = Database::new();
        for (id, name, ip) in [(42, "Ada", "1.2.3.4"), (43, "Bob", "4.3.2.1")] {
            db.insert_fact("Person", vec![Value::Int(id), Value::str(name), Value::str(ip)])
                .unwrap();
        }
        for (id, name) in [(100, "Edinburgh"), (200, "Glasgow")] {
            db.insert_fact("City", vec![Value::Int(id), Value::str(name)]).unwrap();
        }
        db.insert_fact(
            "Person_IS_LOCATED_IN_City",
            vec![Value::Int(42), Value::Int(100), Value::Int(1)],
        )
        .unwrap();
        db.insert_fact(
            "Person_IS_LOCATED_IN_City",
            vec![Value::Int(43), Value::Int(200), Value::Int(2)],
        )
        .unwrap();
        db.insert_fact("Person_KNOWS_Person", vec![Value::Int(42), Value::Int(43), Value::Int(3)])
            .unwrap();
        db
    }

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ada = g
            .add_node(
                "Person",
                vec![
                    ("id", Value::Int(42)),
                    ("firstName", Value::str("Ada")),
                    ("locationIP", Value::str("1.2.3.4")),
                ],
            )
            .unwrap();
        let bob = g
            .add_node(
                "Person",
                vec![
                    ("id", Value::Int(43)),
                    ("firstName", Value::str("Bob")),
                    ("locationIP", Value::str("4.3.2.1")),
                ],
            )
            .unwrap();
        let edi = g
            .add_node("City", vec![("id", Value::Int(100)), ("name", Value::str("Edinburgh"))])
            .unwrap();
        let gla = g
            .add_node("City", vec![("id", Value::Int(200)), ("name", Value::str("Glasgow"))])
            .unwrap();
        g.add_edge("IS_LOCATED_IN", ada, edi, vec![("id", Value::Int(1))]).unwrap();
        g.add_edge("IS_LOCATED_IN", bob, gla, vec![("id", Value::Int(2))]).unwrap();
        g.add_edge("KNOWS", ada, bob, vec![("id", Value::Int(3))]).unwrap();
        g
    }

    #[test]
    fn compiles_the_running_example_end_to_end() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let compiled =
            raqlet.compile(RUNNING_EXAMPLE, &CompileOptions::new(OptLevel::Full)).unwrap();
        assert_eq!(compiled.output_columns, vec!["firstName", "cityId"]);
        assert!(compiled.to_souffle().contains(".output Return"));
        assert!(compiled.to_sql(SqlDialect::DuckDb).unwrap().contains("SELECT DISTINCT"));
        assert!(compiled.to_cypher().contains("MATCH"));
        assert!(!compiled.analysis.recursive);
    }

    #[test]
    fn all_three_engines_agree_on_the_running_example() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let compiled =
            raqlet.compile(RUNNING_EXAMPLE, &CompileOptions::new(OptLevel::Full)).unwrap();
        let db = sample_db();
        let graph = sample_graph();
        let datalog = compiled.execute_datalog(&db).unwrap();
        let sql = compiled.execute_sql(&db, SqlProfile::Duck).unwrap();
        let sql_hyper = compiled.execute_sql(&db, SqlProfile::Hyper).unwrap();
        let graph_rows = compiled.execute_graph(&graph).unwrap();
        let expected = vec![vec![Value::str("Ada"), Value::Int(100)]];
        assert_eq!(datalog.sorted(), expected);
        assert_eq!(sql.sorted(), expected);
        assert_eq!(sql_hyper.sorted(), expected);
        assert_eq!(graph_rows.sorted(), expected);
    }

    #[test]
    fn optimized_and_unoptimized_programs_agree() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let compiled =
            raqlet.compile(RUNNING_EXAMPLE, &CompileOptions::new(OptLevel::Full)).unwrap();
        let db = sample_db();
        assert_eq!(
            compiled.execute_datalog(&db).unwrap(),
            compiled.execute_datalog_unoptimized(&db).unwrap()
        );
        assert_eq!(
            compiled.execute_sql(&db, SqlProfile::Duck).unwrap(),
            compiled.execute_sql_unoptimized(&db, SqlProfile::Duck).unwrap()
        );
        // And the optimizer actually did something.
        assert!(compiled.optimized.rules_after < compiled.optimized.rules_before);
    }

    #[test]
    fn recursive_query_is_detected_and_executes() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let query = "MATCH (a:Person {id: 42})-[:KNOWS*]->(b:Person) RETURN b.id AS id";
        let compiled = raqlet.compile(query, &CompileOptions::new(OptLevel::Basic)).unwrap();
        assert!(compiled.analysis.recursive);
        assert_eq!(compiled.analysis.linearity, Linearity::Linear);
        let rows = compiled.execute_datalog(&sample_db()).unwrap();
        assert_eq!(rows.sorted(), vec![vec![Value::Int(43)]]);
    }

    #[test]
    fn parameters_flow_through_compile_options() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let query = "MATCH (n:Person {id: $personId}) RETURN n.firstName AS name";
        let options = CompileOptions::new(OptLevel::Full).with_param("personId", 43);
        let compiled = raqlet.compile(query, &options).unwrap();
        let rows = compiled.execute_datalog(&sample_db()).unwrap();
        assert_eq!(rows.sorted(), vec![vec![Value::str("Bob")]]);
    }

    #[test]
    fn backend_checks_report_capability_mismatches() {
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        let query = "MATCH (a:Person {id: 42})-[:KNOWS*]->(b:Person) RETURN b.id AS id";
        let compiled = raqlet.compile(query, &CompileOptions::new(OptLevel::None)).unwrap();
        assert!(compiled.check_backend(&BackendCapabilities::souffle_like()).is_ok());
        assert!(compiled.check_backend(&BackendCapabilities::recursive_sql()).is_ok());
    }

    #[test]
    fn bad_schema_and_bad_queries_are_rejected() {
        assert!(Raqlet::from_pg_schema("CREATE TABLE nope").is_err());
        let raqlet = Raqlet::from_pg_schema(SCHEMA).unwrap();
        assert!(raqlet.compile("MATCH (n:Person", &CompileOptions::default()).is_err());
        assert!(raqlet
            .compile("MATCH (n:Animal) RETURN n.id AS id", &CompileOptions::default())
            .is_err());
    }
}
