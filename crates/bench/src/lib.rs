//! Shared benchmark harness for the Raqlet evaluation.
//!
//! The benches in `benches/` regenerate the paper's evaluation artifacts:
//!
//! * `table1` — Table 1 (SQ1 and CQ2, unoptimized vs optimized, on the four
//!   simulated backends);
//! * `optimizations` — per-pass ablation of the Section 5 optimizations;
//! * `recursion` — the recursive-query comparisons discussed in Section 2
//!   (transitive closure and shortest paths across engines, naive vs
//!   semi-naive evaluation, magic sets on/off);
//! * `scaling` — the recursive queries swept across SNB scale factors, so
//!   evaluation improvements show as curves rather than points; includes
//!   the `semi-naive-t{1,2,4,8}` thread sweep of the parallel evaluator.
//!
//! `table1` and `scaling` also carry `*-warm` variants that execute against
//! a [`raqlet::PreparedDatabase`], isolating evaluation time from the
//! per-call EDB clone+reindex tax.
//!
//! This library holds the workload setup shared by the benches and the
//! `table1` example. Set `RAQLET_BENCH_QUICK=1` to run every bench in a
//! reduced quick mode (small scale factor, short measurement window) — the
//! CI smoke job uses this to catch panics and harness rot cheaply.

use raqlet::{CompileOptions, CompiledQuery, Database, OptLevel, PropertyGraph, Raqlet};
use raqlet_ldbc::{generate, to_database, to_property_graph, GeneratorConfig, SNB_PG_SCHEMA};

/// True if `RAQLET_BENCH_QUICK` is set (CI smoke mode: tiny workloads and
/// short measurement windows; results are not comparable across runs).
pub fn quick_mode() -> bool {
    std::env::var("RAQLET_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A fully prepared benchmark workload: data loaded into every store plus the
/// compiler instantiated for the SNB schema.
pub struct Workload {
    /// Relational / deductive store.
    pub db: Database,
    /// Property-graph store.
    pub graph: PropertyGraph,
    /// The compiler.
    pub raqlet: Raqlet,
    /// The person id used as the query parameter.
    pub person: i64,
}

impl Workload {
    /// Build a workload at the given scale factor (see
    /// [`raqlet_ldbc::GeneratorConfig`]).
    pub fn new(scale: f64) -> Self {
        let network = generate(&GeneratorConfig { scale, seed: 42 });
        let person = network.sample_person();
        Workload {
            db: to_database(&network),
            graph: to_property_graph(&network),
            raqlet: Raqlet::from_pg_schema(SNB_PG_SCHEMA).expect("SNB schema parses"),
            person,
        }
    }

    /// Compile one of the corpus queries at the given optimization level with
    /// the standard parameter bindings.
    pub fn compile(&self, cypher: &str, level: OptLevel) -> CompiledQuery {
        let options = CompileOptions::new(level)
            .with_param("personId", self.person)
            .with_param("otherId", self.person + 7)
            .with_param("maxDate", 20_200_101i64)
            .with_param("firstName", "Alice");
        self.raqlet.compile(cypher, &options).expect("benchmark query compiles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raqlet::SqlProfile;

    #[test]
    fn workload_builds_and_queries_run() {
        let w = Workload::new(0.2);
        let compiled = w.compile(raqlet_ldbc::SQ1.cypher, OptLevel::Full);
        let rows = compiled.execute_datalog(&w.db).unwrap();
        assert!(!rows.is_empty());
        assert_eq!(rows, compiled.execute_sql(&w.db, SqlProfile::Duck).unwrap());
    }
}
