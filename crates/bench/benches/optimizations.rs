//! Ablation of the Section 5 optimizations: each pass toggled individually,
//! plus compile-time cost of the optimizer itself.

use criterion::{criterion_group, criterion_main, Criterion};
use raqlet::{DatalogEngine, OptLevel};
use raqlet_bench::Workload;
use raqlet_opt::{optimize_with, PassConfig};

fn optimization_ablation(c: &mut Criterion) {
    let workload = Workload::new(1.0);
    let compiled = workload.compile(raqlet_ldbc::CQ2.cypher, OptLevel::None);
    let program = compiled.unoptimized.clone();

    let mut group = c.benchmark_group("optimizations/cq2");
    group.sample_size(10);

    let configs: Vec<(&str, PassConfig)> = vec![
        ("none", PassConfig::for_level(OptLevel::None)),
        ("basic", PassConfig::for_level(OptLevel::Basic)),
        ("full", PassConfig::for_level(OptLevel::Full)),
        ("full-minus-inline", {
            let mut c = PassConfig::for_level(OptLevel::Full);
            c.inline = false;
            c
        }),
        ("full-minus-semantic-joins", {
            let mut c = PassConfig::for_level(OptLevel::Full);
            c.semantic_joins = false;
            c
        }),
        ("full-minus-magic-sets", {
            let mut c = PassConfig::for_level(OptLevel::Full);
            c.magic_sets = false;
            c
        }),
    ];
    for (name, config) in &configs {
        let optimized = optimize_with(&program, config).unwrap().program;
        let engine = DatalogEngine::new();
        group.bench_function(format!("execute/{name}"), |b| {
            b.iter(|| engine.run_output(&optimized, &workload.db, "Return").unwrap())
        });
    }
    group.bench_function("compile-time/full", |b| {
        b.iter(|| optimize_with(&program, &PassConfig::for_level(OptLevel::Full)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = optimization_ablation
}
criterion_main!(benches);
