//! Scaling curves for the Datalog engine's delta-indexed semi-naive
//! evaluation: the same recursive queries are run while the synthetic SNB
//! workload grows through several scale factors, so a speedup shows as a
//! curve rather than a single point. The interesting comparison is the
//! growth *rate*: with persistent join indexes and delta-driven joins the
//! recursive rows should grow roughly with the output size, while naive
//! evaluation degrades superlinearly.
//!
//! Benchmark ids look like `scaling/reachability/sf0.5/semi-naive`.
//!
//! Two variant families ride the same sweep:
//!
//! * `semi-naive-t{1,2,4,8}` — the thread-count sweep of the parallel
//!   delta-partitioned evaluator (explicit worker counts, so the rows are
//!   comparable across machines regardless of `RAQLET_THREADS` or core
//!   count). Full mode sweeps SF ≥ 1.0, where deltas are large enough for
//!   partitioning to engage;
//! * `*-warm` — execution against a [`PreparedDatabase`] that amortises EDB
//!   cloning and index construction across calls.
//!
//! Set `RAQLET_BENCH_QUICK=1` to sweep a reduced set of scale factors with a
//! short measurement window (used by the CI smoke job).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{DatalogEngine, OptLevel, PreparedDatabase};
use raqlet_bench::{quick_mode, Workload};
use raqlet_ldbc::{CQ2, REACHABILITY};

/// Worker counts for the parallel sweep.
const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

/// Report the workload's resident storage footprint (packed arenas, indexes
/// and the shared value dictionary) so the scaling sweep records memory
/// alongside time. `index_bytes` breaks out the join-index share of
/// `heap_bytes`, so index-memory regressions (building undeclared indexes)
/// are visible separately from arena growth. Lines go to stdout and — like
/// the timing records — are appended to `CRITERION_JSON` when set; the CI
/// bench-smoke job asserts a non-zero value is reported.
///
/// `db` is the *fresh* workload (arena + dictionary bytes, comparable with
/// earlier snapshots); `index_bytes` is measured on a warm
/// [`PreparedDatabase`] after one execution, when the plan-declared indexes
/// exist.
fn report_heap_bytes(scale: f64, db: &raqlet::Database, index_bytes: usize) {
    let record = format!(
        "{{\"id\":\"scaling/memory/sf{scale}\",\"heap_bytes\":{},\"index_bytes\":{index_bytes},\"tuples\":{}}}",
        db.heap_bytes(),
        db.total_tuples()
    );
    println!("  {record}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write as _;
            let _ = writeln!(file, "{record}");
        }
    }
}

fn scaling(c: &mut Criterion) {
    let scales: &[f64] = if quick_mode() { &[0.25, 0.5] } else { &[0.25, 0.5, 1.0, 2.0] };
    for &scale in scales {
        let workload = Workload::new(scale);
        // The full-mode thread sweep targets the large scale factors where
        // per-round deltas are big enough to split; quick mode sweeps its
        // tiny scales anyway so CI exercises (and emits ids for) every
        // variant.
        let sweep_threads = quick_mode() || scale >= 1.0;

        let mut group = c.benchmark_group(format!("scaling/reachability/sf{scale}"));
        group.sample_size(10);
        let unopt = workload.compile(REACHABILITY.cypher, OptLevel::None);
        let opt = workload.compile(REACHABILITY.cypher, OptLevel::Full);
        // One warm execution materialises exactly the plan-declared indexes;
        // record their footprint next to the fresh arena bytes.
        let mut prepared = PreparedDatabase::new(workload.db.clone());
        unopt.execute_datalog_prepared(&mut prepared).unwrap();
        report_heap_bytes(scale, &workload.db, prepared.database().index_heap_bytes());
        group.bench_function(BenchmarkId::from_parameter("semi-naive"), |b| {
            b.iter(|| unopt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("semi-naive-magic"), |b| {
            b.iter(|| opt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("naive"), |b| {
            let engine = DatalogEngine::naive();
            b.iter(|| engine.run_output(unopt.dlir(), &workload.db, "Return").unwrap())
        });
        if sweep_threads {
            for &threads in THREAD_SWEEP {
                let engine = DatalogEngine::with_threads(threads);
                group.bench_function(
                    BenchmarkId::from_parameter(format!("semi-naive-t{threads}")),
                    |b| b.iter(|| engine.run_output(unopt.dlir(), &workload.db, "Return").unwrap()),
                );
            }
        }
        group.bench_function(BenchmarkId::from_parameter("semi-naive-warm"), |b| {
            b.iter(|| unopt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        group.finish();

        let mut group = c.benchmark_group(format!("scaling/CQ2/sf{scale}"));
        group.sample_size(10);
        let cq2_unopt = workload.compile(CQ2.cypher, OptLevel::None);
        let cq2_opt = workload.compile(CQ2.cypher, OptLevel::Full);
        group.bench_function(BenchmarkId::from_parameter("unoptimized"), |b| {
            b.iter(|| cq2_unopt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("optimized"), |b| {
            b.iter(|| cq2_opt.execute_datalog(&workload.db).unwrap())
        });
        let mut prepared = PreparedDatabase::new(workload.db.clone());
        group.bench_function(BenchmarkId::from_parameter("optimized-warm"), |b| {
            b.iter(|| cq2_opt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        group.finish();
    }
}

fn config() -> Criterion {
    let measurement =
        if quick_mode() { Duration::from_millis(150) } else { Duration::from_secs(2) };
    let warm_up = if quick_mode() { Duration::from_millis(50) } else { Duration::from_millis(500) };
    Criterion::default().measurement_time(measurement).warm_up_time(warm_up)
}

criterion_group! {
    name = benches;
    config = config();
    targets = scaling
}
criterion_main!(benches);
