//! Recursive-query comparisons backing the Section 2 discussion: transitive
//! closure / reachability / shortest path across the three engines, naive vs
//! semi-naive Datalog evaluation, and magic sets on/off for
//! reachability-from-a-source.

use criterion::{criterion_group, criterion_main, Criterion};
use raqlet::{DatalogEngine, OptLevel, SqlProfile};
use raqlet_bench::Workload;
use raqlet_ldbc::{CQ13, REACHABILITY};

fn recursion(c: &mut Criterion) {
    let workload = Workload::new(1.0);

    // Reachability (transitive closure from a source person).
    let reach_unopt = workload.compile(REACHABILITY.cypher, OptLevel::None);
    let reach_opt = workload.compile(REACHABILITY.cypher, OptLevel::Full);
    let mut group = c.benchmark_group("recursion/reachability");
    group.sample_size(10);
    group.bench_function("graph-engine", |b| {
        b.iter(|| reach_unopt.execute_graph(&workload.graph).unwrap())
    });
    group.bench_function("datalog/semi-naive/unoptimized", |b| {
        b.iter(|| reach_unopt.execute_datalog(&workload.db).unwrap())
    });
    group.bench_function("datalog/semi-naive/magic-sets", |b| {
        b.iter(|| reach_opt.execute_datalog(&workload.db).unwrap())
    });
    group.bench_function("datalog/naive/unoptimized", |b| {
        let engine = DatalogEngine::naive();
        b.iter(|| engine.run_output(reach_unopt.dlir(), &workload.db, "Return").unwrap())
    });
    group.bench_function("sql/duckdb-sim/recursive-cte", |b| {
        b.iter(|| reach_unopt.execute_sql(&workload.db, SqlProfile::Duck).unwrap())
    });
    group.finish();

    // Shortest path (lattice recursion).
    let sp = workload.compile(CQ13.cypher, OptLevel::Basic);
    let mut group = c.benchmark_group("recursion/shortest-path");
    group.sample_size(10);
    group.bench_function("graph-engine-bfs", |b| {
        b.iter(|| sp.execute_graph(&workload.graph).unwrap())
    });
    group.bench_function("datalog-min-lattice", |b| {
        b.iter(|| sp.execute_datalog(&workload.db).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = recursion
}
criterion_main!(benches);
