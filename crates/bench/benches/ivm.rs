//! Incremental view maintenance vs full recomputation.
//!
//! A standing REACHABILITY view is installed on a [`PreparedDatabase`] and
//! absorbs batches of KNOWS edge churn via
//! [`PreparedDatabase::apply_delta`]; the baseline is the cheapest
//! non-incremental alternative the engine offers — a *warm* re-execution of
//! the same query over the prepared set (no clone, no reindex, no
//! recompile). Benchmark ids, per scale factor:
//!
//! * `ivm/reachability/sf{S}/maintain-batch{K}` — one iteration inserts `K`
//!   edges to fresh nodes (the view gains `K` rows) and then deletes them
//!   again (the view loses them), i.e. two full maintenance passes over a
//!   batch whose *derived* delta is small — the scenario IVM exists for;
//! * `ivm/reachability/sf{S}/maintain-dense` — the adversarial counterpart:
//!   delete + re-insert an existing edge inside the connected component,
//!   where DRed's over-deletion cascade would mark the whole reachable set.
//!   The engine's cascade bail-out caps this at scoped-recompute cost, so
//!   the row pins "never much worse than recompute" rather than a speedup;
//! * `ivm/reachability/sf{S}/recompute` — one warm full re-execution.
//!
//! A derived `ivm/speedup-batch{K}/sf{S}` record (stdout + `CRITERION_JSON`)
//! reports `recompute_ns / insert_pass_ns`: the timed side is one
//! *insert-only* maintenance pass (the restore delete between reps runs off
//! the clock), because insert propagation is where IVM's asymptotic win
//! lives — deletes inside a densely connected component trip DRed's
//! over-deletion bail-out and are deliberately capped at scoped-recompute
//! cost, which the round-trip and `maintain-dense` rows pin separately. In
//! quick mode (`RAQLET_BENCH_QUICK=1`, the CI smoke job) the small-batch
//! speedup at SF 0.25 is asserted to be at least 5x, pinning the point of
//! the subsystem: small-delta insert maintenance must beat even the warm
//! recompute path by a wide margin.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{EdbDelta, OptLevel, PreparedDatabase, Value};
use raqlet_bench::{quick_mode, Workload};
use raqlet_ldbc::REACHABILITY;

/// Delta batch sizes swept per scale factor.
const BATCH_SIZES: &[usize] = &[1, 16];

/// `K` KNOWS edges from existing persons to fresh synthetic node ids: each
/// one makes exactly one new node reachable, so the derived delta is `K`
/// rows regardless of scale factor.
fn fresh_edge_batch(persons: &[i64], k: usize) -> Vec<Vec<Value>> {
    (0..k)
        .map(|i| {
            let a = persons[(i * 13 + 1) % persons.len()];
            vec![
                Value::Int(a),
                Value::Int(5_000_000 + i as i64),
                Value::Int(9_000_000 + i as i64),
                Value::Int(20_200_101),
            ]
        })
        .collect()
}

/// One maintenance round-trip: insert the batch, then delete it again.
fn maintain_round_trip(prepared: &mut PreparedDatabase, batch: &[Vec<Value>]) {
    let mut ins = EdbDelta::new();
    for row in batch {
        ins.insert("Person_KNOWS_Person", row.clone());
    }
    prepared.apply_delta(ins).unwrap();
    let mut del = EdbDelta::new();
    for row in batch {
        del.delete("Person_KNOWS_Person", row.clone());
    }
    prepared.apply_delta(del).unwrap();
}

/// How many chunk-means the robust estimators take the minimum over. The
/// per-iteration costs here are a handful of microseconds, so a single
/// descheduling blip inside one chunk can double that chunk's mean; the
/// minimum over several chunks discards such outliers on both sides of the
/// speedup ratio, the same way criterion reports `min`.
const CHUNKS: u32 = 5;

/// Outlier-robust wall-clock of `f`: minimum over [`CHUNKS`] chunk-means of
/// `iters` runs each, in nanoseconds.
fn robust_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..CHUNKS {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    best
}

/// Outlier-robust wall-clock of the *insert* maintenance pass alone: the
/// timer covers `apply_delta(inserts)`; the restoring delete between reps
/// runs off the clock so every timed pass starts from the same base state.
/// Same estimator as [`robust_ns`]: minimum over [`CHUNKS`] chunk-means.
fn robust_insert_pass_ns(iters: u32, prepared: &mut PreparedDatabase, batch: &[Vec<Value>]) -> f64 {
    let mut best = f64::INFINITY;
    maintain_round_trip(prepared, batch); // untimed warmup
    for _ in 0..CHUNKS {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let mut ins = EdbDelta::new();
            for row in batch {
                ins.insert("Person_KNOWS_Person", row.clone());
            }
            let start = Instant::now();
            prepared.apply_delta(ins).unwrap();
            total += start.elapsed();
            let mut del = EdbDelta::new();
            for row in batch {
                del.delete("Person_KNOWS_Person", row.clone());
            }
            prepared.apply_delta(del).unwrap();
        }
        best = best.min(total.as_nanos() as f64 / f64::from(iters));
    }
    best
}

fn emit(record: &str) {
    println!("  {record}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write as _;
            let _ = writeln!(file, "{record}");
        }
    }
}

fn ivm(c: &mut Criterion) {
    let scales: &[f64] = if quick_mode() { &[0.25] } else { &[0.25, 0.5, 1.0, 2.0] };
    for &scale in scales {
        let workload = Workload::new(scale);
        let compiled = workload.compile(REACHABILITY.cypher, OptLevel::Full);
        let network = raqlet_ldbc::generate(&raqlet_ldbc::GeneratorConfig { scale, seed: 42 });
        let persons: Vec<i64> = network.persons.iter().map(|p| p.id).collect();
        // An existing in-component edge for the adversarial dense row.
        let dense_edge = {
            let rel = workload.db.get("Person_KNOWS_Person").unwrap();
            rel.sorted().into_iter().next().unwrap()
        };

        let mut maintained = PreparedDatabase::new(workload.db.clone());
        maintained.install_view(compiled.dlir(), &compiled.output).unwrap();
        let mut warm = PreparedDatabase::new(workload.db.clone());
        compiled.execute_datalog_prepared(&mut warm).unwrap();

        let mut group = c.benchmark_group(format!("ivm/reachability/sf{scale}"));
        group.sample_size(10);
        for &k in BATCH_SIZES {
            let batch = fresh_edge_batch(&persons, k);
            group.bench_function(BenchmarkId::from_parameter(format!("maintain-batch{k}")), |b| {
                b.iter(|| maintain_round_trip(&mut maintained, &batch))
            });
        }
        group.bench_function(BenchmarkId::from_parameter("maintain-dense"), |b| {
            b.iter(|| {
                let mut del = EdbDelta::new();
                del.delete("Person_KNOWS_Person", dense_edge.clone());
                maintained.apply_delta(del).unwrap();
                let mut ins = EdbDelta::new();
                ins.insert("Person_KNOWS_Person", dense_edge.clone());
                maintained.apply_delta(ins).unwrap();
            })
        });
        group.bench_function(BenchmarkId::from_parameter("recompute"), |b| {
            b.iter(|| compiled.execute_datalog_prepared(&mut warm).unwrap())
        });
        group.finish();

        // The headline ratio, measured outside criterion so it can be
        // computed (and asserted) in-process.
        let reps = if quick_mode() { 50 } else { 100 };
        for &k in BATCH_SIZES {
            let batch = fresh_edge_batch(&persons, k);
            let maintain = robust_insert_pass_ns(reps, &mut maintained, &batch);
            let recompute =
                robust_ns(reps, || drop(compiled.execute_datalog_prepared(&mut warm).unwrap()));
            let speedup = recompute / maintain;
            emit(&format!(
                "{{\"id\":\"ivm/speedup-batch{k}/sf{scale}\",\"speedup\":{speedup:.2},\
                 \"maintain_ns\":{maintain:.0},\"recompute_ns\":{recompute:.0}}}"
            ));
            if quick_mode() && scale == 0.25 && k == 1 {
                assert!(
                    speedup >= 5.0,
                    "small-batch maintenance must beat warm recompute by >= 5x at SF 0.25, \
                     got {speedup:.2}x ({maintain:.0} ns vs {recompute:.0} ns)"
                );
            }
        }
    }
}

fn config() -> Criterion {
    let measurement =
        if quick_mode() { Duration::from_millis(150) } else { Duration::from_secs(2) };
    let warm_up = if quick_mode() { Duration::from_millis(50) } else { Duration::from_millis(500) };
    Criterion::default().measurement_time(measurement).warm_up_time(warm_up)
}

criterion_group! {
    name = benches;
    config = config();
    targets = ivm
}
criterion_main!(benches);
