//! Regenerates **Table 1** of the paper: execution time for LDBC SQ1 and CQ2,
//! unoptimized vs fully optimized, on the four simulated backends
//! (Neo4j-sim = graph engine, Soufflé-sim = Datalog engine,
//! DuckDB-sim / HyPer-sim = the two SQL-engine profiles).
//!
//! The `souffle-sim/*-warm` rows execute against a [`PreparedDatabase`]: the
//! EDB is loaded and indexed once outside the timed region, so the rows
//! isolate pure evaluation time — the per-call clone+reindex tax the cold
//! rows still pay (~60% of the small optimized queries, per the ROADMAP
//! profiling note).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{CancellationToken, OptLevel, PreparedDatabase, QueryGuard, SqlProfile};
use raqlet_bench::{quick_mode, Workload};
use raqlet_ldbc::TABLE1_QUERIES;

/// An armed guard whose limits are generous enough that no Table 1 query can
/// trip it: every checkpoint takes the armed (slow) path, so benching with
/// this guard measures the governance overhead of deadline + tuple-budget +
/// cancellation checks. CI asserts the `*-warm-guarded` rows stay within 1.1x
/// of their `*-warm` twins.
///
/// Deliberately no memory budget: arming one additionally pays a
/// `Database::heap_bytes` walk at every fixpoint-round boundary (the heap
/// cannot be budgeted without being measured — ~5µs of fixed cost per round
/// on the LDBC database, noticeable only on the ~13µs SQ1 row). The walk is
/// gated on `memory_budget().is_some()` precisely so that callers who don't
/// ask for heap governance never pay it.
fn untrippable_guard() -> QueryGuard {
    QueryGuard::new()
        .with_deadline(Duration::from_secs(3600))
        .with_tuple_budget(u64::MAX)
        .with_cancellation(CancellationToken::new())
}

fn table1(c: &mut Criterion) {
    let workload = Workload::new(if quick_mode() { 0.25 } else { 1.0 });
    for query in TABLE1_QUERIES {
        let mut group = c.benchmark_group(format!("table1/{}", query.name));
        group.sample_size(10);
        let unopt = workload.compile(query.cypher, OptLevel::None);
        let opt = workload.compile(query.cypher, OptLevel::Full);
        let mut prepared = PreparedDatabase::new(workload.db.clone());

        group.bench_function(BenchmarkId::new("neo4j-sim", "original"), |b| {
            b.iter(|| unopt.execute_graph(&workload.graph).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized"), |b| {
            b.iter(|| unopt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized"), |b| {
            b.iter(|| opt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized-warm"), |b| {
            b.iter(|| unopt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized-warm"), |b| {
            b.iter(|| opt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        // Same warm rows with an armed-but-untripped QueryGuard: the pair
        // quantifies the overhead of deadline/budget/cancellation checks.
        let guard = untrippable_guard();
        let mut prepared_guarded = PreparedDatabase::new(workload.db.clone());
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized-warm-guarded"), |b| {
            b.iter(|| {
                unopt.execute_datalog_prepared_guarded(&mut prepared_guarded, &guard).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized-warm-guarded"), |b| {
            b.iter(|| opt.execute_datalog_prepared_guarded(&mut prepared_guarded, &guard).unwrap())
        });
        for profile in [SqlProfile::Duck, SqlProfile::Hyper] {
            group.bench_function(BenchmarkId::new(profile.name(), "unoptimized"), |b| {
                b.iter(|| unopt.execute_sql(&workload.db, profile).unwrap())
            });
            group.bench_function(BenchmarkId::new(profile.name(), "optimized"), |b| {
                b.iter(|| opt.execute_sql(&workload.db, profile).unwrap())
            });
        }
        group.finish();
    }
}

fn config() -> Criterion {
    let measurement =
        if quick_mode() { Duration::from_millis(150) } else { Duration::from_secs(3) };
    let warm_up = if quick_mode() { Duration::from_millis(50) } else { Duration::from_millis(500) };
    Criterion::default().measurement_time(measurement).warm_up_time(warm_up)
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1
}
criterion_main!(benches);
