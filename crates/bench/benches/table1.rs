//! Regenerates **Table 1** of the paper: execution time for LDBC SQ1 and CQ2,
//! unoptimized vs fully optimized, on the four simulated backends
//! (Neo4j-sim = graph engine, Soufflé-sim = Datalog engine,
//! DuckDB-sim / HyPer-sim = the two SQL-engine profiles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{OptLevel, SqlProfile};
use raqlet_bench::Workload;
use raqlet_ldbc::TABLE1_QUERIES;

fn table1(c: &mut Criterion) {
    let workload = Workload::new(1.0);
    for query in TABLE1_QUERIES {
        let mut group = c.benchmark_group(format!("table1/{}", query.name));
        group.sample_size(10);
        let unopt = workload.compile(query.cypher, OptLevel::None);
        let opt = workload.compile(query.cypher, OptLevel::Full);

        group.bench_function(BenchmarkId::new("neo4j-sim", "original"), |b| {
            b.iter(|| unopt.execute_graph(&workload.graph).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized"), |b| {
            b.iter(|| unopt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized"), |b| {
            b.iter(|| opt.execute_datalog(&workload.db).unwrap())
        });
        for profile in [SqlProfile::Duck, SqlProfile::Hyper] {
            group.bench_function(BenchmarkId::new(profile.name(), "unoptimized"), |b| {
                b.iter(|| unopt.execute_sql(&workload.db, profile).unwrap())
            });
            group.bench_function(BenchmarkId::new(profile.name(), "optimized"), |b| {
                b.iter(|| opt.execute_sql(&workload.db, profile).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = table1
}
criterion_main!(benches);
