//! Regenerates **Table 1** of the paper: execution time for LDBC SQ1 and CQ2,
//! unoptimized vs fully optimized, on the four simulated backends
//! (Neo4j-sim = graph engine, Soufflé-sim = Datalog engine,
//! DuckDB-sim / HyPer-sim = the two SQL-engine profiles).
//!
//! The `souffle-sim/*-warm` rows execute against a [`PreparedDatabase`]: the
//! EDB is loaded and indexed once outside the timed region, so the rows
//! isolate pure evaluation time — the per-call clone+reindex tax the cold
//! rows still pay (~60% of the small optimized queries, per the ROADMAP
//! profiling note).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{OptLevel, PreparedDatabase, SqlProfile};
use raqlet_bench::{quick_mode, Workload};
use raqlet_ldbc::TABLE1_QUERIES;

fn table1(c: &mut Criterion) {
    let workload = Workload::new(if quick_mode() { 0.25 } else { 1.0 });
    for query in TABLE1_QUERIES {
        let mut group = c.benchmark_group(format!("table1/{}", query.name));
        group.sample_size(10);
        let unopt = workload.compile(query.cypher, OptLevel::None);
        let opt = workload.compile(query.cypher, OptLevel::Full);
        let mut prepared = PreparedDatabase::new(workload.db.clone());

        group.bench_function(BenchmarkId::new("neo4j-sim", "original"), |b| {
            b.iter(|| unopt.execute_graph(&workload.graph).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized"), |b| {
            b.iter(|| unopt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized"), |b| {
            b.iter(|| opt.execute_datalog(&workload.db).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "unoptimized-warm"), |b| {
            b.iter(|| unopt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        group.bench_function(BenchmarkId::new("souffle-sim", "optimized-warm"), |b| {
            b.iter(|| opt.execute_datalog_prepared(&mut prepared).unwrap())
        });
        for profile in [SqlProfile::Duck, SqlProfile::Hyper] {
            group.bench_function(BenchmarkId::new(profile.name(), "unoptimized"), |b| {
                b.iter(|| unopt.execute_sql(&workload.db, profile).unwrap())
            });
            group.bench_function(BenchmarkId::new(profile.name(), "optimized"), |b| {
                b.iter(|| opt.execute_sql(&workload.db, profile).unwrap())
            });
        }
        group.finish();
    }
}

fn config() -> Criterion {
    let measurement =
        if quick_mode() { Duration::from_millis(150) } else { Duration::from_secs(3) };
    let warm_up = if quick_mode() { Duration::from_millis(50) } else { Duration::from_millis(500) };
    Criterion::default().measurement_time(measurement).warm_up_time(warm_up)
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1
}
criterion_main!(benches);
