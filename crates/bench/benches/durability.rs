//! Durability layer throughput and the snapshot-load speedup record.
//!
//! The store under test is a [`DurableDatabase`] created from the SNB EDB at
//! each scale factor. Benchmark ids:
//!
//! * `durability/sf{S}/checkpoint` — one full checkpoint: compact the EDB,
//!   encode + CRC the arena snapshot, fsync, atomic-rename rotation;
//! * `durability/sf{S}/wal-append` — one `log_delta` round-trip (insert a
//!   fresh KNOWS edge, then delete it): two encoded, fsync'd WAL frames plus
//!   the in-memory applies;
//! * `durability/sf{S}/cold-open` — `DurableDatabase::open` on a
//!   checkpointed store: read + CRC-verify the snapshot, rebuild the
//!   `PreparedDatabase`, scan the (empty) WAL.
//!
//! The headline record, `durability/load-speedup/sf{S}` (stdout +
//! `CRITERION_JSON`), reports `regenerate_ns / open_ns`: cold-opening the
//! snapshot vs regenerating the same scale factor via the generator
//! (`generate` + `to_database` + `DurableDatabase::create` into a fresh
//! directory). Both sides restore the same end state — an open, durable
//! store holding the SNB EDB — because a restart that regenerates instead
//! of reloading must still re-persist to get its durability back; store
//! directory cleanup and the teardown of each in-memory database happen
//! outside the timed region. Both sides are measured in the same session
//! with the same outlier-robust min-over-chunk-means estimator the `ivm`
//! bench uses.
//! The full run records the SF-1 row in `BENCH_pr9.json`; in quick mode
//! (`RAQLET_BENCH_QUICK=1`, the CI smoke job) the SF-0.25 record is emitted
//! and the speedup asserted ≥ 10x, pinning the point of the snapshot format:
//! reloading packed arenas must beat regeneration by an order of magnitude.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raqlet::{Database, DurableDatabase, EdbDelta, Value};
use raqlet_bench::quick_mode;
use raqlet_ldbc::{generate, to_database, GeneratorConfig};

/// Unique store directory under the system temp dir — never the workspace,
/// so benches leave `git status` clean.
fn store_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raqlet-bench-durability-{}-{tag}", std::process::id()))
}

/// The SNB EDB at `scale`, regenerated the way a non-durable restart would.
fn regenerate(scale: f64) -> Database {
    to_database(&generate(&GeneratorConfig { scale, seed: 42 }))
}

/// One WAL round-trip: log a fresh KNOWS edge, then log its deletion. The
/// store state is identical afterwards, so iterations are independent.
fn wal_round_trip(store: &mut DurableDatabase, edge: &[Value]) {
    let mut ins = EdbDelta::new();
    ins.insert("Person_KNOWS_Person", edge.to_vec());
    store.log_delta(ins).unwrap();
    let mut del = EdbDelta::new();
    del.delete("Person_KNOWS_Person", edge.to_vec());
    store.log_delta(del).unwrap();
}

/// How many chunk-means the robust estimator takes the minimum over (same
/// rationale as the `ivm` bench: discard descheduling blips on both sides of
/// the ratio).
const CHUNKS: u32 = 5;

fn emit(record: &str) {
    println!("  {record}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write as _;
            let _ = writeln!(file, "{record}");
        }
    }
}

fn durability(c: &mut Criterion) {
    let scales: &[f64] = if quick_mode() { &[0.25] } else { &[0.25, 1.0] };
    for &scale in scales {
        let dir = store_dir(&format!("sf{scale}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DurableDatabase::create(&dir, regenerate(scale)).unwrap();
        store.checkpoint().unwrap();
        let edge = vec![
            Value::Int(1),
            Value::Int(5_000_000),
            Value::Int(9_000_000),
            Value::Int(20_200_101),
        ];

        let mut group = c.benchmark_group(format!("durability/sf{scale}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("checkpoint"), |b| {
            b.iter(|| store.checkpoint().unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("wal-append"), |b| {
            b.iter(|| wal_round_trip(&mut store, &edge))
        });
        // Leave the store checkpointed at its final epoch with an empty WAL,
        // so cold-open measures exactly the snapshot path.
        store.checkpoint().unwrap();
        drop(store);
        group.bench_function(BenchmarkId::from_parameter("cold-open"), |b| {
            b.iter(|| drop(DurableDatabase::open(&dir).unwrap()))
        });
        group.finish();

        // The headline ratio, measured outside criterion so it can be
        // computed (and asserted) in-process. The regeneration side must
        // end where the open side ends — with a durable store on disk — so
        // it times `generate` + `to_database` + `DurableDatabase::create`;
        // clearing the target directory is done before each timed run. Both
        // sides time construction only: tearing down the in-memory database
        // is not part of a restart, so drops happen outside the timed
        // region (for the open side that means holding each chunk's stores
        // alive until the chunk's clock is read).
        let reps = if quick_mode() { 5 } else { 10 };
        let mut open = f64::INFINITY;
        for _ in 0..CHUNKS {
            let mut held = Vec::with_capacity(reps as usize);
            let start = Instant::now();
            for _ in 0..reps {
                held.push(DurableDatabase::open(&dir).unwrap());
            }
            open = open.min(start.elapsed().as_nanos() as f64 / f64::from(reps));
            drop(held);
        }
        let rdir = store_dir(&format!("regen-sf{scale}"));
        let mut regen = f64::INFINITY;
        for _ in 0..CHUNKS {
            let mut total = 0.0;
            for _ in 0..reps {
                let _ = std::fs::remove_dir_all(&rdir);
                let start = Instant::now();
                let store = DurableDatabase::create(&rdir, regenerate(scale)).unwrap();
                total += start.elapsed().as_nanos() as f64;
                drop(store);
            }
            regen = regen.min(total / f64::from(reps));
        }
        let _ = std::fs::remove_dir_all(&rdir);
        let speedup = regen / open;
        emit(&format!(
            "{{\"id\":\"durability/load-speedup/sf{scale}\",\"speedup\":{speedup:.2},\
             \"open_ns\":{open:.0},\"regenerate_ns\":{regen:.0}}}"
        ));
        if quick_mode() && scale == 0.25 {
            assert!(
                speedup >= 10.0,
                "cold snapshot open must beat regeneration by >= 10x at SF 0.25, \
                 got {speedup:.2}x ({open:.0} ns vs {regen:.0} ns)"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

fn config() -> Criterion {
    let measurement =
        if quick_mode() { Duration::from_millis(150) } else { Duration::from_secs(2) };
    let warm_up = if quick_mode() { Duration::from_millis(50) } else { Duration::from_millis(500) };
    Criterion::default().measurement_time(measurement).warm_up_time(warm_up)
}

criterion_group! {
    name = benches;
    config = config();
    targets = durability
}
criterion_main!(benches);
