//! Fail CI on benchmark mean-time regressions.
//!
//! ```sh
//! bench_regression <current.jsonl> <baseline.json> [threshold]
//! ```
//!
//! `current.jsonl` is the `CRITERION_JSON` output of a bench run;
//! `baseline.json` is a checked-in `BENCH_*.json` snapshot. Exits non-zero
//! if any benchmark id present in both files has a current mean more than
//! `threshold` (default 1.3) times its baseline mean.

use std::process::ExitCode;

use criterion::regression::find_regressions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(current_path), Some(baseline_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_regression <current.jsonl> <baseline.json> [threshold]");
        return ExitCode::from(2);
    };
    let threshold: f64 = match args.get(3).map(|t| t.parse()) {
        None => 1.3,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("threshold must be a number, got `{}`", args[3]);
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("cannot read `{path}`: {err}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(baseline_path)) else {
        return ExitCode::from(2);
    };

    let regressions = find_regressions(&current, &baseline, threshold);
    if regressions.is_empty() {
        println!("no regressions > {threshold}x vs {baseline_path}");
        return ExitCode::SUCCESS;
    }
    eprintln!("{} regression(s) > {threshold}x vs {baseline_path}:", regressions.len());
    for r in &regressions {
        eprintln!(
            "  {:<60} {:>12.0} ns -> {:>12.0} ns  ({:.2}x)",
            r.id, r.baseline_mean_ns, r.current_mean_ns, r.ratio
        );
    }
    ExitCode::FAILURE
}
