//! Fail CI on benchmark mean-time regressions.
//!
//! ```sh
//! bench_regression <current.jsonl> <baseline.json> [threshold] [--min-ns <ns>]
//! bench_regression <current.jsonl> --reference [dir] [threshold] [--min-ns <ns>]
//! ```
//!
//! `current.jsonl` is the `CRITERION_JSON` output of a bench run;
//! `baseline.json` is a checked-in `BENCH_*.json` snapshot. With
//! `--reference`, the newest recorded snapshot in `dir` (default `.`) is
//! used instead of a fixed file: `BENCH_pr<N>.json` files rank by `N` and
//! `BENCH_baseline.json` ranks oldest, so CI always compares against the
//! most recent perf record rather than the original baseline. `--min-ns`
//! sets a measurement-noise floor: ids where both means are below it are
//! skipped (CI's short quick-mode windows cannot time microsecond rows
//! reliably). Exits non-zero if any benchmark id present in both files has
//! a current mean more than `threshold` (default 1.3) times its baseline
//! mean.

use std::process::ExitCode;

use criterion::regression::find_regressions_with_floor;

/// Rank a `BENCH_*.json` file name: `BENCH_baseline.json` is 0,
/// `BENCH_pr<N>.json` is `N`. Returns `None` for files that are not bench
/// snapshots.
fn bench_rank(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    if stem == "baseline" {
        return Some(0);
    }
    stem.strip_prefix("pr")?.parse().ok().map(|n: u64| n)
}

/// The newest `BENCH_*.json` snapshot in `dir` (highest PR number;
/// `BENCH_baseline.json` only when nothing newer exists).
fn newest_reference(dir: &str) -> Option<std::path::PathBuf> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        // An unreadable entry must not discard snapshots already found.
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(rank) = bench_rank(&name.to_string_lossy()) else { continue };
        if best.as_ref().is_none_or(|(b, _)| rank > *b) {
            best = Some((rank, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().collect();
    // Extract `--min-ns <ns>` wherever it appears.
    let mut min_ns = 0.0f64;
    if let Some(pos) = args.iter().position(|a| a == "--min-ns") {
        let Some(value) = args.get(pos + 1).and_then(|v| v.parse().ok()) else {
            eprintln!("--min-ns requires a numeric argument");
            return ExitCode::from(2);
        };
        min_ns = value;
        args.drain(pos..pos + 2);
    }
    let Some(current_path) = args.get(1) else {
        eprintln!(
            "usage: bench_regression <current.jsonl> (<baseline.json> | --reference [dir]) [threshold]"
        );
        return ExitCode::from(2);
    };
    let (baseline_path, threshold_arg) = if args.get(2).map(String::as_str) == Some("--reference") {
        // `--reference [dir]`: the optional dir is any non-numeric argument.
        let (dir, threshold) = match args.get(3) {
            Some(a) if a.parse::<f64>().is_err() => (a.as_str(), args.get(4)),
            other => (".", other),
        };
        match newest_reference(dir) {
            Some(path) => {
                println!("reference: {}", path.display());
                (path.to_string_lossy().into_owned(), threshold.cloned())
            }
            None => {
                eprintln!("no BENCH_*.json snapshot found in `{dir}`");
                return ExitCode::from(2);
            }
        }
    } else {
        match args.get(2) {
            Some(p) => (p.clone(), args.get(3).cloned()),
            None => {
                eprintln!(
                    "usage: bench_regression <current.jsonl> (<baseline.json> | --reference [dir]) [threshold]"
                );
                return ExitCode::from(2);
            }
        }
    };
    let threshold: f64 = match threshold_arg.as_deref().map(str::parse) {
        None => 1.3,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("threshold must be a number, got `{}`", threshold_arg.unwrap());
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("cannot read `{path}`: {err}");
            None
        }
    };
    let (Some(current), Some(baseline)) = (read(current_path), read(&baseline_path)) else {
        return ExitCode::from(2);
    };

    let regressions = find_regressions_with_floor(&current, &baseline, threshold, min_ns);
    if regressions.is_empty() {
        println!("no regressions > {threshold}x vs {baseline_path}");
        return ExitCode::SUCCESS;
    }
    eprintln!("{} regression(s) > {threshold}x vs {baseline_path}:", regressions.len());
    for r in &regressions {
        eprintln!(
            "  {:<60} {:>12.0} ns -> {:>12.0} ns  ({:.2}x)",
            r.id, r.baseline_mean_ns, r.current_mean_ns, r.ratio
        );
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_files_rank_baseline_oldest_then_by_pr_number() {
        assert_eq!(bench_rank("BENCH_baseline.json"), Some(0));
        assert_eq!(bench_rank("BENCH_pr2.json"), Some(2));
        assert_eq!(bench_rank("BENCH_pr10.json"), Some(10));
        assert_eq!(bench_rank("BENCH_pr.json"), None);
        assert_eq!(bench_rank("Cargo.toml"), None);
        assert_eq!(bench_rank("BENCH_notes.txt"), None);
    }

    #[test]
    fn newest_reference_picks_the_highest_pr() {
        let dir = std::env::temp_dir().join(format!("bench_ref_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_baseline.json", "BENCH_pr2.json", "BENCH_pr3.json", "notes.md"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let newest = newest_reference(dir.to_str().unwrap()).unwrap();
        assert!(newest.ends_with("BENCH_pr3.json"), "{newest:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
